"""Room occupancy: detect and place people in a laboratory.

Multi-target device-free localization is "well known to be challenging"
(Section 6.7): each extra person adds blocking events, and events from
different people combine into phantom intersections.  The paper
demonstrates multi-target separation for three *bottles* on a tabletop
(see ``benchmarks/test_fig19_multitarget.py``); at room scale it
localizes one person at a time.  This example shows what that means in
practice: two well-separated people resolve cleanly, while a crowd of
three produces ghosting — the honest limitation the paper states
("when many targets exist ... it's still challenging to accurately
localize each of them").

Run:  python examples/multi_person_occupancy.py
"""

from __future__ import annotations

from repro import DWatch, MeasurementSession, human_target, laboratory_scene
from repro.geometry import Point


SCENARIOS = {
    "one person": [Point(4.5, 6.0)],
    "two people, far apart": [Point(2.5, 3.5), Point(6.5, 8.5)],
    "three people (beyond the paper's demonstrated scope)": [
        Point(2.5, 3.0),
        Point(6.5, 4.0),
        Point(4.5, 9.0),
    ],
}


def main() -> None:
    scene = laboratory_scene(rng=11)
    dwatch = DWatch(scene)
    dwatch.calibrate(rng=12)
    session = MeasurementSession(scene, rng=13)
    dwatch.collect_baseline([session.capture() for _ in range(3)])

    for label, positions in SCENARIOS.items():
        people = [human_target(p) for p in positions]
        estimates = dwatch.localize(
            session.capture(people), max_targets=len(people)
        )
        print(f"\n{label}: {len(people)} present, {len(estimates)} localized")
        unmatched = list(estimates)
        hits = 0
        for person in people:
            if not unmatched:
                print(
                    f"  person at ({person.position.x:.1f}, "
                    f"{person.position.y:.1f}): missed"
                )
                continue
            nearest = min(
                unmatched,
                key=lambda e: person.position.distance_to(e.position),
            )
            unmatched.remove(nearest)
            error = person.localization_error(nearest.position)
            status = "ok" if error < 0.5 else "ghosted"
            hits += error < 0.5
            print(
                f"  person at ({person.position.x:.1f}, {person.position.y:.1f})"
                f" -> estimate ({nearest.position.x:.2f}, "
                f"{nearest.position.y:.2f}), err {error * 100:.0f} cm [{status}]"
            )
        if len(people) >= 3 and hits < len(people):
            print(
                "  (expected: dense crowds ghost at room scale; the paper's"
                " multi-target results are for the 2 m x 2 m tabletop)"
            )


if __name__ == "__main__":
    main()
