"""Quickstart: localize a device-free human with D-Watch.

Builds the paper's library deployment (4 readers with 8-antenna arrays,
21 randomly placed tags, shelf reflectors), calibrates the readers over
the air, captures an empty-area baseline, then localizes a person who
walks in — all in a few dozen lines against the public API.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DWatch, MeasurementSession, human_target, library_scene
from repro.geometry import Point


def main() -> None:
    # 1. Deployment: the 7 m x 10 m library with rich "bad" multipath.
    scene = library_scene(rng=1)
    print(f"scene: {scene.name}, {len(scene.readers)} readers, "
          f"{len(scene.tags)} tags, {len(scene.reflectors)} reflectors")

    dwatch = DWatch(scene)

    # 2. One-time wireless phase calibration (Section 4.1): no cables,
    #    no interruption — just tags at known angles.
    calibration = dwatch.calibrate(rng=2)
    for reader_name in sorted(calibration):
        offsets_deg = ", ".join(
            f"{v:+6.1f}" for v in calibration[reader_name].values * 57.2958
        )
        print(f"  {reader_name} offsets (deg): {offsets_deg}")

    # 3. Baseline: a few empty-area captures ("several transmissions
    #    ... well completed within seconds", Section 4.4).
    session = MeasurementSession(scene, rng=3)
    dwatch.collect_baseline([session.capture() for _ in range(3)])

    # 4. A person walks in; localize them from one fix.
    person = human_target(Point(4.0, 6.5))
    estimates = dwatch.localize(session.capture([person]))
    if not estimates:
        print("target is in a deadzone (no blocked path) — try elsewhere")
        return
    estimate = estimates[0]
    error = person.localization_error(estimate.position)
    print(
        f"true position  ({person.position.x:.2f}, {person.position.y:.2f})\n"
        f"estimate       ({estimate.position.x:.2f}, {estimate.position.y:.2f})\n"
        f"error          {error * 100:.1f} cm"
    )


if __name__ == "__main__":
    main()
