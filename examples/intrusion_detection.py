"""Intrusion detection: continuous monitoring of an empty hall.

The motivating application from the paper's introduction: an intruder
carries no tag and deliberately discards any trackable device, yet
blocking a single backscatter path betrays them.  The script simulates
a patrol loop — repeated fixes as an intruder crosses the monitored
hall — and raises an alarm with a position estimate whenever blocking
evidence appears, demonstrating deadzone gaps and re-acquisition.

Run:  python examples/intrusion_detection.py
"""

from __future__ import annotations

from repro import DWatch, MeasurementSession, hall_scene, human_target
from repro.core.tracker import KalmanTracker
from repro.geometry import Point


def intruder_path(scene, steps: int = 24):
    """A straight walk across the hall at ~1 m/s, fix every 0.4 m."""
    start = Point(scene.room.min_x + 1.0, scene.room.min_y + 1.5)
    end = Point(scene.room.max_x - 1.0, scene.room.max_y - 1.5)
    return [start + (end - start) * (i / (steps - 1)) for i in range(steps)]


def main() -> None:
    scene = hall_scene(rng=7)
    dwatch = DWatch(scene)
    dwatch.calibrate(rng=8)
    session = MeasurementSession(scene, rng=9)
    dwatch.collect_baseline([session.capture() for _ in range(3)])

    tracker = KalmanTracker(process_noise=1.5, measurement_noise=0.15)
    print("monitoring... (x = alarm with fix, ~ = prediction, . = quiet)")
    detections = 0
    trace = []
    for step, true_position in enumerate(intruder_path(scene)):
        intruder = human_target(true_position)
        estimates = dwatch.localize(session.capture([intruder]))
        time_s = step * 0.4
        if estimates:
            detections += 1
            fix = estimates[0].position
            point = tracker.update(time_s, fix)
            error = intruder.localization_error(point.position)
            trace.append("x")
            print(
                f"  t={time_s:4.1f}s ALARM at ({point.position.x:5.2f}, "
                f"{point.position.y:5.2f})  true ({true_position.x:5.2f}, "
                f"{true_position.y:5.2f})  err {error * 100:5.1f} cm"
            )
        elif tracker.initialized:
            # Deadzone: no path blocked right now; coast on the motion
            # model (the paper's Section 8 mobility mitigation).
            point = tracker.update(time_s, None)
            trace.append("~")
            print(
                f"  t={time_s:4.1f}s deadzone, predicted "
                f"({point.position.x:5.2f}, {point.position.y:5.2f})"
            )
        else:
            trace.append(".")
    print(f"\ntimeline: {''.join(trace)}")
    print(f"detected {detections}/{len(trace)} fixes while crossing")


if __name__ == "__main__":
    main()
