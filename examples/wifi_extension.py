"""Wi-Fi extension: D-Watch's idea on OFDM channel state information.

Section 9 claims D-Watch "can be extended to work with other RF
technologies".  This example runs the blocked-path detection loop on a
simulated Wi-Fi office: two 5.18 GHz APs with 8-antenna arrays (only
~21 cm wide at this band), a dozen ambient transmitters instead of
tags, and per-subcarrier CSI instead of backscatter snapshots.

The interesting technical difference is the decorrelator: RFID needs
spatial smoothing (sacrificing aperture) to handle coherent multipath,
while OFDM's subcarrier diversity decorrelates paths for free — each
path's delay rotates differently across the band.

Run:  python examples/wifi_extension.py
"""

from __future__ import annotations

import math

from repro.geometry.blocking import path_blocked_by
from repro.sim.target import human_target
from repro.wifi import WidebandPMusic, csi_snapshots, wifi_office_scene


def main() -> None:
    scene = wifi_office_scene(rng=31)
    print(
        f"scene: {scene.name}, {len(scene.readers)} APs at "
        f"{scene.frequency_hz / 1e9:.2f} GHz, {len(scene.tags)} transmitters"
    )

    # Pick the AP/transmitter pair with the richest multipath.
    ap = scene.readers[0]
    channels = scene.channels_for(ap)
    epc, channel = max(channels.items(), key=lambda kv: kv[1].num_paths)
    print(f"monitored link: {ap.name} <- tx {epc[:8]}..., "
          f"{channel.num_paths} paths at "
          f"{[round(math.degrees(p.aoa), 1) for p in channel.paths]} deg")

    estimator = WidebandPMusic(
        spacing_m=ap.array.spacing_m, wavelength_m=ap.array.wavelength_m
    )
    baseline = estimator.spectrum(csi_snapshots(channel, 6, rng=32))

    # A person walks onto the link's direct path.
    direct = channel.paths[0]
    person = human_target(direct.legs[0].point_at(0.5))
    shadowed = channel.with_targets([person.body()])
    online = estimator.spectrum(csi_snapshots(shadowed, 6, rng=33))

    window = math.radians(2.5)
    print("\npath angle   baseline power   online power   drop")
    for path in channel.paths:
        base = baseline.max_in_window(path.aoa, window)
        now = online.max_in_window(path.aoa, window)
        drop = 0.0 if base <= 0 else max(0.0, (base - now) / base)
        blocked = path_blocked_by(path.legs, person.body())
        marker = "  <- blocked" if blocked else ""
        print(
            f"{math.degrees(path.aoa):10.1f}   {base:14.3e}   "
            f"{now:12.3e}   {drop:4.0%}{marker}"
        )


if __name__ == "__main__":
    main()
