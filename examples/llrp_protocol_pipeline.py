"""Full protocol pipeline: Gen2 inventory -> LLRP reports -> localization.

The other examples use the simulator's fast capture path.  This one
exercises the same seam a physical deployment has: readers run EPC Gen2
slotted-ALOHA inventory rounds (collisions, Q adaptation, CRC-checked
EPC frames), stream LLRP-style tag reports to the "server", and the
localization engine consumes *only* the reports.

Run:  python examples/llrp_protocol_pipeline.py
"""

from __future__ import annotations

from repro import DWatch, MeasurementSession, hall_scene, human_target
from repro.geometry import Point
from repro.rfid.gen2 import Gen2Inventory
from repro.sim.measurement import measurement_from_reports


def main() -> None:
    scene = hall_scene(rng=17)

    # Peek at the link layer: one inventory round over the 21 tags.
    inventory = Gen2Inventory(initial_q=4, rng=18)
    rounds = inventory.inventory_all(scene.tags)
    total_reads = sum(len(r.reads) for r in rounds)
    total_collisions = sum(r.num_collisions for r in rounds)
    duration_ms = sum(r.duration_s for r in rounds) * 1e3
    print(
        f"Gen2 inventory: {len(rounds)} rounds, {total_reads} EPCs read, "
        f"{total_collisions} collisions, {duration_ms:.1f} ms on air"
    )

    dwatch = DWatch(scene)
    dwatch.calibrate(rng=19)
    session = MeasurementSession(scene, rng=20)

    # Baseline and online captures both travel through reports.
    num_antennas = scene.readers[0].array.num_antennas
    baseline_reports = [session.capture_reports() for _ in range(3)]
    dwatch.collect_baseline(
        [measurement_from_reports(r, num_antennas) for r in baseline_reports]
    )

    person = human_target(Point(3.6, 5.2))
    online_reports = session.capture_reports([person])
    report_count = sum(len(r.reports) for r in online_reports.values())
    print(f"online capture: {report_count} LLRP tag reports across "
          f"{len(online_reports)} readers")

    estimates = dwatch.localize(
        measurement_from_reports(online_reports, num_antennas)
    )
    if estimates:
        estimate = estimates[0]
        error = person.localization_error(estimate.position)
        print(
            f"localized at ({estimate.position.x:.2f}, "
            f"{estimate.position.y:.2f}), err {error * 100:.1f} cm"
        )
    else:
        print("target in a deadzone for this placement")


if __name__ == "__main__":
    main()
