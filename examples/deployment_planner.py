"""Deployment planning: hunt deadzones, then place tags to kill them.

Section 8's deadzone mitigation, made operational.  Starting from a
sparse hall deployment, the script maps where a target would be
invisible, asks the greedy placement optimizer where extra 10-cent tags
buy the most coverage, and shows the before/after maps.

Run:  python examples/deployment_planner.py
"""

from __future__ import annotations

from repro.sim.coverage import analyze_coverage
from repro.sim.environments import hall_scene
from repro.sim.placement import optimize_tag_placement


def main() -> None:
    scene = hall_scene(rng=41, num_tags=6)
    before = analyze_coverage(scene, grid_spacing=0.4)
    print(f"sparse deployment: {len(scene.tags)} tags")
    print(f"coverage {before.coverage_rate:.0%}, "
          f"deadzone {before.deadzone_rate:.0%}")
    print("\n".join(before.ascii_map()))
    print("('#' localizable, '+' one reader only, '.' deadzone)\n")

    print("placing 5 additional tags greedily...")
    result = optimize_tag_placement(
        scene, num_new_tags=5, rng=42, grid_spacing=0.4, candidate_count=30
    )
    print("\n".join(result.rows()))

    after = analyze_coverage(result.scene, grid_spacing=0.4)
    print(f"\nafter: coverage {after.coverage_rate:.0%}, "
          f"deadzone {after.deadzone_rate:.0%}")
    print("\n".join(after.ascii_map()))


if __name__ == "__main__":
    main()
