"""Continuous device-free tracking with the streaming engine.

Walks a synthetic target across the hall while ``repro.stream`` turns
the interleaved per-slot tag reads back into fixes:

1. record the read stream to a JSONL file (what a live LLRP collector
   would write),
2. replay it through a :class:`~repro.stream.StreamRunner` built on a
   freshly calibrated, baselined pipeline,
3. print each :class:`~repro.stream.TrackFix` against the ground-truth
   walk, plus the ingest/assembly counters.

Because scene seeds pin tag EPCs, the recording replays into an
identical deployment rebuilt from its header — the same mechanism
``python -m repro stream --record/--replay`` uses.

Run with::

    PYTHONPATH=src python examples/streaming_demo.py
"""

from __future__ import annotations

import os
import tempfile

from repro import DWatch, MeasurementSession, hall_scene
from repro.stream import (
    RecordingHeader,
    StreamConfig,
    StreamRunner,
    read_header,
    read_recording,
    write_recording,
)
from repro.stream.synthetic import (
    SyntheticStreamConfig,
    synthetic_reads,
    target_positions,
)

SEED = 11
FIXES = 6


def main() -> None:
    recording = os.path.join(tempfile.mkdtemp(), "walk.jsonl")
    scene = hall_scene(rng=SEED)
    config = SyntheticStreamConfig(fixes=FIXES)

    print("recording a synthetic walk...")
    written = write_recording(
        recording,
        synthetic_reads(scene, config, rng=SEED + 3),
        RecordingHeader(environment="hall", seed=SEED, description="demo walk"),
    )
    print(f"  {written} reads -> {recording}")

    # Rebuild the deployment the header names, as a replay elsewhere would.
    header = read_header(recording)
    replay_scene = hall_scene(rng=header.seed)
    dwatch = DWatch(replay_scene)
    print("calibrating readers over the air...")
    dwatch.calibrate(rng=header.seed + 1)
    print("collecting empty-area baseline...")
    session = MeasurementSession(replay_scene, rng=header.seed + 2)
    dwatch.collect_baseline([session.capture() for _ in range(2)])

    runner = StreamRunner(dwatch, StreamConfig(decay=0.8))
    truth = target_positions(replay_scene, config)
    print("\nreplaying the stream:")
    for fix in runner.run(read_recording(recording)):
        actual = truth[fix.index] if fix.index < len(truth) else None
        if fix.position is None:
            print(f"  fix {fix.index}  t={fix.time_s:.4f}s  no target")
            continue
        suffix = "  (predicted)" if fix.predicted_only else ""
        error = ""
        if actual is not None:
            dx = fix.position.x - actual.x
            dy = fix.position.y - actual.y
            error = f"  error {100.0 * (dx * dx + dy * dy) ** 0.5:.0f} cm"
        print(
            f"  fix {fix.index}  t={fix.time_s:.4f}s  "
            f"({fix.position.x:.2f}, {fix.position.y:.2f}){error}{suffix}"
        )

    stats = runner.queue.stats
    print(
        f"\ncounters: reads {stats.accepted}  dropped {stats.dropped}  "
        f"late {runner.assembler.late_reads}  "
        f"torn sweeps {runner.assembler.torn_sweeps}  "
        f"duplicates {runner.assembler.duplicate_reads}"
    )


if __name__ == "__main__":
    main()
