"""Trace and meter a full D-Watch run with the observability layer.

Runs the calibrate → baseline → localize workflow in the hall scene
with tracing enabled, then prints:

* the metrics snapshot (counters + latency histograms),
* the span tree of the localization fix, reconstructed from the
  JSONL trace file — the same file ``--trace`` writes from the CLI.

Run with::

    PYTHONPATH=src python examples/observability_demo.py
"""

from __future__ import annotations

import os
import tempfile

from repro import DWatch, MeasurementSession, hall_scene, human_target
from repro import obs
from repro.obs.metrics import render_snapshot
from repro.obs.trace import load_trace_jsonl


def span_tree(records):
    """Render the span records as an indented tree with timings."""
    children = {}
    for record in records:
        children.setdefault(record["parent_id"], []).append(record)
    lines = []

    def walk(parent_id, depth):
        for record in children.get(parent_id, []):
            lines.append(
                f"{'  ' * depth}{record['name']:<{40 - 2 * depth}}"
                f"{record['duration_ms']:9.2f} ms"
            )
            walk(record["span_id"], depth + 1)

    walk(None, 0)
    return lines


def main() -> None:
    trace_file = os.path.join(tempfile.mkdtemp(), "trace.jsonl")
    scene = hall_scene(rng=1)

    with obs.observed(trace_file=trace_file) as state:
        dwatch = DWatch(scene)
        print("calibrating (traced)...")
        dwatch.calibrate(rng=2)
        session = MeasurementSession(scene, rng=3)
        dwatch.collect_baseline([session.capture() for _ in range(2)])

        # A target midway between a tag and a reader is guaranteed to
        # shadow at least one monitored path.
        position = (scene.tags[0].position + scene.readers[0].array.centroid) / 2.0
        estimates = dwatch.localize(session.capture([human_target(position)]))
        if estimates:
            print(
                f"estimate: ({estimates[0].position.x:.2f}, "
                f"{estimates[0].position.y:.2f})"
            )
        else:
            print("target not covered from here")

    print("\n=== metrics snapshot ===")
    print("\n".join(render_snapshot(state.registry.snapshot())))

    records = load_trace_jsonl(trace_file)
    print(f"\n=== span tree ({len(records)} spans, {trace_file}) ===")
    # The full tree includes hundreds of per-tag DSP spans; show the
    # localization fix only (the last root trace).
    last_trace = records[-1]["trace_id"]
    fix = [r for r in records if r["trace_id"] == last_trace]
    print("\n".join(span_tree(fix)))


if __name__ == "__main__":
    main()
