"""Virtual touch screen: track a fist writing letters in the air.

The paper's Section 6.8 application: a user writes "P" and "O" above a
2 m x 2 m table ringed by 26 tags and two short-range arrays; D-Watch
passively tracks the fist at centimetre scale and the Kalman tracker
renders the trajectory.  The script prints an ASCII rendering of the
recovered stroke next to the ground truth.

Run:  python examples/virtual_touch_screen.py
"""

from __future__ import annotations

from repro import DWatch, MeasurementSession, fist_target, table_scene
from repro.constants import TABLE_GRID_CELL_M
from repro.core.tracker import KalmanTracker
from repro.experiments.fig21_fist import interpolate_trajectory, letter_waypoints
from repro.utils.stats import summarize_errors


def render(points, room, width=40, height=20, mark="o"):
    """ASCII-render a set of points onto a table-sized canvas."""
    canvas = [[" "] * width for _ in range(height)]
    for p in points:
        col = int((p.x - room.min_x) / room.width * (width - 1))
        row = int((room.max_y - p.y) / room.height * (height - 1))
        if 0 <= row < height and 0 <= col < width:
            canvas[row][col] = mark
    return ["".join(row) for row in canvas]


def main() -> None:
    scene = table_scene(rng=4)
    dwatch = DWatch(scene, cell_size=TABLE_GRID_CELL_M)
    dwatch.calibrate(rng=5)
    session = MeasurementSession(scene, rng=6)
    dwatch.collect_baseline([session.capture() for _ in range(3)])

    for letter in ("P", "O"):
        waypoints = letter_waypoints(letter, scene.room.center)
        truth = interpolate_trajectory(waypoints, speed_mps=0.5, dt=0.1)
        tracker = KalmanTracker(process_noise=2.0, measurement_noise=0.05)
        recovered, errors = [], []
        for step, position in enumerate(truth):
            fist = fist_target(position)
            estimates = dwatch.localize(session.capture([fist]))
            fix = estimates[0].position if estimates else None
            if fix is None and not tracker.initialized:
                continue
            point = tracker.update(step * 0.1, fix)
            recovered.append(point.position)
            errors.append(fist.localization_error(point.position))

        summary = summarize_errors(errors)
        print(f"\nletter {letter!r}: {summary.as_row()}")
        truth_render = render(truth, scene.room)
        recovered_render = render(recovered, scene.room, mark="x")
        print("ground truth" + " " * 30 + "| recovered")
        for left, right in zip(truth_render, recovered_render):
            print(f"{left} | {right}")


if __name__ == "__main__":
    main()
