#!/usr/bin/env bash
# Repo check gate: static analysis + the tier-1 test suite.
#
# Usage: scripts/check.sh
# Run from the repository root.
#
# Gates, in order:
#   1. reprolint  — the repo's own AST linter (stdlib-only, always runs)
#   2. ruff       — general lint (skipped when not installed)
#   3. mypy       — strict typing of the signal core (skipped when not
#                   installed; the allowlist lives in pyproject.toml)
#   4. pytest     — the tier-1 suite

set -euo pipefail

cd "$(dirname "$0")/.."

echo "== reprolint (domain rules RL001-RL005) =="
python -m tools.reprolint src/

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint (pip install ruff to enable) =="
fi

if python -c "import mypy" >/dev/null 2>&1; then
    echo "== mypy --strict (signal-core allowlist) =="
    python -m mypy --strict -p repro
else
    echo "== mypy not installed; skipping type check (pip install mypy to enable) =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q
