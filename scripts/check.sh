#!/usr/bin/env bash
# Repo check gate: static analysis + the tier-1 test suite.
#
# Usage: scripts/check.sh
# Run from the repository root.
#
# Gates, in order:
#   1. reprolint  — the repo's own AST linter, domain rules RL001-RL006
#                   plus the two-pass concurrency rules RL007-RL010
#                   (stdlib-only, always runs; JSON report kept as a CI
#                   artifact in REPROLINT_report.json)
#   2. ruff       — general lint (skipped when not installed)
#   3. mypy       — strict typing of the signal core (skipped when not
#                   installed; the allowlist lives in pyproject.toml)
#   4. smoke      — `repro stream` record -> replay round trip
#   5. sanitizer  — REPRO_DEBUG=1 stream run; the lock-sanitizer report
#                   must show no inversions and no unguarded accesses
#   6. chaos      — single-reader-loss run must still emit fixes
#   7. ops        — live /metrics scrape must pass the exposition validator
#   8. bench      — scripts/bench.py --smoke writes BENCH_pipeline.json
#   9. obs bench  — scripts/bench.py --obs --smoke writes BENCH_obs.json
#  10. soak       — scripts/soak.py --smoke (bounded RSS/cardinality/queues)
#  11. serve      — scripts/loadgen.py --smoke drives a shard fleet over
#                   real TCP (kill/restore drill, zero-leakage sweep)
#                   and writes BENCH_serve.json
#  12. chaos fleet — scripts/chaos_fleet.py --smoke injects all six
#                   fault families (partition, slow-loris, corruption,
#                   checkpoint rot, hang, overload) and writes
#                   BENCH_chaos.json
#  13. pytest     — the tier-1 suite

set -euo pipefail

cd "$(dirname "$0")/.."

echo "== reprolint (domain rules RL001-RL006, concurrency rules RL007-RL010) =="
python -m tools.reprolint src/ --format json --statistics > REPROLINT_report.json \
    || { echo "reprolint findings (full report in REPROLINT_report.json):"; \
         python -m tools.reprolint src/ --statistics || true; exit 1; }

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint (pip install ruff to enable) =="
fi

if python -c "import mypy" >/dev/null 2>&1; then
    echo "== mypy --strict (signal-core allowlist) =="
    python -m mypy --strict -p repro
else
    echo "== mypy not installed; skipping type check (pip install mypy to enable) =="
fi

echo "== streaming smoke (record -> replay round trip) =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
PYTHONPATH=src python -m repro --quiet stream --environment hall --seed 7 \
    --fixes 1 --record "$SMOKE_DIR/smoke.jsonl"
PYTHONPATH=src python -m repro --quiet stream --replay "$SMOKE_DIR/smoke.jsonl"

echo "== lock sanitizer smoke (REPRO_DEBUG=1 stream; no inversions/witnesses) =="
timeout 300 env PYTHONPATH=src REPRO_DEBUG=1 python - <<'SANITIZER_SMOKE'
from repro.analysis import sanitizer
from repro.cli import main

code = main([
    "--quiet", "stream", "--environment", "hall", "--seed", "7",
    "--fixes", "2",
])
assert code == 0, f"sanitized stream exited {code}"
document = sanitizer.write_report("SANITIZER_report.json")
assert document["enabled"], "REPRO_DEBUG gate did not engage"
assert document["locks"], "sanitizer observed no lock activity"
assert document["inversions"] == [], document["inversions"]
assert document["witnesses"] == [], document["witnesses"]
print(f"sanitizer smoke ok: {len(document['locks'])} locks watched, "
      "no inversions, no unguarded accesses")
SANITIZER_SMOKE

echo "== chaos smoke (reader loss must not stop the fix stream) =="
# Hard timeout: a hung degraded pipeline is exactly the regression this
# step exists to catch.
timeout 300 env PYTHONPATH=src python -m repro --quiet stream \
    --environment hall --seed 7 --fixes 3 --chaos reader-loss \
    | grep -q "^fix " \
    || { echo "chaos smoke produced no fixes"; exit 1; }

echo "== ops smoke (telemetry run, live /metrics must validate) =="
# A stream with every telemetry flag on: the fix log must be readable
# and the live scrape must pass the in-repo Prometheus validator.
timeout 300 env PYTHONPATH=src python - <<'OPS_SMOKE'
import urllib.request
from repro.cli import main
from repro.obs.export import validate_exposition
from repro.stream import read_fix_log

code = main([
    "--quiet", "stream", "--environment", "table", "--seed", "7",
    "--fixes", "2", "--fix-log", "/tmp/check-fixes.jsonl",
])
assert code == 0, f"telemetry stream exited {code}"
fixes = list(read_fix_log("/tmp/check-fixes.jsonl"))
assert fixes and all(f.provenance is not None for f in fixes), \
    "fix log missing provenance"

from repro import obs
from repro.obs import OpsServer
obs.configure()
obs.count("stream.fixes")
with OpsServer(port=0) as server:
    with urllib.request.urlopen(f"{server.url}/metrics", timeout=10) as r:
        families = validate_exposition(r.read().decode("utf-8"))
obs.shutdown()
assert "repro_stream_fixes_total" in families
print(f"ops smoke ok: {len(fixes)} logged fixes, "
      f"{len(families)} exposed families")
OPS_SMOKE

echo "== bench smoke (perf harness writes BENCH_pipeline.json) =="
# Validates the perf-trajectory harness end to end; the smoke workload
# is sized for gating, not for recording speedups (run bench.py without
# --smoke for those).  When a committed record already exists it is
# diffed report-only: smoke workloads on a loaded runner jitter past
# the 15% gate routinely, so regressions print here but do not fail
# the check (a CI perf job can drop the `|| true` to make it a gate).
if [ -f BENCH_pipeline.json ]; then
    cp BENCH_pipeline.json "$SMOKE_DIR/bench_baseline.json"
    PYTHONPATH=src python scripts/bench.py --smoke --output BENCH_pipeline.json \
        --compare "$SMOKE_DIR/bench_baseline.json" \
        || echo "bench compare: regression reported (report-only in check.sh)"
else
    PYTHONPATH=src python scripts/bench.py --smoke --output BENCH_pipeline.json
fi

echo "== obs bench smoke (overhead harness writes BENCH_obs.json) =="
PYTHONPATH=src python scripts/bench.py --obs --smoke --output BENCH_obs.json

echo "== chaos soak smoke (bounded RSS, flat cardinality, drained queues) =="
timeout 600 env PYTHONPATH=src python scripts/soak.py --smoke \
    --report SOAK_report.json

echo "== serve smoke (TCP fleet: fixes emitted, drill passes, clean shutdown) =="
# The load generator self-hosts a supervisor + ingest server on
# ephemeral ports, publishes over real TCP, runs the kill/restore
# drill and the cross-shard leakage sweep, and exits non-zero unless
# every gate in BENCH_serve.json passed.
timeout 600 env PYTHONPATH=src python scripts/loadgen.py --smoke \
    --output BENCH_serve.json

echo "== chaos fleet smoke (six fault families, recovery + zero-loss gates) =="
# Every family must recover within its deadline with zero read loss,
# chained lineage and zero cross-deployment leakage; the script exits
# non-zero if any gate fails.
timeout 600 env PYTHONPATH=src python scripts/chaos_fleet.py --smoke \
    --output BENCH_chaos.json

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q
