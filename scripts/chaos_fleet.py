"""Fleet chaos harness: run the fault-family drills, write BENCH_chaos.json.

Six fault families, each injected into a real fleet (registry +
supervisor + TCP ingest) through :mod:`repro.faults.net` and the
supervisor's chaos hooks, each gated on the same invariants:

* **Recovered within deadline** — the family's MTTR (fault injection
  or heal to verified recovery) stays under the drill deadline.
* **Zero fix loss** — every read the publisher shipped was accepted;
  nothing was dropped on the floor by a queue, a shed, or a restart.
* **Lineage chained** — post-restart fixes carry the pre-fault
  checkpoint id in their provenance (restart drills).
* **Zero cross-deployment leakage** — no fix's provenance names a
  reader outside its own deployment's roster.

Families: partition, slow_loris, frame_corruption,
checkpoint_corruption, shard_hang, overload — see
``repro.faults.drill`` for what each injects and asserts.

Run:  PYTHONPATH=src python scripts/chaos_fleet.py [--smoke]
          [--families a,b,...] [--seed N] [--workers thread|process]
          [--output BENCH_chaos.json]

``--smoke`` shrinks the per-family workload for CI gating; the full
run is what the committed ``BENCH_chaos.json`` scorecard comes from.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import List

import numpy as np

from repro import obs
from repro.faults.drill import DRILL_FAMILIES, DrillConfig, run_drills


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller per-family workload for CI gating",
    )
    parser.add_argument(
        "--families",
        default=None,
        help=(
            "comma-separated subset to run "
            f"(default: all of {', '.join(DRILL_FAMILIES)})"
        ),
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--fixes", type=int, default=3)
    parser.add_argument(
        "--workers", default="thread", choices=("thread", "process")
    )
    parser.add_argument(
        "--deadline", type=float, default=30.0, dest="deadline",
        help="per-family recovery deadline, seconds",
    )
    parser.add_argument("--output", default="BENCH_chaos.json")
    args = parser.parse_args()

    families = (
        None
        if args.families is None
        else [name.strip() for name in args.families.split(",") if name.strip()]
    )
    config = DrillConfig(
        seed=args.seed,
        fixes=2 if args.smoke else args.fixes,
        workers=args.workers,
        recovery_deadline_s=args.deadline,
    )

    obs.configure()
    started = time.perf_counter()
    chosen = list(DRILL_FAMILIES) if families is None else families
    print(f"running {len(chosen)} drill families: {', '.join(chosen)}")
    results = []
    for name in chosen:
        print(f"[{name}] injecting...")
        result = run_drills(config, [name])[0]
        results.append(result)
        verdict = "PASS" if result.passed else "FAIL"
        print(
            f"[{name}] {verdict}: recovered={result.recovered} "
            f"mttr={result.mttr_s:.2f}s"
        )
        for failure in result.failures:
            print(f"[{name}]   failure: {failure}", file=sys.stderr)
    obs.shutdown()

    leakage_checked = sum(
        result.details.get("leakage", {}).get("checked_fixes", 0)
        for result in results
    )
    leakage_violations = sum(
        result.details.get("leakage", {}).get("violations", 0)
        for result in results
    )
    failures: List[str] = [
        f"{result.family}: {failure}"
        for result in results
        for failure in result.failures
    ]
    record = {
        "schema": "repro.bench.chaos.v1",
        "smoke": args.smoke,
        "seed": args.seed,
        "workers": args.workers,
        "elapsed_s": time.perf_counter() - started,
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "families": {
            result.family: result.to_dict() for result in results
        },
        "families_recovered": sum(1 for r in results if r.recovered),
        "families_total": len(results),
        "leakage": {
            "checked_fixes": leakage_checked,
            "violations": leakage_violations,
        },
        "passed": not failures,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"{record['families_recovered']}/{record['families_total']} "
        f"families recovered; leakage: {leakage_checked} fixes checked, "
        f"{leakage_violations} violations"
    )
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
