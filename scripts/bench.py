"""Perf-trajectory harness: measure the fix pipeline, write BENCH_pipeline.json.

Records the two headline workloads every perf PR must not regress:

* ``benchmarks/test_latency.py``'s workload — mean/p95 fix time over
  repeated single-shot localizations, plus the per-stage ``latency.*``
  span breakdown from :mod:`repro.obs`.
* ``benchmarks/test_stream_throughput.py``'s workload — sustained
  fixes/sec over the synthetic hall walk.

Both take the best of several repeats after a warmup run: single cold
runs jitter by 2x on shared machines, and best-of-N is the stable
capacity figure a perf trajectory can be compared across.

Both reuse the exact experiment runners the benchmark gates call, so
the recorded numbers and the gated numbers measure the same code path.

Run:  PYTHONPATH=src python scripts/bench.py [--smoke] [--obs]
                                             [--output FILE]
                                             [--baseline FILE]

``--smoke`` shrinks the workload for CI gating (one repeat, fewer
fixes): it validates the harness end to end and still writes the JSON.
``--baseline`` compares against a previously written file and prints
speedups.
``--obs`` switches to the observability-overhead benchmark instead:
the same streaming workload with instrumentation disabled vs enabled,
written to ``BENCH_obs.json`` — the number backing the "disabled obs
is free, enabled obs is cheap" claim in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.experiments.latency import run_latency
from repro.experiments.throughput import build_stream_scenario, stream_once
from repro.stream.runner import StreamRunner


def bench_latency(fixes: int, repeats: int) -> Dict[str, object]:
    """Single-shot fix latency: warm up, then best mean of N runs."""
    run_latency(fixes=2, rng=11)  # warm BLAS/import paths
    best = None
    runs: List[float] = []
    for _ in range(repeats):
        result = run_latency(fixes=fixes, rng=11)
        runs.append(result.mean_ms)
        if best is None or result.mean_ms < best.mean_ms:
            best = result
    assert best is not None
    return {
        "fixes": fixes,
        "repeats": repeats,
        "mean_fix_ms": best.mean_ms,
        "mean_fix_ms_runs": runs,
        "p95_fix_ms": float(np.percentile(best.times_s, 95)) * 1e3,
        "stage_ms": best.stage_ms,
    }


def bench_stream(fixes: int, repeats: int) -> Dict[str, object]:
    """Streaming throughput: setup once, warm up, best of N streams."""
    dwatch, reads = build_stream_scenario(fixes=fixes)
    stream_once(dwatch, reads)  # warmup: first run pays cache fills
    best = None
    runs: List[float] = []
    for _ in range(repeats):
        result = stream_once(dwatch, reads)
        runs.append(result.fixes_per_s)
        if best is None or result.fixes_per_s > best.fixes_per_s:
            best = result
    assert best is not None
    return {
        "fixes": len(best.fixes),
        "reads": best.reads,
        "repeats": repeats,
        "fixes_per_s": best.fixes_per_s,
        "fixes_per_s_runs": runs,
        "reads_per_s": best.reads_per_s,
        "window_p50_ms": best.p50_ms,
        "window_p99_ms": best.p99_ms,
        "stage_ms": best.stage_ms,
    }


def _stream_elapsed_s(dwatch, reads, enabled: bool) -> float:
    """Wall time of one full stream run, with or without obs recording."""
    runner = StreamRunner(dwatch)
    if enabled:
        with obs.observed():
            started = time.perf_counter()
            list(runner.run(iter(reads)))
            return time.perf_counter() - started
    started = time.perf_counter()
    list(runner.run(iter(reads)))
    return time.perf_counter() - started


def bench_obs(fixes: int, repeats: int) -> Dict[str, object]:
    """Observability overhead: the identical stream, obs off vs on.

    Interleaves the two configurations (off, on, off, on, ...) so slow
    machine drift hits both equally, and takes the best of N each —
    the same best-of discipline the headline workloads use.
    """
    dwatch, reads = build_stream_scenario(fixes=fixes)
    _stream_elapsed_s(dwatch, reads, enabled=False)  # warmup
    _stream_elapsed_s(dwatch, reads, enabled=True)
    disabled_runs: List[float] = []
    enabled_runs: List[float] = []
    for _ in range(repeats):
        disabled_runs.append(_stream_elapsed_s(dwatch, reads, enabled=False))
        enabled_runs.append(_stream_elapsed_s(dwatch, reads, enabled=True))
    best_disabled = min(disabled_runs)
    best_enabled = min(enabled_runs)
    fix_count = max(1, fixes)
    overhead_pct = (
        (best_enabled - best_disabled) / best_disabled * 100.0
        if best_disabled > 0
        else 0.0
    )
    with obs.observed() as state:
        runner = StreamRunner(dwatch)
        list(runner.run(iter(reads)))
        series = state.registry.series_count()
    return {
        "fixes": fixes,
        "reads": len(reads),
        "repeats": repeats,
        "disabled_fix_ms": best_disabled / fix_count * 1e3,
        "enabled_fix_ms": best_enabled / fix_count * 1e3,
        "disabled_fix_ms_runs": [r / fix_count * 1e3 for r in disabled_runs],
        "enabled_fix_ms_runs": [r / fix_count * 1e3 for r in enabled_runs],
        "overhead_pct": overhead_pct,
        "metric_series": series,
    }


def _speedup(label: str, before: float, after: float, higher_is_better: bool):
    if before <= 0 or after <= 0:
        return
    ratio = after / before if higher_is_better else before / after
    print(f"  {label:<22} {before:10.2f} -> {after:10.2f}   {ratio:5.2f}x")


def compare(baseline: Dict[str, object], current: Dict[str, object]) -> None:
    """Print speedups of ``current`` over ``baseline``."""
    print("speedups vs baseline:")
    b_lat = baseline.get("latency", {})
    c_lat = current.get("latency", {})
    if b_lat and c_lat:
        _speedup(
            "mean_fix_ms",
            float(b_lat["mean_fix_ms"]),
            float(c_lat["mean_fix_ms"]),
            higher_is_better=False,
        )
    b_str = baseline.get("stream", {})
    c_str = current.get("stream", {})
    if b_str and c_str:
        _speedup(
            "fixes_per_s",
            float(b_str["fixes_per_s"]),
            float(c_str["fixes_per_s"]),
            higher_is_better=True,
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI gating (one repeat, fewer fixes)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="measure observability overhead instead of the headline "
        "workloads (writes BENCH_obs.json)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the benchmark record "
        "(default: BENCH_pipeline.json, or BENCH_obs.json with --obs)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="previously written record to print speedups against",
    )
    args = parser.parse_args(argv)
    output = args.output or ("BENCH_obs.json" if args.obs else "BENCH_pipeline.json")

    if args.obs:
        obs_fixes = 3 if args.smoke else 6
        obs_repeats = 1 if args.smoke else 5
        started = time.perf_counter()
        print(
            f"bench: obs overhead ({obs_fixes} fixes x {obs_repeats} repeats, "
            "disabled vs enabled)..."
        )
        overhead = bench_obs(obs_fixes, obs_repeats)
        print(
            f"  disabled {overhead['disabled_fix_ms']:.1f} ms/fix   "
            f"enabled {overhead['enabled_fix_ms']:.1f} ms/fix   "
            f"overhead {overhead['overhead_pct']:+.1f}%   "
            f"series {overhead['metric_series']}"
        )
        record = {
            "schema": "repro.bench.obs.v1",
            "smoke": args.smoke,
            "elapsed_s": time.perf_counter() - started,
            "meta": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "machine": platform.machine(),
            },
            "obs": overhead,
        }
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {output}")
        return 0

    latency_fixes = 3 if args.smoke else 10
    latency_repeats = 1 if args.smoke else 5
    stream_fixes = 3 if args.smoke else 6
    stream_repeats = 1 if args.smoke else 5

    started = time.perf_counter()
    print(
        f"bench: latency workload ({latency_fixes} fixes x "
        f"{latency_repeats} repeats)..."
    )
    latency = bench_latency(latency_fixes, latency_repeats)
    print(
        f"  best mean {latency['mean_fix_ms']:.1f} ms   "
        f"p95 {latency['p95_fix_ms']:.1f} ms   "
        f"runs {[round(r, 1) for r in latency['mean_fix_ms_runs']]}"
    )
    print(
        f"bench: stream workload ({stream_fixes} fixes x "
        f"{stream_repeats} repeats)..."
    )
    stream = bench_stream(stream_fixes, stream_repeats)
    print(
        f"  best {stream['fixes_per_s']:.1f} fixes/s   "
        f"runs {[round(r, 1) for r in stream['fixes_per_s_runs']]}"
    )

    record = {
        "schema": "repro.bench.v1",
        "smoke": args.smoke,
        "elapsed_s": time.perf_counter() - started,
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "batch_sizes": {
            # (reader, tag) spectra batched per call on each workload.
            "latency_pairs_per_fix": 84,
            "stream_pairs_per_reader_window": 10,
        },
        "latency": latency,
        "stream": stream,
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            compare(json.load(handle), record)
    return 0


if __name__ == "__main__":
    sys.exit(main())
