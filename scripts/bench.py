"""Perf-trajectory harness: measure the fix pipeline, write BENCH_pipeline.json.

Records the two headline workloads every perf PR must not regress:

* ``benchmarks/test_latency.py``'s workload — mean/p95 fix time over
  repeated single-shot localizations, plus the per-stage ``latency.*``
  span breakdown from :mod:`repro.obs`.
* ``benchmarks/test_stream_throughput.py``'s workload — sustained
  fixes/sec over the synthetic hall walk.

Both take the best of several repeats after a warmup run: single cold
runs jitter by 2x on shared machines, and best-of-N is the stable
capacity figure a perf trajectory can be compared across.

Both reuse the exact experiment runners the benchmark gates call, so
the recorded numbers and the gated numbers measure the same code path.

Run:  PYTHONPATH=src python scripts/bench.py [--smoke] [--obs]
                                             [--output FILE]
                                             [--baseline FILE]
                                             [--compare BASELINE.json]

``--smoke`` shrinks the workload for CI gating (one repeat, fewer
fixes): it validates the harness end to end and still writes the JSON.
``--baseline`` compares against a previously written file and prints
speedups.
``--compare`` diffs the headline and per-stage numbers against a
previous record and exits non-zero when any metric regresses by more
than 15% — report-only in ``scripts/check.sh``, a hard gate when a CI
job chooses to make it one.

Besides the two headline workloads the record carries the perf-PR
matrix: per-backend fix latency (``backends``), the streaming walk
with the incremental spectra cache on vs off (``incremental``), and
the rank-1 eigen-update vs full ``eigh`` microbench per array size
(``rank_one_eigh``).
``--obs`` switches to the observability-overhead benchmark instead:
the same streaming workload with instrumentation disabled vs enabled,
written to ``BENCH_obs.json`` — the number backing the "disabled obs
is free, enabled obs is cheap" claim in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.dsp.backend import available_backends, use_backend
from repro.dsp.incremental import (
    eigen_state_from_covariance,
    scaled_rank_one_eigh,
)
from repro.experiments.latency import run_latency
from repro.experiments.throughput import build_stream_scenario, stream_once
from repro.stream.runner import StreamConfig, StreamRunner


def bench_latency(
    fixes: int, repeats: int, backend: Optional[str] = None
) -> Dict[str, object]:
    """Single-shot fix latency: warm up, then best mean of N runs.

    ``backend`` scopes the whole measurement to one array backend (the
    per-backend matrix of ``BENCH_pipeline.json``); ``None`` keeps the
    session default.
    """
    with use_backend(backend):
        run_latency(fixes=2, rng=11)  # warm BLAS/import paths
        best = None
        runs: List[float] = []
        for _ in range(repeats):
            result = run_latency(fixes=fixes, rng=11)
            runs.append(result.mean_ms)
            if best is None or result.mean_ms < best.mean_ms:
                best = result
    assert best is not None
    return {
        "fixes": fixes,
        "repeats": repeats,
        "mean_fix_ms": best.mean_ms,
        "mean_fix_ms_runs": runs,
        "p95_fix_ms": float(np.percentile(best.times_s, 95)) * 1e3,
        "stage_ms": best.stage_ms,
    }


def bench_backends(fixes: int, repeats: int) -> Dict[str, object]:
    """Fix latency per verified array backend.

    Only backends that import *and* pass the verification probe on this
    machine appear — a NumPy-only box records just ``numpy``, a
    torch-equipped CI leg adds ``torch``.  The headline numbers stay
    the NumPy ones; these entries exist so a backend regression is
    visible in the same trajectory file.
    """
    matrix: Dict[str, object] = {}
    for name in available_backends():
        entry = bench_latency(fixes, repeats, backend=name)
        matrix[name] = {
            "mean_fix_ms": entry["mean_fix_ms"],
            "p95_fix_ms": entry["p95_fix_ms"],
            "mean_fix_ms_runs": entry["mean_fix_ms_runs"],
        }
    return matrix


def bench_incremental(fixes: int, repeats: int) -> Dict[str, object]:
    """The same hall walk with the spectra cache on vs off.

    Streams identical reads through ``incremental=True`` (revision-
    keyed spectra cache + rank-1 eigen updates where eligible) and
    ``incremental=False`` (every window recomputes every pair), best of
    N each, and reports the ``dsp.incremental.*`` counters of the
    cached run so the record shows *why* the two differ.
    """
    dwatch, reads = build_stream_scenario(fixes=fixes)
    on_config = StreamConfig(incremental=True)
    off_config = StreamConfig(incremental=False)
    stream_once(dwatch, reads, on_config)  # warmup: cache fills
    stream_once(dwatch, reads, off_config)
    best_on = best_off = None
    for _ in range(repeats):
        on = stream_once(dwatch, reads, on_config)
        off = stream_once(dwatch, reads, off_config)
        if best_on is None or on.fixes_per_s > best_on.fixes_per_s:
            best_on = on
        if best_off is None or off.fixes_per_s > best_off.fixes_per_s:
            best_off = off
    assert best_on is not None and best_off is not None
    return {
        "fixes": fixes,
        "repeats": repeats,
        "incremental_fixes_per_s": best_on.fixes_per_s,
        "full_fixes_per_s": best_off.fixes_per_s,
        "speedup": (
            best_on.fixes_per_s / best_off.fixes_per_s
            if best_off.fixes_per_s > 0
            else 0.0
        ),
        # Explicit zeros: the default hall walk advances every pair's
        # revision each window and folds multi-column windows, so none
        # of the three fire there — recording 0 keeps that visible.
        "counters": {
            name: best_on.counters.get(name, 0.0)
            for name in (
                "dsp.incremental.skipped",
                "dsp.incremental.updates",
                "dsp.incremental.fallbacks",
            )
        },
    }


def bench_rank_one(repeats: int) -> Dict[str, object]:
    """Rank-1 eigen-update vs full ``eigh``, per array size.

    The microbench behind the incremental path's existence: one
    scale-plus-rank-1 step via the secular-equation updater against one
    fresh ``numpy.linalg.eigh`` of the updated matrix, best of N.  The
    small sizes are the COTS deployments (where LAPACK's ``eigh`` wins
    outright — the recorded numbers keep that honest); the large ones
    show where the O(M^2)-plus-GEMM update crosses over.
    """
    rng = np.random.default_rng(20160915)
    out: Dict[str, object] = {}
    for m in (3, 8, 32, 128):
        snapshots = 2 * m  # full-rank: a rank-deficient spectrum would
        # deflate the updater and time its early return instead
        x = rng.standard_normal((m, snapshots)) + 1j * rng.standard_normal(
            (m, snapshots)
        )
        r = (x @ x.conj().T) / snapshots
        state = eigen_state_from_covariance(r, revision=0)
        column = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        updated = 0.9 * r + 0.1 * np.outer(column, column.conj())
        updated = (updated + updated.conj().T) / 2.0
        loops = 50
        best_update = best_eigh = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            for _ in range(loops):
                scaled_rank_one_eigh(
                    state.values, state.vectors, 0.9, 0.1, column
                )
            best_update = min(
                best_update, (time.perf_counter() - started) / loops
            )
            started = time.perf_counter()
            for _ in range(loops):
                np.linalg.eigh(updated)
            best_eigh = min(
                best_eigh, (time.perf_counter() - started) / loops
            )
        out[str(m)] = {
            "rank_one_us": best_update * 1e6,
            "full_eigh_us": best_eigh * 1e6,
            "speedup": best_eigh / best_update if best_update > 0 else 0.0,
        }
    return out


def bench_stream(fixes: int, repeats: int) -> Dict[str, object]:
    """Streaming throughput: setup once, warm up, best of N streams."""
    dwatch, reads = build_stream_scenario(fixes=fixes)
    stream_once(dwatch, reads)  # warmup: first run pays cache fills
    best = None
    runs: List[float] = []
    for _ in range(repeats):
        result = stream_once(dwatch, reads)
        runs.append(result.fixes_per_s)
        if best is None or result.fixes_per_s > best.fixes_per_s:
            best = result
    assert best is not None
    return {
        "fixes": len(best.fixes),
        "reads": best.reads,
        "repeats": repeats,
        "fixes_per_s": best.fixes_per_s,
        "fixes_per_s_runs": runs,
        "reads_per_s": best.reads_per_s,
        "window_p50_ms": best.p50_ms,
        "window_p99_ms": best.p99_ms,
        "stage_ms": best.stage_ms,
    }


def _stream_elapsed_s(dwatch, reads, enabled: bool) -> float:
    """Wall time of one full stream run, with or without obs recording."""
    runner = StreamRunner(dwatch)
    if enabled:
        with obs.observed():
            started = time.perf_counter()
            list(runner.run(iter(reads)))
            return time.perf_counter() - started
    started = time.perf_counter()
    list(runner.run(iter(reads)))
    return time.perf_counter() - started


def bench_obs(fixes: int, repeats: int) -> Dict[str, object]:
    """Observability overhead: the identical stream, obs off vs on.

    Interleaves the two configurations (off, on, off, on, ...) so slow
    machine drift hits both equally, and takes the best of N each —
    the same best-of discipline the headline workloads use.
    """
    dwatch, reads = build_stream_scenario(fixes=fixes)
    _stream_elapsed_s(dwatch, reads, enabled=False)  # warmup
    _stream_elapsed_s(dwatch, reads, enabled=True)
    disabled_runs: List[float] = []
    enabled_runs: List[float] = []
    for _ in range(repeats):
        disabled_runs.append(_stream_elapsed_s(dwatch, reads, enabled=False))
        enabled_runs.append(_stream_elapsed_s(dwatch, reads, enabled=True))
    best_disabled = min(disabled_runs)
    best_enabled = min(enabled_runs)
    fix_count = max(1, fixes)
    overhead_pct = (
        (best_enabled - best_disabled) / best_disabled * 100.0
        if best_disabled > 0
        else 0.0
    )
    with obs.observed() as state:
        runner = StreamRunner(dwatch)
        list(runner.run(iter(reads)))
        series = state.registry.series_count()
    return {
        "fixes": fixes,
        "reads": len(reads),
        "repeats": repeats,
        "disabled_fix_ms": best_disabled / fix_count * 1e3,
        "enabled_fix_ms": best_enabled / fix_count * 1e3,
        "disabled_fix_ms_runs": [r / fix_count * 1e3 for r in disabled_runs],
        "enabled_fix_ms_runs": [r / fix_count * 1e3 for r in enabled_runs],
        "overhead_pct": overhead_pct,
        "metric_series": series,
    }


def _speedup(label: str, before: float, after: float, higher_is_better: bool):
    if before <= 0 or after <= 0:
        return
    ratio = after / before if higher_is_better else before / after
    print(f"  {label:<22} {before:10.2f} -> {after:10.2f}   {ratio:5.2f}x")


def compare(baseline: Dict[str, object], current: Dict[str, object]) -> None:
    """Print speedups of ``current`` over ``baseline``."""
    print("speedups vs baseline:")
    b_lat = baseline.get("latency", {})
    c_lat = current.get("latency", {})
    if b_lat and c_lat:
        _speedup(
            "mean_fix_ms",
            float(b_lat["mean_fix_ms"]),
            float(c_lat["mean_fix_ms"]),
            higher_is_better=False,
        )
    b_str = baseline.get("stream", {})
    c_str = current.get("stream", {})
    if b_str and c_str:
        _speedup(
            "fixes_per_s",
            float(b_str["fixes_per_s"]),
            float(c_str["fixes_per_s"]),
            higher_is_better=True,
        )


#: Relative slowdown tolerated by ``--compare`` before the exit code
#: flips: stage means on a 1-core CI runner jitter by several percent,
#: so the gate only trips on changes no noise band explains.
COMPARE_THRESHOLD = 0.15


def compare_records(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float = COMPARE_THRESHOLD,
) -> int:
    """Diff two benchmark records; non-zero when anything regressed.

    Compares the headline latency mean/p95, streaming throughput, and
    every per-stage mean present in both records.  A metric more than
    ``threshold`` worse than the baseline is printed as a REGRESSION
    and flips the exit code; everything else prints as a delta line.
    Records from different workload sizes (smoke vs full) are not
    comparable and short-circuit to success.
    """
    if bool(baseline.get("smoke")) != bool(current.get("smoke")):
        print(
            "compare: baseline and current records use different "
            "workloads (smoke vs full); skipping the diff"
        )
        return 0
    b_lat = baseline.get("latency") or {}
    c_lat = current.get("latency") or {}
    rows: List[tuple] = []  # (label, base, cur, higher_is_better)
    for key in ("mean_fix_ms", "p95_fix_ms"):
        if key in b_lat and key in c_lat:
            rows.append((key, float(b_lat[key]), float(c_lat[key]), False))
    b_str = baseline.get("stream") or {}
    c_str = current.get("stream") or {}
    if "fixes_per_s" in b_str and "fixes_per_s" in c_str:
        rows.append(
            (
                "fixes_per_s",
                float(b_str["fixes_per_s"]),
                float(c_str["fixes_per_s"]),
                True,
            )
        )
    b_stages = b_lat.get("stage_ms") or {}
    c_stages = c_lat.get("stage_ms") or {}
    for name in sorted(set(b_stages) & set(c_stages)):
        rows.append(
            (
                f"stage {name}",
                float(b_stages[name]["mean"]),
                float(c_stages[name]["mean"]),
                False,
            )
        )
    regressions = 0
    print(f"compare vs baseline (threshold {threshold:.0%}):")
    for label, base, cur, higher_is_better in rows:
        if base <= 0.0:
            continue
        delta = (cur - base) / base
        regressed = (-delta if higher_is_better else delta) > threshold
        marker = "REGRESSION" if regressed else ""
        regressions += int(regressed)
        print(
            f"  {label:<34} {base:9.3f} -> {cur:9.3f}  "
            f"{delta:+7.1%}  {marker}"
        )
    if regressions:
        print(f"compare: {regressions} metric(s) regressed > {threshold:.0%}")
        return 1
    print("compare: no regressions beyond threshold")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI gating (one repeat, fewer fixes)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="measure observability overhead instead of the headline "
        "workloads (writes BENCH_obs.json)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the benchmark record "
        "(default: BENCH_pipeline.json, or BENCH_obs.json with --obs)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="previously written record to print speedups against",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE.json",
        help="diff headline and per-stage numbers against a previous "
        "record; exits non-zero when any metric regresses by more "
        f"than {COMPARE_THRESHOLD:.0%}",
    )
    args = parser.parse_args(argv)
    output = args.output or ("BENCH_obs.json" if args.obs else "BENCH_pipeline.json")

    if args.obs:
        obs_fixes = 3 if args.smoke else 6
        obs_repeats = 1 if args.smoke else 5
        started = time.perf_counter()
        print(
            f"bench: obs overhead ({obs_fixes} fixes x {obs_repeats} repeats, "
            "disabled vs enabled)..."
        )
        overhead = bench_obs(obs_fixes, obs_repeats)
        print(
            f"  disabled {overhead['disabled_fix_ms']:.1f} ms/fix   "
            f"enabled {overhead['enabled_fix_ms']:.1f} ms/fix   "
            f"overhead {overhead['overhead_pct']:+.1f}%   "
            f"series {overhead['metric_series']}"
        )
        record = {
            "schema": "repro.bench.obs.v1",
            "smoke": args.smoke,
            "elapsed_s": time.perf_counter() - started,
            "meta": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "machine": platform.machine(),
            },
            "obs": overhead,
        }
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {output}")
        return 0

    latency_fixes = 3 if args.smoke else 10
    latency_repeats = 1 if args.smoke else 5
    stream_fixes = 3 if args.smoke else 6
    stream_repeats = 1 if args.smoke else 5

    started = time.perf_counter()
    print(
        f"bench: latency workload ({latency_fixes} fixes x "
        f"{latency_repeats} repeats)..."
    )
    latency = bench_latency(latency_fixes, latency_repeats)
    print(
        f"  best mean {latency['mean_fix_ms']:.1f} ms   "
        f"p95 {latency['p95_fix_ms']:.1f} ms   "
        f"runs {[round(r, 1) for r in latency['mean_fix_ms_runs']]}"
    )
    print(
        f"bench: stream workload ({stream_fixes} fixes x "
        f"{stream_repeats} repeats)..."
    )
    stream = bench_stream(stream_fixes, stream_repeats)
    print(
        f"  best {stream['fixes_per_s']:.1f} fixes/s   "
        f"runs {[round(r, 1) for r in stream['fixes_per_s_runs']]}"
    )
    backend_repeats = max(1, latency_repeats // 2)
    print(
        f"bench: per-backend latency ({latency_fixes} fixes x "
        f"{backend_repeats} repeats per backend)..."
    )
    backends = bench_backends(latency_fixes, backend_repeats)
    for name, entry in backends.items():
        print(
            f"  {name:<8} mean {entry['mean_fix_ms']:.1f} ms   "
            f"p95 {entry['p95_fix_ms']:.1f} ms"
        )
    incremental_repeats = max(1, stream_repeats // 2)
    print(
        f"bench: incremental vs full stream ({stream_fixes} fixes x "
        f"{incremental_repeats} repeats each)..."
    )
    incremental = bench_incremental(stream_fixes, incremental_repeats)
    print(
        f"  incremental {incremental['incremental_fixes_per_s']:.1f} fixes/s"
        f"   full {incremental['full_fixes_per_s']:.1f} fixes/s   "
        f"({incremental['speedup']:.2f}x)   counters {incremental['counters']}"
    )
    rank_one = bench_rank_one(1 if args.smoke else 3)
    for m, entry in rank_one.items():
        print(
            f"  rank-1 m={m}: update {entry['rank_one_us']:.0f} us   "
            f"eigh {entry['full_eigh_us']:.0f} us   "
            f"({entry['speedup']:.2f}x)"
        )

    record = {
        "schema": "repro.bench.v1",
        "smoke": args.smoke,
        "elapsed_s": time.perf_counter() - started,
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "batch_sizes": {
            # (reader, tag) spectra batched per call on each workload.
            "latency_pairs_per_fix": 84,
            "stream_pairs_per_reader_window": 10,
        },
        "latency": latency,
        "stream": stream,
        "backends": backends,
        "incremental": incremental,
        "rank_one_eigh": rank_one,
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            compare(json.load(handle), record)
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            return compare_records(json.load(handle), record)
    return 0


if __name__ == "__main__":
    sys.exit(main())
