"""Serving-scale harness: drive a shard fleet over TCP, write BENCH_serve.json.

Measures the numbers the serving layer's scale claim rests on:

* **Deployments sustained** — N synthetic deployments (differing
  reader rosters and seeds) each fed by its own publisher thread over
  real TCP ingest, every shard live and emitting fixes.
* **Aggregate fixes/s** — fleet-wide fix throughput over the wall
  clock of the load phase (publish + drain).
* **Ingest p99** — per-batch publish round-trip latency across every
  publisher.
* **Kill/restore drill** — mid-load, one deployment is checkpointed,
  its shard killed, and the remaining reads published over the same
  TCP path; the supervisor must auto-restart the shard from the
  checkpoint and the resumed fixes must carry the chained lineage.
* **Zero cross-shard leakage** — every fix's provenance may name only
  readers from its own deployment's roster (rosters deliberately
  differ in size, so leakage cannot hide).

Run:  PYTHONPATH=src python scripts/loadgen.py [--smoke]
          [--deployments N] [--fixes N] [--workers thread|process]
          [--output BENCH_serve.json]

``--smoke`` shrinks to 2 deployments x 2 fixes for CI gating; the full
run defaults to 8 deployments, the floor the serving layer commits to.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Sequence

import numpy as np

from repro import obs
from repro.faults.drill import check_leakage, deployment_reads
from repro.obs.server import OpsServer
from repro.serve import (
    DeploymentRegistry,
    DeploymentSpec,
    IngestServer,
    ReadPublisher,
    ShardSupervisor,
    default_fleet,
)
from repro.stream.events import TagRead

#: The deployment the kill/restore drill runs against.
DRILL_DEPLOYMENT = "dep-00"


def percentile_ms(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction`` percentile of ``samples`` (nearest-rank)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


def publish_plain(
    host: str,
    port: int,
    spec: DeploymentSpec,
    reads: Sequence[TagRead],
    batch_size: int,
    out: Dict[str, Any],
) -> None:
    """One ordinary deployment's publisher: ship everything, record RTTs."""
    with ReadPublisher(
        host, port, spec.deployment_id, spec.reader_names
    ) as publisher:
        accepted, dropped = publisher.publish(reads, batch_size=batch_size)
    out["accepted"] = accepted
    out["dropped"] = dropped
    out["rtts_ms"] = publisher.rtts_ms


def publish_with_drill(
    host: str,
    port: int,
    spec: DeploymentSpec,
    reads: Sequence[TagRead],
    batch_size: int,
    supervisor: ShardSupervisor,
    out: Dict[str, Any],
) -> None:
    """The drill deployment: half the load, checkpoint, kill, resume.

    The second half rides the same TCP path as everything else; the
    ingest server's routing must notice the dead shard and restart it
    from the checkpoint while the rest of the fleet keeps streaming.
    """
    half = len(reads) // 2
    with ReadPublisher(
        host, port, spec.deployment_id, spec.reader_names
    ) as publisher:
        a1, d1 = publisher.publish(reads[:half], batch_size=batch_size)
        checkpoint_id = supervisor.checkpoint(spec.deployment_id)
        supervisor.kill(spec.deployment_id)
        a2, d2 = publisher.publish(reads[half:], batch_size=batch_size)
    out["accepted"] = a1 + a2
    out["dropped"] = d1 + d2
    out["rtts_ms"] = publisher.rtts_ms
    out["checkpoint_id"] = checkpoint_id


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI gating (2 deployments x 2 fixes)",
    )
    parser.add_argument("--deployments", type=int, default=8)
    parser.add_argument("--fixes", type=int, default=3)
    parser.add_argument(
        "--workers", default="thread", choices=("thread", "process")
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--batch-size", dest="batch_size", type=int, default=128)
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args()

    deployments = 2 if args.smoke else args.deployments
    fixes = 2 if args.smoke else args.fixes
    if deployments < 1:
        raise SystemExit("need at least one deployment")

    registry = DeploymentRegistry()
    specs = default_fleet(
        deployments, seed=args.seed, num_tags=3, num_antennas=3
    )
    for spec in specs:
        registry.register(spec)

    obs.configure()  # live registry behind the fleet /metrics route
    print(f"generating reads for {deployments} deployments x {fixes} fixes...")
    reads_by_dep = {
        spec.deployment_id: deployment_reads(spec, fixes) for spec in specs
    }
    total_reads = sum(len(r) for r in reads_by_dep.values())
    print(f"  {total_reads} reads total")

    started = time.perf_counter()
    results: Dict[str, Dict[str, Any]] = {
        spec.deployment_id: {} for spec in specs
    }
    with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp:
        supervisor = ShardSupervisor(
            registry,
            checkpoint_dir=Path(tmp) / "checkpoints",
            workers=args.workers,
        )
        supervisor.start()
        ingest = IngestServer(supervisor)
        ops = OpsServer(
            health_provider=supervisor.health_document,
            rings=supervisor.rings(),
        )
        load_started = time.perf_counter()
        try:
            ingest.start()
            ops.start()
            print(
                f"fleet up ({args.workers} workers); ingest on "
                f"{ingest.host}:{ingest.port}, ops on {ops.url}"
            )
            threads = []
            for spec in specs:
                out = results[spec.deployment_id]
                if spec.deployment_id == DRILL_DEPLOYMENT:
                    target: Any = publish_with_drill
                    extra = (supervisor, out)
                else:
                    target = publish_plain
                    extra = (out,)
                thread = threading.Thread(
                    target=target,
                    args=(
                        ingest.host,
                        ingest.port,
                        spec,
                        reads_by_dep[spec.deployment_id],
                        args.batch_size,
                    )
                    + extra,
                    name=f"loadgen-{spec.deployment_id}",
                    daemon=True,
                )
                threads.append(thread)
                thread.start()
            for thread in threads:
                thread.join()

            # Admission (the publisher ack) precedes processing: wait
            # until every shard has chewed through to at least one fix
            # before scraping, so the snapshot shows a working fleet.
            settle_deadline = time.time() + 120
            while time.time() < settle_deadline and any(
                supervisor.fixes_emitted(spec.deployment_id) < 1
                for spec in specs
            ):
                time.sleep(0.1)

            with urllib.request.urlopen(f"{ops.url}/healthz", timeout=10) as rsp:
                health_mid_load = json.loads(rsp.read())
            with urllib.request.urlopen(f"{ops.url}/metrics", timeout=10) as rsp:
                metrics_text = rsp.read().decode("utf-8")
        finally:
            ops.stop()
            ingest.stop()
            supervisor.stop(drain=True)
        load_elapsed = time.perf_counter() - load_started

        health = supervisor.health_document()
        leakage = check_leakage(supervisor, registry)
        total_fixes = supervisor.fixes_emitted()
        sustained = sum(
            1
            for entry in health["deployments"].values()
            if entry["fixes_emitted"] > 0
        )
        all_rtts = [
            rtt
            for out in results.values()
            for rtt in out.get("rtts_ms", [])
        ]
        drops = {
            spec.deployment_id: supervisor.shard(
                spec.deployment_id
            ).queue_stats()["dropped"]
            for spec in specs
        }

        drill_out = results[DRILL_DEPLOYMENT]
        drill_records = supervisor.shard(DRILL_DEPLOYMENT).fix_records()
        drill_lineages = [
            record.get("provenance", {}).get("checkpoint_lineage", [])
            for record in drill_records
        ]
        lineage_chained = any(
            drill_out.get("checkpoint_id") in lineage
            for lineage in drill_lineages
        )
        drill = {
            "deployment": DRILL_DEPLOYMENT,
            "checkpoint_id": drill_out.get("checkpoint_id"),
            "restarts": health["deployments"][DRILL_DEPLOYMENT]["restarts"],
            "lineage_chained": lineage_chained,
            "fixes_after_restore": sum(
                1 for lineage in drill_lineages if lineage
            ),
        }

    failures: List[str] = []
    if sustained < deployments:
        failures.append(
            f"only {sustained}/{deployments} deployments emitted fixes"
        )
    if leakage["violations"]:
        failures.extend(leakage["violations"])
    if not drill["lineage_chained"]:
        failures.append(
            "kill/restore drill: resumed fixes do not chain the checkpoint"
        )
    if drill["restarts"] < 1:
        failures.append("kill/restore drill: shard was never restarted")
    if "repro_serve_fixes_total" not in metrics_text:
        failures.append("/metrics does not expose serve.* counters")
    if "repro_stream_queue_dropped" in metrics_text and (
        'deployment="' not in metrics_text
    ):
        failures.append("queue drop counters are missing deployment labels")
    obs.shutdown()
    if health_mid_load.get("schema") != 2:
        failures.append("/healthz is not a schema-2 fleet document")

    record = {
        "schema": "repro.bench.serve.v1",
        "smoke": args.smoke,
        "elapsed_s": time.perf_counter() - started,
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "workers": args.workers,
        "deployments": deployments,
        "deployments_sustained": sustained,
        "fixes_per_deployment": fixes,
        "total_reads": total_reads,
        "total_fixes": total_fixes,
        "aggregate_fixes_per_s": (
            total_fixes / load_elapsed if load_elapsed > 0 else 0.0
        ),
        "load_elapsed_s": load_elapsed,
        "ingest_batches": len(all_rtts),
        "ingest_p50_ms": percentile_ms(all_rtts, 0.50),
        "ingest_p99_ms": percentile_ms(all_rtts, 0.99),
        "drops": drops,
        "per_deployment": {
            spec.deployment_id: {
                "readers": len(spec.reader_names),
                "reads": len(reads_by_dep[spec.deployment_id]),
                "accepted": results[spec.deployment_id].get("accepted", 0),
                "dropped": results[spec.deployment_id].get("dropped", 0),
                "fixes": health["deployments"][spec.deployment_id][
                    "fixes_emitted"
                ],
                "rtt_p99_ms": percentile_ms(
                    results[spec.deployment_id].get("rtts_ms", []), 0.99
                ),
            }
            for spec in specs
        },
        "kill_restore": drill,
        "leakage": {
            "checked_fixes": leakage["checked_fixes"],
            "violations": len(leakage["violations"]),
        },
        "passed": not failures,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"sustained {sustained}/{deployments} deployments, "
        f"{total_fixes} fixes at "
        f"{record['aggregate_fixes_per_s']:.1f} fixes/s, "
        f"ingest p99 {record['ingest_p99_ms']:.2f} ms"
    )
    print(
        f"kill/restore on {DRILL_DEPLOYMENT}: checkpoint "
        f"{drill['checkpoint_id']}, restarts {drill['restarts']}, "
        f"lineage chained: {drill['lineage_chained']}"
    )
    print(
        f"leakage: {leakage['checked_fixes']} fixes checked, "
        f"{len(leakage['violations'])} violations"
    )
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
