"""Chaos soak harness: rotate fault scenarios, assert the process stays flat.

A streaming monitor's failure mode is rarely a crash — it is slow
accretion: RSS creeping up run after run, metric label cardinality
growing without bound, reads stranded in the ingest queue.  This
harness runs many back-to-back stream rounds against one long-lived
process and one persistent metrics registry, rotating through every
chaos scenario, and asserts three invariants at the end:

* **Bounded memory** — RSS growth from the post-warmup baseline to the
  final round stays under ``--max-rss-growth-mb``.
* **Stable cardinality** — once every scenario has run at least once,
  the registry's series count stops growing (labels are per-reader and
  per-fault-kind, never per-window), and stays under the registry's
  own per-name cap.
* **Drained queues** — every round ends with an empty ingest queue and
  a checkpoint/retention cycle that keeps the artefact directory at a
  fixed size.

Run:  PYTHONPATH=src python scripts/soak.py [--smoke] [--report FILE]

``--smoke`` is the CI-sized variant: one rotation plus a margin, small
scene — it exercises every code path and still enforces the
invariants.  Exit code 0 on a clean soak, 1 with the violated checks
named on stderr; the JSON report is written either way.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro import obs
from repro.faults import CHAOS_SCENARIOS, FaultInjector, chaos_plan, scene_schedules
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.core.pipeline import DWatch
from repro.stream import (
    RetentionPolicy,
    StreamRunner,
    SyntheticStreamConfig,
    apply_retention,
    plan_retention,
    save_checkpoint,
    scan_artefacts,
    synthetic_reads,
)

#: Checkpoints kept on disk across the whole soak (retention bound).
CHECKPOINT_KEEP = 3


def rss_mb() -> float:
    """Resident set size of this process in MiB.

    Reads ``/proc/self/status`` (Linux); falls back to the peak RSS
    from ``resource.getrusage`` elsewhere — a weaker signal (monotone
    by definition) but still an upper bound on growth.
    """
    try:
        with open("/proc/self/status", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def build_pipeline(num_tags: int, num_antennas: int) -> tuple:
    """One calibrated, baselined hall deployment shared by every round."""
    scene = hall_scene(rng=71, num_tags=num_tags, num_antennas=num_antennas)
    dwatch = DWatch(scene, cell_size=0.1)
    dwatch.calibrate(rng=72)
    session = MeasurementSession(scene, rng=73)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    return scene, dwatch


def soak_round(
    scene,
    dwatch,
    scenario: str,
    fixes: int,
    seed: int,
    checkpoint_dir: Path,
) -> Dict[str, object]:
    """One full round: chaos stream -> checkpoint -> retention sweep."""
    plan = chaos_plan(scenario, scene, fixes=fixes, seed=seed)
    injector = FaultInjector(plan, scene_schedules(scene))
    runner = StreamRunner(dwatch)
    runner.fault_probe = injector.active_kinds
    reads = synthetic_reads(
        scene, SyntheticStreamConfig(fixes=fixes), rng=seed + 1
    )
    emitted = list(runner.run(injector.inject(reads)))
    save_checkpoint(checkpoint_dir / f"soak-{seed}.checkpoint.json", runner)
    artefacts = scan_artefacts(checkpoint_dir)
    retention = plan_retention(
        artefacts,
        RetentionPolicy(max_count=CHECKPOINT_KEEP),
        now_s=time.time(),
    )
    apply_retention(retention)
    return {
        "scenario": scenario,
        "fixes": len(emitted),
        "located": sum(1 for f in emitted if f.position is not None),
        "degraded": sum(1 for f in emitted if f.quality.degraded),
        "injected": injector.total_injected,
        "queue_depth": len(runner.queue),
        "artefacts_kept": len(retention.keep),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized soak: one scenario rotation plus margin, small scene",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="override the number of rounds (default: 2 rotations, "
        "or 1 rotation + 2 with --smoke)",
    )
    parser.add_argument(
        "--fixes",
        type=int,
        default=None,
        help="stream length per round in fix windows",
    )
    parser.add_argument(
        "--max-rss-growth-mb",
        dest="max_rss_growth_mb",
        type=float,
        default=128.0,
        help="fail when post-warmup RSS grows more than this (default: 128)",
    )
    parser.add_argument(
        "--report",
        default="SOAK_report.json",
        help="where to write the soak report (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    scenarios = [name for name in CHAOS_SCENARIOS if name != "none"]
    rotation = len(scenarios)
    rounds = args.rounds or (rotation + 2 if args.smoke else 2 * rotation)
    fixes = args.fixes or (2 if args.smoke else 4)
    num_tags = 4 if args.smoke else 8
    num_antennas = 4 if args.smoke else 6

    print(
        f"soak: {rounds} rounds x {fixes} fixes, "
        f"rotating {rotation} chaos scenarios "
        f"({'smoke' if args.smoke else 'full'} profile)"
    )
    started = time.perf_counter()
    obs.configure()  # one persistent registry across every round
    scene, dwatch = build_pipeline(num_tags, num_antennas)

    round_records: List[Dict[str, object]] = []
    rss_by_round: List[float] = []
    series_by_round: List[int] = []
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        checkpoint_dir = Path(tmp)
        for index in range(rounds):
            scenario = scenarios[index % rotation]
            record = soak_round(
                scene,
                dwatch,
                scenario,
                fixes=fixes,
                seed=100 + index,
                checkpoint_dir=checkpoint_dir,
            )
            gc.collect()
            record["rss_mb"] = round(rss_mb(), 1)
            record["metric_series"] = obs.get_registry().series_count()
            round_records.append(record)
            rss_by_round.append(float(record["rss_mb"]))
            series_by_round.append(int(record["metric_series"]))
            print(
                f"  round {index + 1:2d}/{rounds}  {scenario:<14} "
                f"fixes {record['fixes']}  injected {record['injected']:>5}  "
                f"rss {record['rss_mb']:.1f} MiB  "
                f"series {record['metric_series']}"
            )

    # -- the invariants ---------------------------------------------------
    failures: List[str] = []
    # RSS: measure growth from the end of round 1 (past allocator and
    # import warmup) to the final round.
    rss_growth = rss_by_round[-1] - rss_by_round[0] if rss_by_round else 0.0
    if rss_growth > args.max_rss_growth_mb:
        failures.append(
            f"RSS grew {rss_growth:.1f} MiB over the soak "
            f"(bound {args.max_rss_growth_mb:.1f} MiB)"
        )
    # Cardinality: once every scenario has run, no new series may appear.
    if rounds > rotation and series_by_round[-1] != series_by_round[rotation - 1]:
        failures.append(
            f"metric cardinality still growing after a full rotation: "
            f"{series_by_round[rotation - 1]} -> {series_by_round[-1]} series"
        )
    # Queues: every round must end drained.
    stranded = [r for r in round_records if int(str(r["queue_depth"])) != 0]
    if stranded:
        failures.append(f"{len(stranded)} rounds ended with a non-empty queue")
    # Retention: the artefact directory must stay at the configured size.
    overfull = [
        r for r in round_records[CHECKPOINT_KEEP:]
        if int(str(r["artefacts_kept"])) != CHECKPOINT_KEEP
    ]
    if overfull:
        failures.append(
            f"{len(overfull)} rounds kept != {CHECKPOINT_KEEP} checkpoints"
        )

    report = {
        "schema": "repro.soak.v1",
        "smoke": args.smoke,
        "elapsed_s": time.perf_counter() - started,
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "rounds": rounds,
            "fixes_per_round": fixes,
            "scenarios": scenarios,
            "max_rss_growth_mb": args.max_rss_growth_mb,
        },
        "rounds": round_records,
        "rss_growth_mb": round(rss_growth, 1),
        "final_metric_series": series_by_round[-1] if series_by_round else 0,
        "failures": failures,
        "passed": not failures,
    }
    with open(args.report, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    obs.shutdown()
    print(
        f"soak {'PASSED' if not failures else 'FAILED'} "
        f"in {report['elapsed_s']:.1f}s  "
        f"(rss growth {rss_growth:+.1f} MiB, "
        f"{report['final_metric_series']} series); report: {args.report}"
    )
    for failure in failures:
        print(f"soak failure: {failure}", file=sys.stderr)
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
