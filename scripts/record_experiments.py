"""Regenerate every table/figure of the paper at evaluation scale.

Runs each experiment with a fuller budget than the quick benchmarks and
prints the rows EXPERIMENTS.md records.  Takes tens of minutes.

Run:  python scripts/record_experiments.py [output.txt]
"""

from __future__ import annotations

import sys
import time

import repro.experiments as experiments


RUNS = [
    ("Fig. 3  (phase offsets)", lambda: experiments.run_fig03(rng=201)),
    ("Fig. 4  (MUSIC limitation)", lambda: experiments.run_fig04(rng=202)),
    (
        "Fig. 9  (calibration vs tags)",
        lambda: experiments.run_fig09(
            tag_counts=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), trials=4, rng=203
        ),
    ),
    ("Fig. 10 (AoA error CDF)", lambda: experiments.run_fig10(trials=6, rng=204)),
    ("Fig. 12 (P-MUSIC spectra)", lambda: experiments.run_fig12(rng=205)),
    (
        "Fig. 13 (detection rate)",
        lambda: experiments.run_fig13(trials=12, rng=206),
    ),
    (
        "Fig. 14 (overall localization)",
        lambda: experiments.run_fig14(num_locations=40, repeats=2, rng=207),
    ),
    (
        "Fig. 15 (antenna count)",
        lambda: experiments.run_fig15(num_locations=16, repeats=2, rng=208),
    ),
    (
        "Fig. 16 (reflector sweep)",
        lambda: experiments.run_fig16(num_locations=16, repeats=2, rng=209),
    ),
    (
        "Fig. 17 (tag sweep)",
        lambda: experiments.run_fig17(num_locations=14, repeats=2, rng=210),
    ),
    (
        "Fig. 18 (height difference)",
        lambda: experiments.run_fig18(num_locations=12, repeats=2, rng=211),
    ),
    (
        "Fig. 19 (multi-target table)",
        lambda: experiments.run_fig19(snapshots=8, rng=212),
    ),
    ("Fig. 21/22 (fist tracking)", lambda: experiments.run_fig21(rng=213)),
    ("Latency  (Section 8)", lambda: experiments.run_latency(fixes=20, rng=214)),
]


def main() -> None:
    sink = open(sys.argv[1], "w") if len(sys.argv) > 1 else sys.stdout

    def emit(line: str) -> None:
        print(line, file=sink, flush=True)

    total_start = time.time()
    for title, runner in RUNS:
        start = time.time()
        result = runner()
        elapsed = time.time() - start
        emit(f"\n=== {title}  [{elapsed:.0f}s] ===")
        for row in result.rows():
            emit(row)
    emit(f"\ntotal: {time.time() - total_start:.0f}s")
    if sink is not sys.stdout:
        sink.close()


if __name__ == "__main__":
    main()
