"""D-Watch reproduction: device-free RFID localization that embraces
"bad" multipaths (Wang et al., CoNEXT 2016).

Quick start::

    from repro import DWatch, library_scene, MeasurementSession, human_target
    from repro.geometry import Point

    scene = library_scene(rng=1)
    dwatch = DWatch(scene)
    dwatch.calibrate(rng=2)

    session = MeasurementSession(scene, rng=3)
    dwatch.collect_baseline(session.capture())

    target = human_target(Point(3.0, 5.0))
    estimates = dwatch.localize(session.capture([target]))
    print(estimates[0].position)

The subpackages are usable on their own: :mod:`repro.dsp` for
MUSIC/P-MUSIC, :mod:`repro.calibration` for over-the-air phase
calibration, :mod:`repro.rfid` for the Gen2/LLRP substrate,
:mod:`repro.sim` for scene simulation, and :mod:`repro.stream` for the
online streaming engine (continuous tracking over a read stream).
"""

from repro.core.pipeline import DWatch, calibrate_readers
from repro.core.likelihood import LocationEstimate
from repro.dsp.music import MusicEstimator
from repro.dsp.pmusic import PMusicEstimator
from repro.stream import StreamConfig, StreamRunner, TagRead, TrackFix
from repro.sim.environments import (
    library_scene,
    laboratory_scene,
    hall_scene,
    table_scene,
    calibration_scene,
)
from repro.sim.measurement import MeasurementConfig, MeasurementSession
from repro.sim.target import human_target, bottle_target, fist_target, Target

__version__ = "1.0.0"

__all__ = [
    "DWatch",
    "calibrate_readers",
    "LocationEstimate",
    "MusicEstimator",
    "PMusicEstimator",
    "library_scene",
    "laboratory_scene",
    "hall_scene",
    "table_scene",
    "calibration_scene",
    "MeasurementConfig",
    "MeasurementSession",
    "StreamConfig",
    "StreamRunner",
    "TagRead",
    "TrackFix",
    "Target",
    "human_target",
    "bottle_target",
    "fist_target",
    "__version__",
]
