"""Uniform linear arrays and steering vectors.

Conventions match the paper's Section 2.2: for an ``M``-element ULA with
spacing ``d`` and a plane wave arriving at angle ``theta`` (measured from
the array axis, so ``theta`` lives in ``[0, pi]``), the phase lag of
element ``m`` relative to element 1 is ``omega(m, theta) =
(m - 1) * (2*pi*d/lambda) * cos(theta)`` and the steering vector is
``a(theta)_m = exp(-j * omega(m, theta))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.contracts import check_shapes
from repro.constants import DEFAULT_NUM_ANTENNAS, DEFAULT_WAVELENGTH_M
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.utils.angles import wrap_to_pi
from repro.utils.arrays import ArrayLike, ComplexArray


def steering_vector(
    theta: float, num_antennas: int, spacing_m: float, wavelength_m: float
) -> ComplexArray:
    """Steering vector ``a(theta)`` of an ``M``-element ULA (shape ``(M,)``)."""
    if num_antennas < 1:
        raise ConfigurationError("array needs at least one antenna")
    m = np.arange(num_antennas)
    omega = m * (2.0 * math.pi * spacing_m / wavelength_m) * math.cos(theta)
    return np.exp(-1j * omega)


def steering_matrix(
    thetas: Sequence[float], num_antennas: int, spacing_m: float, wavelength_m: float
) -> ComplexArray:
    """Steering matrix ``A = [a(theta_1) ... a(theta_P)]``, shape ``(M, P)``.

    Computed as one outer-product exponential: the estimators call this
    for every (reader, tag) pair on a several-hundred-point grid, so
    the vectorized form is the pipeline's single hottest win.
    """
    angles = np.asarray(list(thetas), dtype=np.float64)
    if num_antennas < 1:
        raise ConfigurationError("array needs at least one antenna")
    if angles.size == 0:
        return np.zeros((num_antennas, 0), dtype=np.complex128)
    m = np.arange(num_antennas)[:, None]
    omega = m * (2.0 * math.pi * spacing_m / wavelength_m) * np.cos(angles)[None, :]
    return np.exp(-1j * omega)


#: Small cache for repeated scans of an identical angle grid — the
#: estimators evaluate the same grid for every (reader, tag) pair.
_CacheKey = Tuple[int, float, float, int, Tuple[float, float, float, float]]
_STEERING_CACHE: Dict[_CacheKey, ComplexArray] = {}
_STEERING_CACHE_LIMIT = 16


@check_shapes(returns="complex:*,G", angles="G")
def cached_steering_matrix(
    angles: ArrayLike, num_antennas: int, spacing_m: float, wavelength_m: float
) -> ComplexArray:
    """Like :func:`steering_matrix`, memoized on the grid's fingerprint.

    The returned array is read-only; copy before mutating.
    """
    arr = np.asarray(angles, dtype=np.float64)
    probes = (
        (float(arr[0]), float(arr[-1]), float(arr[arr.size // 3]),
         float(arr[(2 * arr.size) // 3]))
        if arr.size
        else (0.0, 0.0, 0.0, 0.0)
    )
    key = (
        num_antennas,
        round(spacing_m, 12),
        round(wavelength_m, 12),
        arr.size,
        probes,
    )
    cached = _STEERING_CACHE.get(key)
    if cached is not None and cached.shape[1] == arr.size:
        return cached
    matrix = steering_matrix(arr, num_antennas, spacing_m, wavelength_m)
    matrix.setflags(write=False)
    if len(_STEERING_CACHE) >= _STEERING_CACHE_LIMIT:
        _STEERING_CACHE.clear()
    _STEERING_CACHE[key] = matrix
    return matrix


@dataclass(frozen=True)
class UniformLinearArray:
    """An ``M``-element uniform linear array placed in the monitoring plane.

    Parameters
    ----------
    reference:
        Position of element 1 (the phase reference).
    orientation:
        Direction of the array axis in radians; elements are laid out
        along this direction at multiples of ``spacing_m``.
    num_antennas:
        Element count ``M`` (the paper uses 8, and sweeps 4/6/8).
    spacing_m:
        Inter-element spacing ``d`` (half a wavelength by default).
    wavelength_m:
        Carrier wavelength used for steering computations.
    name:
        Label used in scene descriptions.
    """

    reference: Point
    orientation: float = 0.0
    num_antennas: int = DEFAULT_NUM_ANTENNAS
    spacing_m: float = DEFAULT_WAVELENGTH_M / 2.0
    wavelength_m: float = DEFAULT_WAVELENGTH_M
    name: str = field(default="array")

    def __post_init__(self) -> None:
        if self.num_antennas < 2:
            raise ConfigurationError("an AoA array needs at least two antennas")
        if self.spacing_m <= 0.0:
            raise ConfigurationError("element spacing must be positive")
        if self.wavelength_m <= 0.0:
            raise ConfigurationError("wavelength must be positive")

    @property
    def axis(self) -> Point:
        """Unit vector along the array axis."""
        return Point(math.cos(self.orientation), math.sin(self.orientation))

    def element_positions(self) -> List[Point]:
        """Positions of all ``M`` elements, element 1 first."""
        return [
            self.reference + self.axis * (m * self.spacing_m)
            for m in range(self.num_antennas)
        ]

    @property
    def centroid(self) -> Point:
        """Geometric centre of the array (used as "the array position")."""
        half_span = (self.num_antennas - 1) * self.spacing_m / 2.0
        return self.reference + self.axis * half_span

    def angle_to(self, point: Point) -> float:
        """AoA (in ``[0, pi]``) at which ``point`` is seen by this array.

        This is the angle between the array axis and the direction from
        the array centroid to ``point`` — the quantity the steering model
        calls ``theta``.
        """
        bearing = self.centroid.angle_to(point)
        return abs(wrap_to_pi(bearing - self.orientation))

    def steering_vector(self, theta: float) -> ComplexArray:
        """Steering vector for arrival angle ``theta`` (radians)."""
        return steering_vector(
            theta, self.num_antennas, self.spacing_m, self.wavelength_m
        )

    def steering_matrix(self, thetas: Sequence[float]) -> ComplexArray:
        """Steering matrix for a list of arrival angles."""
        return steering_matrix(
            thetas, self.num_antennas, self.spacing_m, self.wavelength_m
        )

    def with_antennas(self, num_antennas: int) -> "UniformLinearArray":
        """A copy of this array with a different element count."""
        return UniformLinearArray(
            reference=self.reference,
            orientation=self.orientation,
            num_antennas=num_antennas,
            spacing_m=self.spacing_m,
            wavelength_m=self.wavelength_m,
            name=self.name,
        )
