"""Propagation paths: the atoms of the D-Watch signal model.

Each backscattered tag signal reaches an array along one *direct* path
plus zero or more single-bounce *reflected* paths.  A path carries its
geometry (the polyline a target can block), its arrival angle at the
array, and its complex amplitude (free-space loss, reflection loss and
carrier phase).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.reflection import Reflector
from repro.geometry.segment import Segment
from repro.rf.array import UniformLinearArray
from repro.rf.waves import phase_after_distance

#: Amplitude floor for a deeply shadowed path.  Roughly -17 dB,
#: consistent with measured human-body blocking loss at UHF.
DEFAULT_BLOCKING_ATTENUATION = 0.14


def knife_edge_amplitude(v: float) -> float:
    """Knife-edge diffraction amplitude factor for Fresnel parameter ``v``.

    The ITU-R P.526 approximation: loss(dB) = 6.9 +
    20*log10(sqrt((v - 0.1)^2 + 1) + v - 0.1) for v > -0.78, zero loss
    otherwise.  ``v > 0`` means the obstacle tip reaches past the direct
    ray; ``v = 0`` grazes it (a 6 dB loss).
    """
    if v <= -0.78:
        return 1.0
    loss_db = 6.9 + 20.0 * math.log10(
        math.sqrt((v - 0.1) ** 2 + 1.0) + v - 0.1
    )
    return 10.0 ** (-loss_db / 20.0)


def fresnel_parameter(
    leg: Segment, body_center: Point, body_radius: float, wavelength_m: float
) -> float:
    """Fresnel diffraction parameter of a circular obstacle near a leg.

    ``v = h * sqrt(2 d / (lambda d1 d2))`` where ``h`` is how far the
    obstacle's edge protrudes past the ray (negative when it clears it)
    and ``d1/d2`` split the leg at the obstacle's projection.  Distances
    are clamped away from the endpoints: an obstacle sitting *on* the
    antenna or tag blocks by contact, not by diffraction.
    """
    total = leg.length()
    if total <= 0.0:
        return -math.inf
    t = min(1.0, max(0.0, leg.project_parameter(body_center)))
    d1 = max(t * total, 0.05)
    d2 = max((1.0 - t) * total, 0.05)
    miss = leg.distance_to_point(body_center)
    h = body_radius - miss
    return h * math.sqrt(2.0 * total / (wavelength_m * d1 * d2))


def free_space_amplitude(distance_m: float, wavelength_m: float) -> float:
    """Free-space *amplitude* gain ``lambda / (4 * pi * d)``.

    Distances below a tenth of a wavelength are clamped to avoid the
    near-field singularity; the simulator never places a tag that close
    to an antenna in practice.
    """
    effective = max(distance_m, wavelength_m / 10.0)
    return wavelength_m / (4.0 * math.pi * effective)


@dataclass(frozen=True)
class PropagationPath:
    """One propagation path from a tag to an array.

    Attributes
    ----------
    tag_id:
        Identifier of the backscattering tag.
    aoa:
        Arrival angle at the array, in ``[0, pi]`` radians.
    gain:
        Complex amplitude of the path (loss and carrier phase).
    legs:
        The polyline geometry: one segment for a direct path, two for a
        single-bounce reflection (tag->reflector, reflector->array).
    kind:
        ``"direct"`` or ``"reflected"``.
    reflector_name:
        Name of the bounce reflector for reflected paths, else ``None``.
    """

    tag_id: str
    aoa: float
    gain: complex
    legs: Tuple[Segment, ...]
    kind: str = "direct"
    reflector_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("direct", "reflected"):
            raise GeometryError(f"unknown path kind {self.kind!r}")
        if not self.legs:
            raise GeometryError("a propagation path needs at least one leg")

    @property
    def length(self) -> float:
        """Total travelled distance along all legs (metres)."""
        return sum(leg.length() for leg in self.legs)

    @property
    def power(self) -> float:
        """Path power ``|gain|^2``."""
        return abs(self.gain) ** 2

    def attenuated(self, factor: float) -> "PropagationPath":
        """A copy with the gain scaled by an amplitude ``factor``."""
        return replace(self, gain=self.gain * factor)


def direct_path(
    tag_id: str,
    tag_position: Point,
    array: UniformLinearArray,
    backscatter_gain: complex = 1.0 + 0.0j,
) -> PropagationPath:
    """Build the line-of-sight path from a tag to an array.

    The amplitude uses the free-space model over the tag-to-centroid
    distance and the carrier phase corresponds to that same distance;
    per-element phase differences are applied later through the steering
    vector, exactly as in the paper's signal model (Eq. 2-4).
    """
    anchor = array.centroid
    dist = tag_position.distance_to(anchor)
    amplitude = free_space_amplitude(dist, array.wavelength_m)
    phase = phase_after_distance(dist, array.wavelength_m)
    gain = backscatter_gain * amplitude * cmath.exp(-1j * phase)
    return PropagationPath(
        tag_id=tag_id,
        aoa=array.angle_to(tag_position),
        gain=gain,
        legs=(Segment(tag_position, anchor),),
        kind="direct",
    )


def reflected_path(
    tag_id: str,
    tag_position: Point,
    array: UniformLinearArray,
    reflector: Reflector,
    backscatter_gain: complex = 1.0 + 0.0j,
) -> Optional[PropagationPath]:
    """Build the single-bounce path off ``reflector``, or ``None``.

    Returns ``None`` when no specular geometry exists (the image ray
    misses the finite plate, or tag and array sit on opposite sides).
    """
    anchor = array.centroid
    bounce = reflector.bounce(tag_position, anchor)
    if bounce is None:
        return None
    leg_in = Segment(tag_position, bounce)
    leg_out = Segment(bounce, anchor)
    total = leg_in.length() + leg_out.length()
    amplitude = free_space_amplitude(total, array.wavelength_m) * reflector.coefficient
    phase = phase_after_distance(total, array.wavelength_m) - reflector.phase_shift
    gain = backscatter_gain * amplitude * cmath.exp(-1j * phase)
    return PropagationPath(
        tag_id=tag_id,
        aoa=array.angle_to(bounce),
        gain=gain,
        legs=(leg_in, leg_out),
        kind="reflected",
        reflector_name=reflector.name,
    )


def enumerate_paths(
    tag_id: str,
    tag_position: Point,
    array: UniformLinearArray,
    reflectors: List[Reflector],
    backscatter_gain: complex = 1.0 + 0.0j,
) -> List[PropagationPath]:
    """All propagation paths (direct + every valid single bounce)."""
    paths = [direct_path(tag_id, tag_position, array, backscatter_gain)]
    for reflector in reflectors:
        path = reflected_path(tag_id, tag_position, array, reflector, backscatter_gain)
        if path is not None:
            paths.append(path)
    return paths
