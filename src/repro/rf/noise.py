"""Additive white Gaussian noise for complex baseband simulations."""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.arrays import ComplexArray
from repro.utils.rng import RngLike, ensure_rng


def noise_power_for_snr(signal_power: float, snr_db: float) -> float:
    """Noise power that yields ``snr_db`` for a given ``signal_power``.

    A zero-power signal yields zero noise: the caller is simulating an
    ideal, signal-free channel and adding noise would only fabricate
    energy out of nothing.
    """
    if signal_power < 0.0:
        raise ConfigurationError("signal power cannot be negative")
    if signal_power == 0.0:
        return 0.0
    return signal_power / (10.0 ** (snr_db / 10.0))


def awgn(
    shape: Union[int, Tuple[int, ...]],
    power: float,
    rng: RngLike = None,
) -> ComplexArray:
    """Circularly-symmetric complex Gaussian noise with total ``power``.

    Each complex sample has variance ``power`` split evenly between the
    real and imaginary parts.
    """
    if power < 0.0:
        raise ConfigurationError("noise power cannot be negative")
    generator = ensure_rng(rng)
    if power == 0.0:
        return np.zeros(shape, dtype=np.complex128)
    sigma = np.sqrt(power / 2.0)
    return generator.normal(0.0, sigma, size=shape) + 1j * generator.normal(
        0.0, sigma, size=shape
    )
