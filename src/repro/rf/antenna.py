"""Antenna element models.

The paper uses two omni-directional antennas (ANS-900, ~3 m range, and
Q900F-900, ~12 m range).  Elements carry a position, a gain, and a
maximum communication range; the Gen2 link layer refuses reads beyond
range, which is what distinguishes the "small antenna" tabletop
deployment from the room-scale one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geometry.point import Point


@dataclass(frozen=True)
class Antenna:
    """A single antenna element at a fixed position."""

    position: Point
    gain_dbi: float = 0.0
    max_range_m: float = 12.0
    name: str = "antenna"

    def __post_init__(self) -> None:
        if self.max_range_m <= 0.0:
            raise ConfigurationError(
                f"antenna range must be positive, got {self.max_range_m}"
            )

    def in_range(self, point: Point) -> bool:
        """Whether a tag at ``point`` is within communication range."""
        return self.position.distance_to(point) <= self.max_range_m


class OmniAntenna(Antenna):
    """An isotropic element; alias kept for API readability."""


#: The small ANS-900 antenna used for the 2 m x 2 m tabletop experiments.
def small_antenna(position: Point, name: str = "ANS-900") -> Antenna:
    """Factory for the paper's short-range (3 m) omni antenna."""
    return Antenna(position=position, gain_dbi=2.0, max_range_m=3.0, name=name)


def large_antenna(position: Point, name: str = "Q900F-900") -> Antenna:
    """Factory for the paper's long-range (12 m) omni antenna."""
    return Antenna(position=position, gain_dbi=6.0, max_range_m=12.0, name=name)
