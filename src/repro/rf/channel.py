"""Multipath channel: turns a set of paths into array snapshots.

The channel for one (tag, array) pair is the set of propagation paths
between them.  Because every path carries the *same* backscattered
source signal, the paths are fully coherent — the property that forces
MUSIC users to apply spatial smoothing (Section 4.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.blocking import path_blocked_by
from repro.geometry.shapes import Circle
from repro.rf.array import UniformLinearArray
from repro.rf.noise import awgn, noise_power_for_snr
from repro.rf.propagation import (
    DEFAULT_BLOCKING_ATTENUATION,
    PropagationPath,
    fresnel_parameter,
    knife_edge_amplitude,
)
from repro.utils.arrays import ComplexArray, FloatArray
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class MultipathChannel:
    """All propagation paths from one tag to one array.

    Parameters
    ----------
    array:
        The receiving uniform linear array.
    paths:
        The propagation paths (direct and reflected).
    blocking_attenuation:
        Amplitude factor applied to a path when a target shadows it.
    """

    array: UniformLinearArray
    paths: List[PropagationPath] = field(default_factory=list)
    blocking_attenuation: float = DEFAULT_BLOCKING_ATTENUATION

    def __post_init__(self) -> None:
        if not 0.0 <= self.blocking_attenuation < 1.0:
            raise ConfigurationError(
                "blocking attenuation must be an amplitude factor in [0, 1)"
            )

    @property
    def num_paths(self) -> int:
        """Number of propagation paths in this channel."""
        return len(self.paths)

    def aoas(self) -> FloatArray:
        """Arrival angles of all paths (radians)."""
        return np.array([path.aoa for path in self.paths], dtype=np.float64)

    def gains(self) -> ComplexArray:
        """Complex gains of all paths."""
        return np.array([path.gain for path in self.paths], dtype=np.complex128)

    def with_targets(self, targets: Iterable[Circle]) -> "MultipathChannel":
        """The channel with target shadowing applied to every path.

        Shadowing uses knife-edge diffraction: a body geometrically
        crossing a leg attenuates it deeply, while a body whose edge
        merely encroaches on the first Fresnel zone attenuates it
        partially.  This is what makes even a 7.8 cm bottle a usable
        "trip wire" on the paper's tabletop — at UHF the Fresnel zone
        of a 2 m link is tens of centimetres wide.
        """
        target_list = list(targets)
        shadowed: List[PropagationPath] = []
        for path in self.paths:
            factor = self._shadowing_factor(path, target_list)
            if factor < 1.0:
                shadowed.append(path.attenuated(factor))
            else:
                shadowed.append(path)
        return MultipathChannel(
            array=self.array,
            paths=shadowed,
            blocking_attenuation=self.blocking_attenuation,
        )

    def _shadowing_factor(
        self, path: PropagationPath, targets: List[Circle]
    ) -> float:
        """Combined amplitude factor of all targets over all legs."""
        factor = 1.0
        for target in targets:
            for leg in path.legs:
                v = fresnel_parameter(
                    leg, target.center, target.radius, self.array.wavelength_m
                )
                factor *= knife_edge_amplitude(v)
        return max(factor, self.blocking_attenuation)

    def blocked_path_indices(self, targets: Iterable[Circle]) -> List[int]:
        """Indices of the paths shadowed by any of ``targets``."""
        target_list = list(targets)
        return [
            index
            for index, path in enumerate(self.paths)
            if any(path_blocked_by(path.legs, target) for target in target_list)
        ]

    def array_response(self) -> ComplexArray:
        """Noise-free array response vector ``sum_p g_p * a(theta_p)``.

        Shape ``(M,)``; this is the per-symbol channel seen by the array
        before source modulation and noise.
        """
        response = np.zeros(self.array.num_antennas, dtype=np.complex128)
        for path in self.paths:
            response += path.gain * self.array.steering_vector(path.aoa)
        return response

    def snapshots(
        self,
        num_snapshots: int,
        snr_db: float = 25.0,
        phase_offsets: Optional[FloatArray] = None,
        rng: RngLike = None,
        source_symbols: Optional[ComplexArray] = None,
    ) -> ComplexArray:
        """Simulate ``N`` baseband array snapshots, shape ``(M, N)``.

        Implements the paper's Eq. (9): ``X = Gamma * A * S + n``.  All
        paths share one source stream (coherent multipath).  ``snr_db``
        is defined against the strongest path's power at the array so a
        deeply shadowed channel genuinely sinks towards the noise floor.

        Parameters
        ----------
        num_snapshots:
            Number of temporal snapshots ``N``.
        snr_db:
            Per-antenna SNR of the strongest path, in dB.
        phase_offsets:
            Optional per-antenna phase offsets (radians, shape ``(M,)``)
            modelling the reader's uncalibrated RF front ends.
        rng:
            Seed or generator for noise and source symbols.
        source_symbols:
            Optional explicit source stream of shape ``(N,)``; random
            unit-modulus QPSK-like symbols are drawn when omitted.
        """
        if num_snapshots < 1:
            raise ConfigurationError("need at least one snapshot")
        generator = ensure_rng(rng)
        m = self.array.num_antennas

        if source_symbols is None:
            phases = generator.uniform(0.0, 2.0 * np.pi, size=num_snapshots)
            source_symbols = np.exp(1j * phases)
        else:
            source_symbols = np.asarray(source_symbols, dtype=np.complex128)
            if source_symbols.shape != (num_snapshots,):
                raise ConfigurationError(
                    "source_symbols must have shape (num_snapshots,)"
                )

        response = self.array_response()
        clean = np.outer(response, source_symbols)

        peak_power = max((path.power for path in self.paths), default=0.0)
        noise_power = noise_power_for_snr(peak_power, snr_db)
        noisy = clean + awgn((m, num_snapshots), noise_power, generator)

        if phase_offsets is not None:
            offsets = np.asarray(phase_offsets, dtype=np.float64)
            if offsets.shape != (m,):
                raise ConfigurationError(
                    f"phase_offsets must have shape ({m},), got {offsets.shape}"
                )
            noisy = np.exp(1j * offsets)[:, None] * noisy
        return noisy


def merge_channels(channels: Sequence[MultipathChannel]) -> MultipathChannel:
    """Combine per-tag channels that share one array into a single channel.

    Used when several tags answer in the same inventory window and the
    server aggregates their paths into one angular scene.
    """
    if not channels:
        raise ConfigurationError("cannot merge zero channels")
    array = channels[0].array
    for channel in channels[1:]:
        if channel.array is not array and channel.array != array:
            raise ConfigurationError("all merged channels must share one array")
    merged: List[PropagationPath] = []
    for channel in channels:
        merged.extend(channel.paths)
    return MultipathChannel(
        array=array,
        paths=merged,
        blocking_attenuation=channels[0].blocking_attenuation,
    )
