"""Carrier-wave phase arithmetic.

An RF signal's phase rotates by ``2*pi`` per wavelength of travelled
distance; this single fact underlies all AoA estimation (Section 2.2 of
the paper).
"""

from __future__ import annotations

import cmath
import math

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError


def wavelength(frequency_hz: float) -> float:
    """Free-space wavelength (m) of a carrier at ``frequency_hz``."""
    if frequency_hz <= 0.0:
        raise ConfigurationError(f"frequency must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz


def phase_after_distance(distance_m: float, wavelength_m: float) -> float:
    """Phase *delay* accumulated over ``distance_m`` (radians, unwrapped).

    The returned value is the raw ``2*pi*d/lambda`` product; callers wrap
    it when a principal value is needed.
    """
    if wavelength_m <= 0.0:
        raise ConfigurationError(f"wavelength must be positive, got {wavelength_m}")
    return 2.0 * math.pi * distance_m / wavelength_m


def carrier_phase_shift(distance_m: float, wavelength_m: float) -> complex:
    """Complex gain ``exp(-j*2*pi*d/lambda)`` of pure propagation delay."""
    return cmath.exp(-1j * phase_after_distance(distance_m, wavelength_m))
