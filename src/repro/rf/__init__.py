"""RF signal substrate: waves, antenna arrays, propagation, channels."""

from repro.rf.waves import wavelength, phase_after_distance, carrier_phase_shift
from repro.rf.antenna import Antenna, OmniAntenna, small_antenna, large_antenna
from repro.rf.array import UniformLinearArray, steering_vector, steering_matrix
from repro.rf.propagation import (
    PropagationPath,
    free_space_amplitude,
    direct_path,
    reflected_path,
    enumerate_paths,
    DEFAULT_BLOCKING_ATTENUATION,
)
from repro.rf.channel import MultipathChannel, merge_channels
from repro.rf.noise import awgn, noise_power_for_snr

__all__ = [
    "wavelength",
    "phase_after_distance",
    "carrier_phase_shift",
    "Antenna",
    "OmniAntenna",
    "small_antenna",
    "large_antenna",
    "UniformLinearArray",
    "steering_vector",
    "steering_matrix",
    "PropagationPath",
    "free_space_amplitude",
    "direct_path",
    "reflected_path",
    "enumerate_paths",
    "DEFAULT_BLOCKING_ATTENUATION",
    "MultipathChannel",
    "merge_channels",
    "awgn",
    "noise_power_for_snr",
]
