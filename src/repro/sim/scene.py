"""Scenes: rooms + reflectors + tags + reader arrays, and their channels.

A scene is the static world.  ``build_channel`` turns one (reader, tag)
pair into a :class:`~repro.rf.channel.MultipathChannel` by enumerating
the direct path and every valid single-bounce reflection, including the
3-D arrival-angle correction when tag and array sit at different
heights (the Fig. 18 experiment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Dict, List

from repro.constants import DEFAULT_FREQUENCY_HZ
from repro.errors import ConfigurationError
from repro.geometry.reflection import Reflector
from repro.geometry.shapes import Rectangle
from repro.rf.channel import MultipathChannel
from repro.rf.propagation import (
    DEFAULT_BLOCKING_ATTENUATION,
    PropagationPath,
    enumerate_paths,
)
from repro.rf.waves import wavelength
from repro.rfid.reader import Reader
from repro.rfid.tag import Tag


def effective_aoa(planar_aoa: float, elevation: float) -> float:
    """3-D arrival angle measured by a *horizontal* linear array.

    A horizontal ULA measures the angle between the array axis and the
    3-D arrival direction; for a wave with planar bearing ``theta`` and
    elevation ``phi`` that is ``arccos(cos(theta) * cos(phi))``.  A
    height difference therefore biases every measured angle towards
    broadside — the mechanism behind the paper's Fig. 18 degradation.
    """
    value = math.cos(planar_aoa) * math.cos(elevation)
    return math.acos(max(-1.0, min(1.0, value)))


@dataclass
class Scene:
    """The static deployment: room, readers, tags and reflectors.

    Parameters
    ----------
    room:
        Monitoring-area footprint.
    readers:
        Reader/array units watching the area.
    tags:
        Deployed tags (positions unknown to the localizer).
    reflectors:
        Reflecting plates creating the "bad" multipaths D-Watch uses.
    frequency_hz:
        Carrier frequency; defaults to the Chinese UHF band centre.
    array_height_m:
        Height of all antenna arrays above the floor (paper: 1.25 m).
    name:
        Scene label for reports.
    """

    room: Rectangle
    readers: List[Reader] = field(default_factory=list)
    tags: List[Tag] = field(default_factory=list)
    reflectors: List[Reflector] = field(default_factory=list)
    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    array_height_m: float = 1.25
    blocking_attenuation: float = DEFAULT_BLOCKING_ATTENUATION
    name: str = "scene"

    def __post_init__(self) -> None:
        if not self.readers:
            raise ConfigurationError("a scene needs at least one reader")
        epcs = [tag.epc for tag in self.tags]
        if len(epcs) != len(set(epcs)):
            raise ConfigurationError("tag EPCs must be unique within a scene")

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength for this scene."""
        return wavelength(self.frequency_hz)

    def tags_in_range(self, reader: Reader) -> List[Tag]:
        """Tags within the reader's backscatter communication range.

        The small tabletop antennas reach ~3 m, the room antennas ~12 m
        (``Reader.max_range_m``).
        """
        max_range = reader.max_range_m
        centroid = reader.array.centroid
        return [
            tag
            for tag in self.tags
            if centroid.distance_to(tag.position) <= max_range
        ]

    def channels_for(self, reader: Reader) -> Dict[str, MultipathChannel]:
        """Multipath channels of every in-range tag toward ``reader``."""
        return {
            tag.epc: build_channel(self, reader, tag)
            for tag in self.tags_in_range(reader)
        }

    def with_reflectors(self, reflectors: List[Reflector]) -> "Scene":
        """A copy of the scene with a different reflector set."""
        return dataclass_replace(self, reflectors=list(reflectors))

    def with_tags(self, tags: List[Tag]) -> "Scene":
        """A copy of the scene with a different tag deployment."""
        return dataclass_replace(self, tags=list(tags))


def build_channel(scene: Scene, reader: Reader, tag: Tag) -> MultipathChannel:
    """All propagation paths from ``tag`` to ``reader``'s array.

    Path amplitudes use the free-space model plus reflection loss; when
    the tag's height differs from the array height, every path's AoA is
    corrected for the elevation a horizontal array actually measures.
    """
    paths = enumerate_paths(
        tag_id=tag.epc,
        tag_position=tag.position,
        array=reader.array,
        reflectors=scene.reflectors,
        backscatter_gain=tag.backscatter_gain,
    )
    height_delta = abs(tag.height_m - scene.array_height_m)
    if height_delta > 1e-9:
        corrected: List[PropagationPath] = []
        for path in paths:
            horizontal = max(path.length, 1e-6)
            elevation = math.atan2(height_delta, horizontal)
            corrected.append(
                dataclass_replace(path, aoa=effective_aoa(path.aoa, elevation))
            )
        paths = corrected
    return MultipathChannel(
        array=reader.array,
        paths=paths,
        blocking_attenuation=scene.blocking_attenuation,
    )
