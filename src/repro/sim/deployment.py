"""Deployment helpers: tag placement and test-location grids.

The paper places tags "randomly ... with a high degree of flexibility"
and evaluates on uniform grids of test locations spaced 0.5 m apart
(63 / 66 / 75 locations in laboratory / library / hall).
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.shapes import Rectangle
from repro.utils.rng import RngLike, ensure_rng


def random_tag_positions(
    room: Rectangle,
    count: int,
    rng: RngLike = None,
    margin: float = 0.3,
    min_separation: float = 0.25,
    max_attempts: int = 10_000,
) -> List[Point]:
    """Scatter ``count`` tag positions uniformly inside the room.

    A minimum pairwise separation keeps tags from stacking on one
    another (physically they are attached to distinct objects).

    Raises
    ------
    ConfigurationError
        If the room cannot fit ``count`` tags at the requested
        separation within ``max_attempts`` draws.
    """
    if count < 1:
        raise ConfigurationError("tag count must be positive")
    generator = ensure_rng(rng)
    positions: List[Point] = []
    attempts = 0
    while len(positions) < count:
        attempts += 1
        if attempts > max_attempts:
            raise ConfigurationError(
                f"could not place {count} tags with separation {min_separation}"
            )
        candidate = Point(
            generator.uniform(room.min_x + margin, room.max_x - margin),
            generator.uniform(room.min_y + margin, room.max_y - margin),
        )
        if all(candidate.distance_to(p) >= min_separation for p in positions):
            positions.append(candidate)
    return positions


def perimeter_tag_positions(room: Rectangle, count: int, margin: float = 0.1) -> List[Point]:
    """Evenly distribute tags along the room/table perimeter.

    Matches the tabletop deployment (Fig. 20): tags placed along two
    sides of the table while the arrays sit on the other two sides.
    Positions walk the full perimeter counter-clockwise.
    """
    if count < 1:
        raise ConfigurationError("tag count must be positive")
    inner = Rectangle(
        room.min_x + margin, room.min_y + margin, room.max_x - margin, room.max_y - margin
    )
    perimeter = 2.0 * (inner.width + inner.height)
    positions: List[Point] = []
    for index in range(count):
        s = (index + 0.5) * perimeter / count
        positions.append(_walk_perimeter(inner, s))
    return positions


def _walk_perimeter(rect: Rectangle, s: float) -> Point:
    """The point at arc length ``s`` along the rectangle's boundary."""
    w, h = rect.width, rect.height
    s = s % (2.0 * (w + h))
    if s < w:
        return Point(rect.min_x + s, rect.min_y)
    s -= w
    if s < h:
        return Point(rect.max_x, rect.min_y + s)
    s -= h
    if s < w:
        return Point(rect.max_x - s, rect.max_y)
    s -= w
    return Point(rect.min_x, rect.max_y - s)


def test_location_grid(
    room: Rectangle, spacing: float = 0.5, margin: float = 0.75
) -> List[Point]:
    """A uniform grid of test locations inside the room.

    Mirrors the paper's methodology: test locations 0.5 m apart, kept
    away from the walls where arrays and tags are deployed.
    """
    if spacing <= 0.0:
        raise ConfigurationError("grid spacing must be positive")
    xs = _axis_samples(room.min_x + margin, room.max_x - margin, spacing)
    ys = _axis_samples(room.min_y + margin, room.max_y - margin, spacing)
    return [Point(x, y) for y in ys for x in xs]


def _axis_samples(low: float, high: float, spacing: float) -> List[float]:
    if high < low:
        raise ConfigurationError("margin leaves no room for test locations")
    count = int(math.floor((high - low) / spacing)) + 1
    offset = (high - low - (count - 1) * spacing) / 2.0
    return [low + offset + i * spacing for i in range(count)]
