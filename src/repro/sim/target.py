"""Device-free targets: the people and objects D-Watch localizes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    BOTTLE_TARGET_RADIUS_M,
    FIST_TARGET_RADIUS_M,
    HUMAN_TARGET_RADIUS_M,
)
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.shapes import Circle


@dataclass(frozen=True)
class Target:
    """A device-free target with a circular horizontal cross-section.

    Parameters
    ----------
    position:
        Centre of the target body in the monitoring plane (metres).
    radius:
        Body radius (metres); determines which paths the target shadows
        and the zero-error zone of the paper's extended-target metric.
    kind:
        Free-form label (``"human"``, ``"bottle"``, ``"fist"``).
    """

    position: Point
    radius: float = HUMAN_TARGET_RADIUS_M
    kind: str = "human"

    def __post_init__(self) -> None:
        if self.radius <= 0.0:
            raise ConfigurationError(f"target radius must be positive, got {self.radius}")

    def body(self) -> Circle:
        """The blocking cross-section as a geometry circle."""
        return Circle(center=self.position, radius=self.radius)

    def localization_error(self, estimate: Point) -> float:
        """The paper's extended-target error (Section 6.2).

        Zero while the estimate falls within the body; otherwise the
        distance from the estimate to the body's edge.
        """
        return self.body().distance_to(estimate)

    def moved_to(self, position: Point) -> "Target":
        """The same target at a new position (for trajectory sweeps)."""
        return Target(position=position, radius=self.radius, kind=self.kind)


def human_target(position: Point) -> Target:
    """A human torso (~36 cm wide, per Section 6.2)."""
    return Target(position=position, radius=HUMAN_TARGET_RADIUS_M, kind="human")


def bottle_target(position: Point) -> Target:
    """A water-filled glass bottle (7.8 cm bottom diameter)."""
    return Target(position=position, radius=BOTTLE_TARGET_RADIUS_M, kind="bottle")


def fist_target(position: Point) -> Target:
    """A human fist for the virtual-touch-screen experiments."""
    return Target(position=position, radius=FIST_TARGET_RADIUS_M, kind="fist")
