"""Scene construction and measurement simulation.

This package replaces the paper's physical testbed: rooms with
reflectors, randomly placed tags, reader arrays, and targets, plus the
machinery that turns a scene into per-(reader, tag) array snapshots —
optionally through the full Gen2/LLRP protocol path.
"""

from repro.sim.target import Target, human_target, bottle_target, fist_target
from repro.sim.scene import Scene, build_channel
from repro.sim.deployment import (
    random_tag_positions,
    perimeter_tag_positions,
    test_location_grid,
)
from repro.sim.environments import (
    library_scene,
    laboratory_scene,
    hall_scene,
    table_scene,
    calibration_scene,
)
from repro.sim.coverage import CoverageMap, analyze_coverage
from repro.sim.placement import (
    PlacementResult,
    PlacementStep,
    candidate_positions,
    optimize_tag_placement,
)
from repro.sim.measurement import (
    MeasurementConfig,
    MeasurementSession,
    Measurement,
    measurement_from_reports,
)

__all__ = [
    "Target",
    "human_target",
    "bottle_target",
    "fist_target",
    "Scene",
    "build_channel",
    "random_tag_positions",
    "perimeter_tag_positions",
    "test_location_grid",
    "library_scene",
    "laboratory_scene",
    "hall_scene",
    "table_scene",
    "calibration_scene",
    "MeasurementConfig",
    "MeasurementSession",
    "Measurement",
    "measurement_from_reports",
    "CoverageMap",
    "analyze_coverage",
    "PlacementResult",
    "PlacementStep",
    "candidate_positions",
    "optimize_tag_placement",
]
