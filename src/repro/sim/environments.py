"""Preset scenes mirroring the paper's three rooms and the tabletop.

* **library** (7 m x 10 m) — metal/wood book shelves everywhere: the
  high-multipath environment where D-Watch performs *best*.
* **laboratory** (9 m x 12 m) — benches, chambers and displays: medium
  multipath.
* **hall** (7.2 m x 10.4 m) — nearly empty: low multipath, fewest
  "trip-wire" paths, hence the coarsest accuracy and the venue for the
  controlled-reflector experiments (Figs. 11-13, 16).
* **table** (2 m x 2 m) — two short-range arrays and 26 perimeter tags
  for the multi-target and fist-tracking experiments.

Each builder takes a seed so tag scatter, tag EPCs and reader phase
offsets are reproducible but distinct across trials.  The same seed
gives the same deployment in every process — which is what lets a
read-stream recording (``repro stream --record``) replay elsewhere.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.reflection import Reflector
from repro.geometry.segment import Segment
from repro.geometry.shapes import Rectangle
from repro.rf.array import UniformLinearArray
from repro.rfid.reader import Reader
from repro.rfid.tag import Tag
from repro.rfid.epc import random_epc
from repro.sim.deployment import random_tag_positions
from repro.sim.scene import Scene
from repro.utils.rng import RngLike, derive_stream, ensure_rng
from repro.utils.angles import deg2rad

#: Side-stream key for tag EPC draws.  EPCs come from a keyed stream
#: derived from the scene seed (not from the main stream, which would
#: shift every later draw, and not from an unseeded generator, which
#: would give the "same" seeded scene different tag identities in every
#: process — breaking read-stream recordings replayed elsewhere).
_EPC_STREAM_KEY = 0xE9C


def _wall_readers(
    room: Rectangle,
    rng,
    num_antennas: int = 8,
    count: int = 4,
    max_range_m: float = 12.0,
) -> List[Reader]:
    """Readers at the wall midpoints, arrays parallel to their wall."""
    if not 1 <= count <= 4:
        raise ConfigurationError(
            f"wall deployments hold 1 to 4 readers, got {count}"
        )
    inset = 0.15
    placements = [
        # (reference point offset from wall midpoint, orientation)
        (Point(room.center.x, room.min_y + inset), 0.0),            # south wall
        (Point(room.max_x - inset, room.center.y), math.pi / 2.0),  # east wall
        (Point(room.center.x, room.max_y - inset), math.pi),        # north wall
        (Point(room.min_x + inset, room.center.y), -math.pi / 2.0), # west wall
    ][:count]
    readers = []
    for index, (midpoint, orientation) in enumerate(placements):
        array = UniformLinearArray(
            reference=midpoint,
            orientation=orientation,
            num_antennas=num_antennas,
            name=f"array-{index}",
        )
        # Shift the reference so the array is centred on the midpoint.
        half_span = (array.num_antennas - 1) * array.spacing_m / 2.0
        centred = UniformLinearArray(
            reference=midpoint - array.axis * half_span,
            orientation=orientation,
            num_antennas=num_antennas,
            name=f"array-{index}",
        )
        readers.append(
            Reader(
                array=centred,
                name=f"reader-{index}",
                max_range_m=max_range_m,
                rng=rng,
            )
        )
    return readers


def _scattered_reflectors(
    room: Rectangle,
    count: int,
    rng,
    plate_length: float = 1.2,
    coefficient: float = 0.75,
    prefix: str = "reflector",
) -> List[Reflector]:
    """Randomly placed and oriented reflecting plates inside the room."""
    reflectors = []
    for index in range(count):
        centre = Point(
            rng.uniform(room.min_x + 0.8, room.max_x - 0.8),
            rng.uniform(room.min_y + 0.8, room.max_y - 0.8),
        )
        angle = rng.uniform(0.0, math.pi)
        half = Point(math.cos(angle), math.sin(angle)) * (plate_length / 2.0)
        reflectors.append(
            Reflector(
                plate=Segment(centre - half, centre + half),
                coefficient=coefficient * rng.uniform(0.8, 1.0),
                name=f"{prefix}-{index}",
            )
        )
    return reflectors


def library_scene(
    rng: RngLike = None,
    num_tags: int = 21,
    num_antennas: int = 8,
    num_reflectors: int = 12,
    num_readers: int = 4,
) -> Scene:
    """The high-multipath library: shelves of metal and wood."""
    generator = ensure_rng(rng)
    room = Rectangle(0.0, 0.0, 7.0, 10.0)
    readers = _wall_readers(room, generator, num_antennas, count=num_readers)
    reflectors = _scattered_reflectors(
        room, num_reflectors, generator, plate_length=2.0, coefficient=0.85,
        prefix="shelf",
    )
    epc_rng = derive_stream(generator, _EPC_STREAM_KEY)
    tags = [
        Tag(position=p, epc=random_epc(epc_rng))
        for p in random_tag_positions(room, num_tags, generator)
    ]
    return Scene(
        room=room, readers=readers, tags=tags, reflectors=reflectors, name="library"
    )


def laboratory_scene(
    rng: RngLike = None,
    num_tags: int = 21,
    num_antennas: int = 8,
    num_reflectors: int = 6,
    num_readers: int = 4,
) -> Scene:
    """The medium-multipath laboratory: benches, chambers, displays."""
    generator = ensure_rng(rng)
    room = Rectangle(0.0, 0.0, 9.0, 12.0)
    readers = _wall_readers(room, generator, num_antennas, count=num_readers)
    reflectors = _scattered_reflectors(
        room, num_reflectors, generator, plate_length=1.2, coefficient=0.7,
        prefix="bench",
    )
    epc_rng = derive_stream(generator, _EPC_STREAM_KEY)
    tags = [
        Tag(position=p, epc=random_epc(epc_rng))
        for p in random_tag_positions(room, num_tags, generator)
    ]
    return Scene(
        room=room, readers=readers, tags=tags, reflectors=reflectors, name="laboratory"
    )


def hall_scene(
    rng: RngLike = None,
    num_tags: int = 21,
    num_antennas: int = 8,
    num_reflectors: int = 1,
    num_readers: int = 4,
) -> Scene:
    """The low-multipath empty hall."""
    generator = ensure_rng(rng)
    room = Rectangle(0.0, 0.0, 7.2, 10.4)
    readers = _wall_readers(room, generator, num_antennas, count=num_readers)
    reflectors = _scattered_reflectors(
        room, num_reflectors, generator, plate_length=1.0, coefficient=0.6,
        prefix="pillar",
    )
    epc_rng = derive_stream(generator, _EPC_STREAM_KEY)
    tags = [
        Tag(position=p, epc=random_epc(epc_rng))
        for p in random_tag_positions(room, num_tags, generator)
    ]
    return Scene(
        room=room, readers=readers, tags=tags, reflectors=reflectors, name="hall"
    )


def table_scene(
    rng: RngLike = None,
    num_tags: int = 26,
    num_antennas: int = 8,
) -> Scene:
    """The 2 m x 2 m tabletop with two short-range arrays (Fig. 20).

    Arrays sit at the midpoints of the bottom and right table edges;
    tags line the other two sides.
    """
    generator = ensure_rng(rng)
    room = Rectangle(0.0, 0.0, 2.0, 2.0)

    def centred_array(midpoint: Point, orientation: float, name: str):
        probe = UniformLinearArray(
            reference=midpoint, orientation=orientation, num_antennas=num_antennas
        )
        half_span = (probe.num_antennas - 1) * probe.spacing_m / 2.0
        return UniformLinearArray(
            reference=midpoint - probe.axis * half_span,
            orientation=orientation,
            num_antennas=num_antennas,
            name=name,
        )

    readers = [
        Reader(
            array=centred_array(Point(1.0, -0.05), 0.0, "array-bottom"),
            name="reader-bottom",
            max_range_m=3.0,
            rng=generator,
        ),
        Reader(
            array=centred_array(Point(2.05, 1.0), math.pi / 2.0, "array-right"),
            name="reader-right",
            max_range_m=3.0,
            rng=generator,
        ),
    ]
    # Tags on the top and left edges only.
    per_side = num_tags - num_tags // 2
    positions = [
        Point(0.05 + 1.9 * (index + 0.5) / per_side, 2.0)
        for index in range(per_side)
    ]
    positions.extend(
        Point(0.0, 0.05 + 1.9 * (index + 0.5) / (num_tags // 2))
        for index in range(num_tags // 2)
    )
    epc_rng = derive_stream(generator, _EPC_STREAM_KEY)
    tags = [
        Tag(position=p, epc=random_epc(epc_rng), height_m=1.25)
        for p in positions
    ]
    return Scene(
        room=room,
        readers=readers,
        tags=tags,
        reflectors=[],
        name="table",
    )


def calibration_scene(
    rng: RngLike = None,
    num_tags: int = 6,
    num_antennas: int = 8,
    multipath_strength: float = 0.15,
) -> Scene:
    """A calibration deployment: tags at known positions with strong LoS.

    Tags sit 1-8 m from a single array (paper Section 6.1.1) and the
    room contains only weak distant reflectors, so the LoS path
    dominates each tag's channel — the precondition footnote 1 of the
    paper states for the wireless calibration.
    """
    generator = ensure_rng(rng)
    room = Rectangle(0.0, 0.0, 10.0, 10.0)
    readers = _wall_readers(room, generator, num_antennas, count=1)
    anchor = readers[0].array.centroid
    epc_rng = derive_stream(generator, _EPC_STREAM_KEY)
    tags = []
    for index in range(num_tags):
        distance = generator.uniform(1.0, 8.0)
        angle = generator.uniform(deg2rad(25), deg2rad(155))
        offset = Point(math.cos(angle), math.sin(angle)) * distance
        position = room.clamp(anchor + offset)
        tags.append(Tag(position=position, epc=random_epc(epc_rng)))
    # Two long wall-like clutter plates flanking the deployment: their
    # specular bounces exist for essentially every tag placement, so
    # each reference tag's channel carries genuine (weak-but-present)
    # multipath on top of its dominant LoS — the regime the wireless
    # calibration must cope with.
    coefficient = max(0.05, min(1.0, multipath_strength * 2.0))
    reflectors = [
        Reflector(
            plate=Segment(Point(0.6, 1.0), Point(0.6, 9.0)),
            coefficient=coefficient,
            name="clutter-west",
        ),
        Reflector(
            plate=Segment(Point(9.4, 1.0), Point(9.4, 9.0)),
            coefficient=coefficient,
            name="clutter-east",
        ),
    ]
    return Scene(
        room=room, readers=readers, tags=tags, reflectors=reflectors,
        name="calibration",
    )
