"""Measurement generation: from a scene to array snapshots.

Two paths are provided.  The fast path (:meth:`MeasurementSession.capture`)
produces per-(reader, tag) snapshot matrices directly — what the
localization experiments iterate on.  The full-stack path
(:meth:`MeasurementSession.capture_reports`) additionally runs the Gen2
inventory and wraps results as LLRP tag reports, exercising the same
interfaces a physical deployment would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.constants import PACKETS_PER_FIX
from repro.errors import ConfigurationError
from repro.rfid.gen2 import Gen2Inventory
from repro.rfid.llrp import RoReport, build_report
from repro.sim.scene import Scene
from repro.sim.target import Target
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class MeasurementConfig:
    """Knobs of a measurement capture.

    Parameters
    ----------
    num_snapshots:
        Snapshots (backscatter packets) per tag per fix; the paper
        collects 10.
    snr_db:
        Per-antenna SNR of the strongest path.
    apply_phase_offsets:
        Whether the readers' uncalibrated front-end offsets corrupt the
        measurements (they always do on real hardware; turning this off
        isolates algorithm behaviour in unit tests).
    phase_jitter_rad:
        Standard deviation of slow per-antenna phase drift between
        captures (radians).  Real reader front ends drift with
        temperature and PLL re-locks, so the phases measured minutes
        after calibration carry a residual error; this is the dominant
        AoA error source on COTS hardware (the paper's Fig. 10 shows a
        2-degree median LoS AoA error even after calibration).  The
        drift is redrawn once per capture and shared by all of that
        capture's snapshots.
    """

    num_snapshots: int = PACKETS_PER_FIX
    snr_db: float = 25.0
    apply_phase_offsets: bool = True
    phase_jitter_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.num_snapshots < 1:
            raise ConfigurationError("need at least one snapshot per fix")
        if self.phase_jitter_rad < 0.0:
            raise ConfigurationError("phase jitter cannot be negative")


@dataclass
class Measurement:
    """One capture: per-reader, per-tag snapshot matrices."""

    snapshots: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)

    def readers(self) -> List[str]:
        """Reader names present in this capture."""
        return list(self.snapshots)

    def tags_for(self, reader_name: str) -> List[str]:
        """EPCs observed by one reader."""
        return list(self.snapshots.get(reader_name, {}))

    def matrix(self, reader_name: str, epc: str) -> np.ndarray:
        """The ``(M, N)`` snapshot matrix of one (reader, tag) pair."""
        try:
            return self.snapshots[reader_name][epc]
        except KeyError as exc:
            raise ConfigurationError(
                f"no snapshots for reader {reader_name!r} / tag {epc!r}"
            ) from exc


class MeasurementSession:
    """Generates measurements from one scene.

    Parameters
    ----------
    scene:
        The static deployment.
    config:
        Capture configuration.
    rng:
        Randomness source; noise and source symbols advance this stream
        on every capture, so consecutive captures differ as they would
        in reality.
    """

    def __init__(
        self,
        scene: Scene,
        config: Optional[MeasurementConfig] = None,
        rng: RngLike = None,
    ) -> None:
        self.scene = scene
        self.config = config or MeasurementConfig()
        self._generator = ensure_rng(rng)

    def capture(self, targets: Sequence[Target] = ()) -> Measurement:
        """Capture one fix: snapshots for every (reader, in-range tag).

        ``targets`` are the device-free bodies currently in the area;
        their shadowing attenuates every path they block.
        """
        with obs.span("sim.capture", targets=len(targets)) as sp:
            result = self._capture_snapshots(targets)
            pairs = sum(len(per_tag) for per_tag in result.snapshots.values())
            sp.set(pairs=pairs)
            obs.count("sim.captures")
            obs.count("sim.snapshots", pairs * self.config.num_snapshots)
        return result

    def _capture_snapshots(self, targets: Sequence[Target]) -> Measurement:
        bodies = [target.body() for target in targets]
        result = Measurement()
        for reader in self.scene.readers:
            per_tag: Dict[str, np.ndarray] = {}
            channels = self.scene.channels_for(reader)
            jitter = None
            if self.config.phase_jitter_rad > 0.0:
                jitter = self._generator.normal(
                    0.0,
                    self.config.phase_jitter_rad,
                    size=reader.array.num_antennas,
                )
            for epc, channel in channels.items():
                shadowed = channel.with_targets(bodies) if bodies else channel
                offsets = (
                    reader.phase_offsets
                    if self.config.apply_phase_offsets
                    else None
                )
                if jitter is not None:
                    offsets = jitter if offsets is None else offsets + jitter
                per_tag[epc] = shadowed.snapshots(
                    self.config.num_snapshots,
                    snr_db=self.config.snr_db,
                    phase_offsets=offsets,
                    rng=self._generator,
                )
            result.snapshots[reader.name] = per_tag
        return result

    def capture_reports(
        self, targets: Sequence[Target] = ()
    ) -> Dict[str, RoReport]:
        """Capture one fix through the full Gen2 + LLRP protocol path.

        Each reader runs inventory rounds until every in-range tag is
        read, then streams one LLRP report per reader whose per-antenna
        observations reassemble into exactly the matrices
        :meth:`capture` would produce.
        """
        measurement = self.capture(targets)
        reports: Dict[str, RoReport] = {}
        for reader in self.scene.readers:
            inventory = Gen2Inventory(rng=self._generator)
            in_range = self.scene.tags_in_range(reader)
            rounds = inventory.inventory_all(in_range)
            read_times = {
                read.epc: read.timestamp_s
                for round_result in rounds
                for read in round_result.reads
            }
            combined = RoReport(reader_name=reader.name)
            for epc, snapshots in measurement.snapshots[reader.name].items():
                start = read_times.get(epc, 0.0)
                report = build_report(
                    reader.name,
                    epc,
                    snapshots,
                    start_time_s=start,
                    sweep_duration_s=reader.snapshot_sweep_duration(),
                )
                combined.reports.extend(report.reports)
            reports[reader.name] = combined
        return reports


def measurement_from_reports(
    reports: Dict[str, RoReport], num_antennas: int
) -> Measurement:
    """Rebuild a :class:`Measurement` from LLRP reports.

    This is what the server side does in a physical deployment: the
    localization engine never sees the simulator, only reports.
    """
    measurement = Measurement()
    for reader_name, report in reports.items():
        per_tag = {
            epc: report.snapshot_matrix(epc, num_antennas)
            for epc in report.epcs()
        }
        measurement.snapshots[reader_name] = per_tag
    return measurement
