"""Deadzone-driven tag placement (the Section 8 mitigation, automated).

The paper's answer to deadzones: "the tags are very cheap so we can
increase the number of tags to reduce the amount of deadzones."  Tags
placed blindly waste budget re-covering the same aisles; this module
places them greedily, each new tag chosen to maximize the coverage gain
of the *current* deadzone map — a submodular objective, so the greedy
choice carries the classic (1 − 1/e) guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.rfid.tag import Tag
from repro.sim.coverage import analyze_coverage
from repro.sim.scene import Scene
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class PlacementStep:
    """One greedy placement decision."""

    position: Point
    coverage_before: float
    coverage_after: float

    @property
    def gain(self) -> float:
        """Coverage-rate improvement contributed by this tag."""
        return self.coverage_after - self.coverage_before


@dataclass
class PlacementResult:
    """The optimizer's output."""

    scene: Scene
    steps: List[PlacementStep]

    @property
    def final_coverage(self) -> float:
        """Coverage rate after all placements."""
        if not self.steps:
            raise ConfigurationError("no placements were made")
        return self.steps[-1].coverage_after

    def rows(self) -> List[str]:
        """One row per placed tag."""
        lines = ["tag  position          coverage  gain"]
        lines.extend(
            f"{index:3d}  ({step.position.x:5.2f}, {step.position.y:5.2f})"
            f"  {step.coverage_after:8.0%}  {step.gain:+5.1%}"
            for index, step in enumerate(self.steps, start=1)
        )
        return lines


def candidate_positions(
    scene: Scene, rng: RngLike = None, count: int = 40, margin: float = 0.4
) -> List[Point]:
    """Random candidate tag sites along the room's usable interior."""
    generator = ensure_rng(rng)
    room = scene.room
    return [
        Point(
            generator.uniform(room.min_x + margin, room.max_x - margin),
            generator.uniform(room.min_y + margin, room.max_y - margin),
        )
        for _ in range(count)
    ]


def optimize_tag_placement(
    scene: Scene,
    num_new_tags: int,
    candidates: Optional[Sequence[Point]] = None,
    rng: RngLike = None,
    grid_spacing: float = 0.5,
    candidate_count: int = 40,
) -> PlacementResult:
    """Greedily add ``num_new_tags`` tags where they help coverage most.

    Each round evaluates every remaining candidate site by the coverage
    rate of the scene with that tag added, keeps the best, and repeats.
    Coverage evaluation is geometric (see :mod:`repro.sim.coverage`),
    so a full optimization run needs no signal simulation at all.

    Raises
    ------
    ConfigurationError
        If no tags are requested or no candidates are available.
    """
    if num_new_tags < 1:
        raise ConfigurationError("must place at least one tag")
    generator = ensure_rng(rng)
    sites = list(
        candidates
        if candidates is not None
        else candidate_positions(scene, generator, candidate_count)
    )
    if not sites:
        raise ConfigurationError("no candidate positions supplied")

    working = scene
    steps: List[PlacementStep] = []
    baseline = analyze_coverage(working, grid_spacing=grid_spacing)
    current_rate = baseline.coverage_rate
    for _ in range(num_new_tags):
        best_site, best_rate = None, current_rate
        for site in sites:
            trial_scene = working.with_tags(
                list(working.tags) + [Tag(position=site)]
            )
            rate = analyze_coverage(
                trial_scene, grid_spacing=grid_spacing
            ).coverage_rate
            if rate > best_rate or (best_site is None and rate >= best_rate):
                best_site, best_rate = site, rate
        if best_site is None:
            break
        sites = [s for s in sites if s is not best_site]
        working = working.with_tags(
            list(working.tags) + [Tag(position=best_site)]
        )
        steps.append(
            PlacementStep(
                position=best_site,
                coverage_before=current_rate,
                coverage_after=best_rate,
            )
        )
        current_rate = best_rate
    if not steps:
        raise ConfigurationError("no candidate improved coverage")
    return PlacementResult(scene=working, steps=steps)
