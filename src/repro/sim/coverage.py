"""Deadzone and coverage analysis for a deployment.

Section 8 discusses the "deadzone problem": a target that blocks no
path is invisible.  Before deploying, an operator wants to know *where*
those deadzones are and how tag or reflector budget shrinks them.  This
module computes, for every point on an analysis grid, how many readers
would register a detectable shadow from a target standing there —
purely from geometry and the knife-edge model, without running the
estimation stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.constants import HUMAN_TARGET_RADIUS_M
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.rf.propagation import fresnel_parameter, knife_edge_amplitude
from repro.sim.scene import Scene


@dataclass
class CoverageMap:
    """Per-grid-point reader-detectability counts.

    Attributes
    ----------
    xs, ys:
        Grid axes (metres).
    reader_counts:
        Shape ``(len(ys), len(xs))``: how many readers see a detectable
        power drop from a target centred on that point.
    min_readers:
        Readers required for a triangulated fix (2 in the paper).
    """

    xs: np.ndarray
    ys: np.ndarray
    reader_counts: np.ndarray
    min_readers: int = 2

    @property
    def coverage_rate(self) -> float:
        """Fraction of grid points localizable (Section 6.4's metric)."""
        return float(np.mean(self.reader_counts >= self.min_readers))

    @property
    def deadzone_rate(self) -> float:
        """Fraction of grid points no reader can detect at all."""
        return float(np.mean(self.reader_counts == 0))

    def deadzones(self) -> List[Point]:
        """Grid points invisible to every reader."""
        return [
            Point(float(x), float(y))
            for iy, y in enumerate(self.ys)
            for ix, x in enumerate(self.xs)
            if self.reader_counts[iy, ix] == 0
        ]

    def ascii_map(self) -> List[str]:
        """Rows ('#' = localizable, '+' = detectable, '.' = deadzone),
        top row = max y."""
        rows = []
        for iy in range(len(self.ys) - 1, -1, -1):
            row = []
            for ix in range(len(self.xs)):
                count = self.reader_counts[iy, ix]
                if count >= self.min_readers:
                    row.append("#")
                elif count >= 1:
                    row.append("+")
                else:
                    row.append(".")
            rows.append("".join(row))
        return rows


def analyze_coverage(
    scene: Scene,
    grid_spacing: float = 0.25,
    target_radius: float = HUMAN_TARGET_RADIUS_M,
    drop_threshold: float = 0.5,
    min_readers: int = 2,
    margin: float = 0.5,
) -> CoverageMap:
    """Compute the deployment's coverage map.

    A point counts as detectable by a reader if a target there shadows
    at least one of that reader's paths by more than ``drop_threshold``
    in power (matching the drop detector's default).
    """
    if grid_spacing <= 0.0:
        raise ConfigurationError("grid spacing must be positive")
    room = scene.room
    xs = np.arange(room.min_x + margin, room.max_x - margin + 1e-9, grid_spacing)
    ys = np.arange(room.min_y + margin, room.max_y - margin + 1e-9, grid_spacing)
    if xs.size == 0 or ys.size == 0:
        raise ConfigurationError("margin leaves no analysis area")

    # Gather every path once, tagged by reader index.
    per_reader_paths: List[List] = []
    for reader in scene.readers:
        paths = []
        for channel in scene.channels_for(reader).values():
            paths.extend(channel.paths)
        per_reader_paths.append(paths)
    wavelength = scene.wavelength_m

    counts = np.zeros((ys.size, xs.size), dtype=int)
    for iy, y in enumerate(ys):
        for ix, x in enumerate(xs):
            centre = Point(float(x), float(y))
            for reader_index, paths in enumerate(per_reader_paths):
                detectable = False
                for path in paths:
                    factor = 1.0
                    for leg in path.legs:
                        v = fresnel_parameter(
                            leg, centre, target_radius, wavelength
                        )
                        factor *= knife_edge_amplitude(v)
                        if factor**2 <= 1.0 - drop_threshold:
                            break
                    if factor**2 <= 1.0 - drop_threshold:
                        detectable = True
                        break
                counts[iy, ix] += int(detectable)
    return CoverageMap(
        xs=xs, ys=ys, reader_counts=counts, min_readers=min_readers
    )
