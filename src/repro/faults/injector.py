"""The fault injector: applies a :class:`FaultPlan` to a read stream.

Sits between any read source (synthetic, replay, live) and the
:class:`~repro.stream.runner.StreamRunner`::

    injector = FaultInjector(plan, scene_schedules(scene))
    for read in injector.inject(synthetic_reads(scene, cfg, rng)):
        runner.offer(read)

Determinism contract: for a fixed plan and a fixed input stream the
output stream is identical across runs — the only randomness (EPC
misread draws) comes from the plan's own seed, never from global
state.  An empty plan short-circuits to a pure passthrough, which the
test suite pins as *byte-identical* CLI output against a run with no
injector at all.

Faults compose per read in a fixed order: outage and dead-antenna
drops first (a dropped read can't be glitched), then the phase
rotation, then EPC corruption, then delivery-order faults (overload
duplication and late-burst buffering).
"""

from __future__ import annotations

import cmath
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro import obs
from repro.errors import ConfigurationError
from repro.faults.model import (
    DeadAntenna,
    EpcMisread,
    FaultPlan,
    LateBurst,
    OverloadBurst,
    PhaseGlitch,
    ReaderOutage,
    fault_active,
    fault_kind,
)
from repro.rfid.hub import TdmSchedule
from repro.sim.scene import Scene
from repro.stream.events import TagRead
from repro.stream.window import sweep_slot
from repro.utils.rng import ensure_rng


def scene_schedules(scene: Scene) -> Dict[str, TdmSchedule]:
    """Per-reader TDM schedules of a scene (what the injector needs)."""
    return {
        reader.name: reader.hub.sweep_schedule() for reader in scene.readers
    }


class FaultInjector:
    """Applies a fault plan to a read stream, deterministically.

    Parameters
    ----------
    plan:
        The faults to inject.
    schedules:
        Per-reader TDM schedules, so antenna-level faults resolve a
        read's hub element exactly the way the window assembler will.

    Attributes
    ----------
    stats:
        Per-fault-kind counters (``dropped_outage``,
        ``dropped_dead_antenna``, ``phase_glitched``, ``misread``,
        ``delayed``, ``duplicated``), all zero when the plan is empty.
    """

    def __init__(
        self,
        plan: FaultPlan,
        schedules: Optional[Mapping[str, TdmSchedule]] = None,
    ) -> None:
        self.plan = plan
        self.schedules: Dict[str, TdmSchedule] = dict(schedules or {})
        self.stats: Dict[str, int] = {
            "dropped_outage": 0,
            "dropped_dead_antenna": 0,
            "phase_glitched": 0,
            "misread": 0,
            "delayed": 0,
            "duplicated": 0,
        }
        self._rng = ensure_rng(plan.seed)
        self._outages: List[ReaderOutage] = []
        self._dead: List[DeadAntenna] = []
        self._glitches: List[PhaseGlitch] = []
        self._misreads: List[EpcMisread] = []
        self._late: List[LateBurst] = []
        self._overloads: List[OverloadBurst] = []
        for fault in plan.faults:
            if isinstance(fault, ReaderOutage):
                self._outages.append(fault)
            elif isinstance(fault, DeadAntenna):
                self._dead.append(fault)
            elif isinstance(fault, PhaseGlitch):
                self._glitches.append(fault)
            elif isinstance(fault, EpcMisread):
                self._misreads.append(fault)
            elif isinstance(fault, LateBurst):
                self._late.append(fault)
            else:
                self._overloads.append(fault)
        for fault in self._dead:
            if fault.reader not in self.schedules:
                raise ConfigurationError(
                    f"dead-antenna fault names reader {fault.reader!r} "
                    "with no TDM schedule"
                )

    @property
    def total_injected(self) -> int:
        """Sum of every fault application (0 for a clean run)."""
        return sum(self.stats.values())

    def _note(self, stat: str, kind: str) -> None:
        """Account one fault application: stats dict plus both metric
        shapes (the historical flat counter and the labelled
        ``faults.injected{kind=...}`` series dashboards aggregate on).
        """
        self.stats[stat] += 1
        obs.count(f"faults.{stat}")
        obs.count("faults.injected", labels={"kind": kind})

    def active_kinds(self, start_s: float, end_s: float) -> Tuple[str, ...]:
        """Sorted kinds of planned faults active over ``[start_s, end_s)``.

        The provenance probe: the stream runner calls this per window
        (via :attr:`~repro.stream.runner.StreamRunner.fault_probe`) to
        stamp each fix with the chaos conditions it was produced under.
        """
        kinds = {
            fault_kind(fault)
            for fault in self.plan.faults
            if fault_active(fault, start_s, end_s)
        }
        return tuple(sorted(kinds))

    def inject(self, reads: Iterable[TagRead]) -> Iterator[TagRead]:
        """The faulted view of ``reads`` (lazy, single pass)."""
        if not self.plan.enabled:
            # Bit-identity fast path: no plan, no interference — not
            # even a dataclass copy.
            yield from reads
            return
        held: List[Tuple[LateBurst, List[TagRead]]] = [
            (burst, []) for burst in self._late
        ]
        for read in reads:
            for burst, buffer_ in held:
                if buffer_ and read.time_s >= burst.release_s:
                    yield from buffer_
                    buffer_.clear()
            mutated = self._apply_value_faults(read)
            if mutated is None:
                continue
            delayed = False
            for burst, buffer_ in held:
                if burst.covers(mutated.time_s):
                    buffer_.append(mutated)
                    self._note("delayed", "late_burst")
                    delayed = True
                    break
            if delayed:
                continue
            yield mutated
            for overload in self._overloads:
                if overload.covers(mutated.time_s):
                    for _ in range(overload.copies):
                        self._note("duplicated", "overload")
                        yield mutated
        for _, buffer_ in held:
            yield from buffer_
            buffer_.clear()

    def _apply_value_faults(self, read: TagRead) -> Optional[TagRead]:
        for outage in self._outages:
            if outage.reader == read.reader_name and outage.covers(read.time_s):
                self._note("dropped_outage", "outage")
                return None
        for dead in self._dead:
            if dead.reader == read.reader_name and dead.covers(read.time_s):
                _, antenna = sweep_slot(
                    self.schedules[dead.reader], read.time_s
                )
                if antenna == dead.antenna:
                    self._note("dropped_dead_antenna", "dead_antenna")
                    return None
        iq = read.iq
        for glitch in self._glitches:
            if glitch.reader == read.reader_name and glitch.covers(read.time_s):
                iq = iq * cmath.exp(1j * glitch.offset_rad)
                self._note("phase_glitched", "phase_glitch")
        epc = read.epc
        for misread in self._misreads:
            if misread.reader is not None and misread.reader != read.reader_name:
                continue
            if float(self._rng.random()) < misread.probability:
                epc = f"MISREAD-{int(self._rng.integers(0, 1 << 24)):06X}"
                self._note("misread", "epc_misread")
        if iq is read.iq and epc is read.epc:
            return read
        return TagRead(
            reader_name=read.reader_name, epc=epc, time_s=read.time_s, iq=iq
        )
