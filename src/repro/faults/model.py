"""Declarative fault models for the streaming pipeline.

Each fault is a small frozen dataclass describing *what goes wrong,
where, and when* in event time — the injector
(:class:`~repro.faults.injector.FaultInjector`) interprets them against
a read stream.  Keeping the models declarative means a chaos scenario
is data: it can be printed, logged alongside a run, and replayed
exactly (the only randomness, EPC misreads, draws from the plan's own
seed).

The fault vocabulary mirrors what COTS RFID deployments actually
suffer:

* :class:`ReaderOutage` — an LLRP session drop: every read from the
  reader vanishes for an interval, then service resumes.
* :class:`DeadAntenna` — one hub element goes dark (cable, switch
  port): its TDM slot never produces reads, so every sweep of that
  reader is torn.
* :class:`PhaseGlitch` — a PLL re-lock offsets the reader's reported
  phase by a constant from some instant on.
* :class:`EpcMisread` — backscatter decode errors yield garbage EPCs at
  some probability.
* :class:`LateBurst` — a network hiccup buffers an interval of reads
  and flushes them after newer traffic already went through.
* :class:`OverloadBurst` — duplicate report storms that stress the
  bounded ingest queue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.errors import ConfigurationError


def _check_interval(start_s: float, end_s: float) -> None:
    if not math.isfinite(start_s) or start_s < 0.0:
        raise ConfigurationError(f"fault start must be finite and >= 0, got {start_s}")
    if end_s <= start_s:
        raise ConfigurationError(
            f"fault interval must be non-empty, got [{start_s}, {end_s})"
        )


@dataclass(frozen=True)
class ReaderOutage:
    """Reader ``reader`` produces no reads during ``[start_s, end_s)``."""

    reader: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        _check_interval(self.start_s, self.end_s)

    def covers(self, time_s: float) -> bool:
        """Whether the outage swallows a read stamped ``time_s``."""
        return self.start_s <= time_s < self.end_s


@dataclass(frozen=True)
class DeadAntenna:
    """Hub element ``antenna`` of ``reader`` is dark in ``[start_s, end_s)``."""

    reader: str
    antenna: int
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if self.antenna < 0:
            raise ConfigurationError("antenna index must be non-negative")
        _check_interval(self.start_s, self.end_s)

    def covers(self, time_s: float) -> bool:
        """Whether the element is dark at ``time_s``."""
        return self.start_s <= time_s < self.end_s


@dataclass(frozen=True)
class PhaseGlitch:
    """Reads of ``reader`` carry an extra ``offset_rad`` phase rotation."""

    reader: str
    offset_rad: float
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if not math.isfinite(self.offset_rad):
            raise ConfigurationError("phase offset must be finite")
        _check_interval(self.start_s, self.end_s)

    def covers(self, time_s: float) -> bool:
        """Whether the glitch rotates a read stamped ``time_s``."""
        return self.start_s <= time_s < self.end_s


@dataclass(frozen=True)
class EpcMisread:
    """Each read's EPC decodes to garbage with ``probability``.

    ``reader`` limits the fault to one reader; ``None`` afflicts all.
    """

    probability: float
    reader: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"misread probability must be in [0, 1], got {self.probability}"
            )


@dataclass(frozen=True)
class LateBurst:
    """Reads stamped in ``[start_s, end_s)`` are delivered ``delay_s`` late.

    Event timestamps are untouched — only the *delivery order* shifts,
    which is exactly how a buffering network element manifests: the
    assembler sees newer reads first and must either admit the
    stragglers within its lateness bound or count them late.
    """

    start_s: float
    end_s: float
    delay_s: float

    def __post_init__(self) -> None:
        _check_interval(self.start_s, self.end_s)
        if self.delay_s <= 0.0:
            raise ConfigurationError("late-burst delay must be positive")

    def covers(self, time_s: float) -> bool:
        """Whether a read stamped ``time_s`` is held back."""
        return self.start_s <= time_s < self.end_s

    @property
    def release_s(self) -> float:
        """Event time after which the held reads are flushed."""
        return self.end_s + self.delay_s


@dataclass(frozen=True)
class OverloadBurst:
    """Reads in ``[start_s, end_s)`` are duplicated ``copies`` extra times.

    Models report storms (tag in a null, reader retransmits): the same
    read arrives again and again, pressuring the bounded queue and the
    assembler's duplicate accounting.
    """

    start_s: float
    end_s: float
    copies: int = 1

    def __post_init__(self) -> None:
        _check_interval(self.start_s, self.end_s)
        if self.copies < 1:
            raise ConfigurationError("an overload burst needs at least one copy")

    def covers(self, time_s: float) -> bool:
        """Whether a read stamped ``time_s`` is duplicated."""
        return self.start_s <= time_s < self.end_s


#: Everything the injector knows how to apply.
Fault = Union[
    ReaderOutage, DeadAntenna, PhaseGlitch, EpcMisread, LateBurst, OverloadBurst
]

#: Stable kind names, used as metric labels and in fix provenance.
#: These are part of the observability contract (documented in
#: ``docs/OBSERVABILITY.md``) — renaming one breaks dashboards.
FAULT_KIND_NAMES: Dict[type, str] = {
    ReaderOutage: "outage",
    DeadAntenna: "dead_antenna",
    PhaseGlitch: "phase_glitch",
    EpcMisread: "epc_misread",
    LateBurst: "late_burst",
    OverloadBurst: "overload",
}


def fault_kind(fault: Fault) -> str:
    """The stable kind name of one fault instance."""
    return FAULT_KIND_NAMES[type(fault)]


def fault_active(fault: Fault, start_s: float, end_s: float) -> bool:
    """Whether a fault's activity overlaps the interval ``[start_s, end_s)``.

    :class:`EpcMisread` carries no interval — it is active for the
    whole run whenever its probability is non-zero.
    """
    if isinstance(fault, EpcMisread):
        return fault.probability > 0.0
    return fault.start_s < end_s and fault.end_s > start_s


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible bundle of faults to inject into one run.

    Parameters
    ----------
    faults:
        The faults to apply, in declaration order.
    seed:
        Seed of the plan's private RNG (EPC misread draws); two runs of
        the same plan over the same stream are identical.
    """

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigurationError("fault plan seed must be non-negative")

    @property
    def enabled(self) -> bool:
        """Whether the plan does anything at all.

        A disabled plan is the hard bit-identity baseline: the injector
        passes the stream through untouched.
        """
        return bool(self.faults)
