"""Named chaos scenarios: canned fault plans over the preset scenes.

Each scenario maps a name (CLI ``--chaos`` flag, CI smoke step) to a
:class:`~repro.faults.model.FaultPlan` scaled to the run's window
grid, so "kill a reader mid-run" means the same thing for any scene or
fix count.  The timeline vocabulary is fix windows: window ``k`` spans
event time ``[k * W, (k + 1) * W)`` where ``W`` is the synthetic
stream's fix duration (see :func:`repro.stream.synthetic.synthetic_reads`).
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.constants import PACKETS_PER_FIX
from repro.errors import ConfigurationError
from repro.faults.model import (
    DeadAntenna,
    EpcMisread,
    Fault,
    FaultPlan,
    LateBurst,
    OverloadBurst,
    PhaseGlitch,
    ReaderOutage,
)
from repro.sim.scene import Scene

#: Every scenario ``chaos_plan`` understands, in CLI listing order.
CHAOS_SCENARIOS: Tuple[str, ...] = (
    "none",
    "reader-loss",
    "dead-antenna",
    "phase-glitch",
    "epc-misread",
    "overload",
    "late-burst",
)


def fix_window_s(scene: Scene, sweeps_per_fix: int = PACKETS_PER_FIX) -> float:
    """Event-time span of one fix window of a synthetic stream."""
    if sweeps_per_fix < 1:
        raise ConfigurationError("each fix needs at least one sweep")
    return sweeps_per_fix * max(
        reader.snapshot_sweep_duration() for reader in scene.readers
    )


def chaos_plan(
    name: str,
    scene: Scene,
    fixes: int,
    sweeps_per_fix: int = PACKETS_PER_FIX,
    seed: int = 0,
) -> FaultPlan:
    """The fault plan of a named scenario, scaled to a run's geometry.

    The victim of single-reader scenarios is always the first reader in
    name order, so runs are comparable across seeds.

    Raises
    ------
    ConfigurationError
        For an unknown scenario name or a run too short to stage it.
    """
    if name not in CHAOS_SCENARIOS:
        known = ", ".join(CHAOS_SCENARIOS)
        raise ConfigurationError(
            f"unknown chaos scenario {name!r} (choose from: {known})"
        )
    if fixes < 1:
        raise ConfigurationError("a chaos run needs at least one fix")
    if name == "none":
        return FaultPlan(faults=(), seed=seed)
    window_s = fix_window_s(scene, sweeps_per_fix)
    victim = sorted(reader.name for reader in scene.readers)[0]
    # Stage the disturbance over the middle third so the run has a
    # healthy lead-in (baseline behaviour) and a tail (recovery proof).
    start_w = max(1, fixes // 3)
    span_w = max(1, fixes // 3)
    end_w = min(fixes, start_w + span_w)
    faults: Tuple[Fault, ...]
    if name == "reader-loss":
        faults = (
            ReaderOutage(
                reader=victim, start_s=start_w * window_s, end_s=end_w * window_s
            ),
        )
    elif name == "dead-antenna":
        faults = (DeadAntenna(reader=victim, antenna=0, start_s=start_w * window_s),)
    elif name == "phase-glitch":
        faults = (
            PhaseGlitch(
                reader=victim,
                offset_rad=math.pi / 2.0,
                start_s=start_w * window_s,
            ),
        )
    elif name == "epc-misread":
        faults = (EpcMisread(probability=0.05),)
    elif name == "overload":
        faults = (
            OverloadBurst(
                start_s=start_w * window_s, end_s=end_w * window_s, copies=2
            ),
        )
    else:  # late-burst
        faults = (
            LateBurst(
                start_s=start_w * window_s,
                end_s=(start_w + 1) * window_s,
                delay_s=window_s / 2.0,
            ),
        )
    return FaultPlan(faults=faults, seed=seed)
