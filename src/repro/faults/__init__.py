"""Deterministic fault injection for the streaming pipeline.

Wraps any :class:`~repro.stream.events.TagRead` source with the
failure modes COTS RFID deployments actually exhibit — reader
disconnects, dead hub elements, phase glitches, EPC misreads, late and
duplicated read bursts — as declarative, seedable
:class:`~repro.faults.model.FaultPlan` data.  The injector is a pure
stream transformer: with an empty plan it is a passthrough (pinned
byte-identical by the test suite), and with any fixed plan its output
is reproducible read for read.

See ``docs/ROBUSTNESS.md`` for the fault model and how the runner's
health tracking, quarantine and checkpointing respond to each fault.

:mod:`repro.faults.net` extends the same discipline *below* the read
stream: a :class:`ChaosProxy` injects resets, partitions, slow-loris
trickling and wire corruption into the serving TCP path, and
:func:`corrupt_file` damages checkpoint files on disk — the fault
families the serve stack's self-healing (watchdog, lineage walk-back,
backpressure) is drilled against (``scripts/chaos_fleet.py``).
"""

from repro.faults.chaos import CHAOS_SCENARIOS, chaos_plan, fix_window_s
from repro.faults.injector import FaultInjector, scene_schedules
from repro.faults.net import (
    FILE_FAULT_MODES,
    NET_FAULT_KINDS,
    ChaosProxy,
    WirePlan,
    corrupt_file,
)
from repro.faults.model import (
    FAULT_KIND_NAMES,
    DeadAntenna,
    EpcMisread,
    Fault,
    FaultPlan,
    LateBurst,
    OverloadBurst,
    PhaseGlitch,
    ReaderOutage,
    fault_active,
    fault_kind,
)

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosProxy",
    "DeadAntenna",
    "EpcMisread",
    "FAULT_KIND_NAMES",
    "FILE_FAULT_MODES",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "NET_FAULT_KINDS",
    "WirePlan",
    "LateBurst",
    "OverloadBurst",
    "PhaseGlitch",
    "ReaderOutage",
    "chaos_plan",
    "corrupt_file",
    "fault_active",
    "fault_kind",
    "fix_window_s",
    "scene_schedules",
]
