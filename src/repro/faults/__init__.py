"""Deterministic fault injection for the streaming pipeline.

Wraps any :class:`~repro.stream.events.TagRead` source with the
failure modes COTS RFID deployments actually exhibit — reader
disconnects, dead hub elements, phase glitches, EPC misreads, late and
duplicated read bursts — as declarative, seedable
:class:`~repro.faults.model.FaultPlan` data.  The injector is a pure
stream transformer: with an empty plan it is a passthrough (pinned
byte-identical by the test suite), and with any fixed plan its output
is reproducible read for read.

See ``docs/ROBUSTNESS.md`` for the fault model and how the runner's
health tracking, quarantine and checkpointing respond to each fault.
"""

from repro.faults.chaos import CHAOS_SCENARIOS, chaos_plan, fix_window_s
from repro.faults.injector import FaultInjector, scene_schedules
from repro.faults.model import (
    FAULT_KIND_NAMES,
    DeadAntenna,
    EpcMisread,
    Fault,
    FaultPlan,
    LateBurst,
    OverloadBurst,
    PhaseGlitch,
    ReaderOutage,
    fault_active,
    fault_kind,
)

__all__ = [
    "CHAOS_SCENARIOS",
    "DeadAntenna",
    "EpcMisread",
    "FAULT_KIND_NAMES",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "LateBurst",
    "OverloadBurst",
    "PhaseGlitch",
    "ReaderOutage",
    "chaos_plan",
    "fault_active",
    "fault_kind",
    "fix_window_s",
    "scene_schedules",
]
