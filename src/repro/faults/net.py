"""Network and disk fault injection for the serving stack.

:mod:`repro.faults` so far injects faults *inside* the read stream —
outages, glitches, misreads.  This module injects them *under* it, at
the two places a deployed fleet actually breaks: the TCP path between
:class:`~repro.serve.publisher.ReadPublisher` and
:class:`~repro.serve.server.IngestServer`, and the checkpoint files on
disk.

* :class:`ChaosProxy` — a toxiproxy-style TCP man-in-the-middle.
  Publishers dial the proxy instead of the server; the proxy forwards
  byte streams while injecting the :class:`WirePlan`'s faults on the
  client→server direction: connection resets after N frames, full
  partitions (every connection refused and killed until healed),
  slow-loris byte trickling, and frame corruption/truncation on the
  wire.  Every fault is deterministic for a fixed plan: randomness
  comes from the plan's seed via per-connection derived streams, and
  budgets (``corrupt_limit``, ``trickle_limit``) make a plan
  *self-clearing* so drills can measure recovery, not just damage.
* :func:`corrupt_file` — seedable on-disk corruption (bit flips,
  truncation, garbage) for checkpoint-lineage drills.

The proxy is intentionally byte-oriented, not frame-oriented: it
counts frames only by newline terminators and corrupts raw chunks, so
the *server's* typed-error discipline is what is under test, not a
replica of the parser inside the proxy.

Determinism caveat: fault *decisions* are seeded per connection, but
chunk boundaries depend on TCP timing, so which byte of which frame a
flip lands on varies run to run.  What is pinned is the contract the
drills assert — every corruption yields a typed protocol error and a
publisher retry, never a hang or a silent mis-ingest.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.analysis.sanitizer import sanitized_lock
from repro.errors import ConfigurationError
from repro.utils.rng import derive_stream, ensure_rng

PathLike = Union[str, Path]

#: The wire-level fault kinds a :class:`ChaosProxy` can inject, as they
#: appear in the ``faults.injected{kind}`` metric and in proxy stats.
NET_FAULT_KINDS: Tuple[str, ...] = (
    "reset",
    "partition",
    "trickle",
    "corrupt",
    "truncate",
)

#: The on-disk corruption modes :func:`corrupt_file` implements.
FILE_FAULT_MODES: Tuple[str, ...] = ("flip", "truncate", "garbage")


@dataclass(frozen=True)
class WirePlan:
    """Declarative wire faults for one :class:`ChaosProxy`.

    Parameters
    ----------
    seed:
        Root of every random draw; per-connection streams derive from
        it so plans replay deterministically.
    reset_after_frames:
        RST each connection after forwarding this many client frames
        (``None`` disables).  Models the flaky switch that drops
        sessions mid-stream.
    corrupt_probability:
        Per-chunk probability of flipping one byte on the way to the
        server.
    truncate_probability:
        Per-chunk probability of forwarding only a prefix of the chunk
        and then resetting the connection — the wire version of a
        crashed writer.
    corrupt_limit:
        Shared budget for corruption *and* truncation events; once
        spent the plan stops damaging bytes (``None`` = unlimited).
        A finite budget is what lets a drill measure time-to-recovery.
    trickle_chunk_bytes:
        When set, client bytes are forwarded in chunks of this size
        with ``trickle_delay_s`` pauses — the slow-loris.  The
        receiving server's socket timeout is the defense under test.
    trickle_delay_s:
        Pause between trickled chunks.
    trickle_limit:
        How many connections get the slow-loris treatment before the
        plan self-clears (``None`` = all of them).
    """

    seed: int = 0
    reset_after_frames: Optional[int] = None
    corrupt_probability: float = 0.0
    truncate_probability: float = 0.0
    corrupt_limit: Optional[int] = None
    trickle_chunk_bytes: Optional[int] = None
    trickle_delay_s: float = 0.01
    trickle_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.reset_after_frames is not None and self.reset_after_frames < 1:
            raise ConfigurationError(
                "reset_after_frames must be at least 1 when set"
            )
        for name in ("corrupt_probability", "truncate_probability"):
            value = float(getattr(self, name))
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be within [0, 1], got {value!r}"
                )
        if self.corrupt_limit is not None and self.corrupt_limit < 0:
            raise ConfigurationError("corrupt_limit must be non-negative")
        if (
            self.trickle_chunk_bytes is not None
            and self.trickle_chunk_bytes < 1
        ):
            raise ConfigurationError(
                "trickle_chunk_bytes must be at least 1 when set"
            )
        if self.trickle_delay_s < 0.0:
            raise ConfigurationError("trickle_delay_s must be non-negative")
        if self.trickle_limit is not None and self.trickle_limit < 0:
            raise ConfigurationError("trickle_limit must be non-negative")


def _rst_close(sock: socket.socket) -> None:
    """Close a socket with an RST instead of a graceful FIN.

    ``SO_LINGER`` with a zero timeout makes the close abortive — the
    peer sees ``ECONNRESET``, exactly what a yanked cable or a rebooted
    middlebox produces.
    """
    try:
        sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            struct.pack("ii", 1, 0),
        )
    except OSError:  # reprolint: disable=RL006
        # Already dead; the close below is then a no-op anyway.
        pass
    try:
        sock.close()
    except OSError:  # reprolint: disable=RL006
        pass


class ChaosProxy:
    """A fault-injecting TCP relay in front of an ingest server.

    Parameters
    ----------
    upstream:
        ``(host, port)`` of the real server.
    plan:
        The wire faults to inject (an empty plan is a pure relay).
    host, port:
        Where to listen; port ``0`` picks an ephemeral one (read
        :attr:`port` after :meth:`start`).

    Beyond the plan's static faults, :meth:`partition` /
    :meth:`heal` toggle a full network partition at runtime: existing
    connections are reset and new ones refused until healed.
    """

    def __init__(
        self,
        upstream: Tuple[str, int],
        plan: WirePlan = WirePlan(),
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = upstream
        self.plan = plan
        self.host = host
        self.requested_port = port
        self._root_rng = ensure_rng(plan.seed)
        self._lock = sanitized_lock("faults.net.proxy")
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._stopping = False
        self._partitioned = False
        self._conn_index = 0
        self._corrupt_budget = plan.corrupt_limit
        self._trickle_budget = plan.trickle_limit
        self._stats: Dict[str, int] = {
            "connections": 0,
            "frames_forwarded": 0,
            "bytes_forwarded": 0,
            "resets": 0,
            "corruptions": 0,
            "truncations": 0,
            "trickled_connections": 0,
            "partition_refusals": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually bound listen port."""
        with self._lock:
            listener = self._listener
        if listener is None:
            return self.requested_port
        return int(listener.getsockname()[1])

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` publishers should dial instead of the server."""
        return self.host, self.port

    def start(self) -> "ChaosProxy":
        """Bind and start relaying; returns self."""
        with self._lock:
            if self._listener is not None:
                raise ConfigurationError("chaos proxy is already running")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.requested_port))
        listener.listen(16)
        listener.settimeout(0.2)
        thread = threading.Thread(
            target=self._accept_loop,
            name="repro-chaos-proxy",
            daemon=True,
        )
        with self._lock:
            self._listener = listener
            self._accept_thread = thread
            self._stopping = False
        thread.start()
        return self

    def stop(self) -> None:
        """Reset every connection, close the listener, join all threads."""
        with self._lock:
            self._stopping = True
            listener = self._listener
            self._listener = None
            accept_thread = self._accept_thread
            self._accept_thread = None
            conns = list(self._conns)
            self._conns.clear()
            threads = list(self._threads)
            self._threads.clear()
        for conn in conns:
            _rst_close(conn)
        if listener is not None:
            try:
                listener.close()
            except OSError:  # reprolint: disable=RL006
                pass
        if accept_thread is not None:
            accept_thread.join(timeout=5.0)
        for thread in threads:
            thread.join(timeout=5.0)

    # -- runtime faults ----------------------------------------------------

    def partition(self) -> None:
        """Cut the network: reset live connections, refuse new ones."""
        with self._lock:
            self._partitioned = True
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            _rst_close(conn)
        self._note("partition")

    def heal(self) -> None:
        """End the partition; new connections relay normally again."""
        with self._lock:
            self._partitioned = False

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return self._partitioned

    def stats(self) -> Dict[str, int]:
        """A snapshot of the proxy's fault and forwarding counters."""
        with self._lock:
            return dict(self._stats)

    # -- relay machinery ---------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            with self._lock:
                listener = self._listener
                if self._stopping or listener is None:
                    return
            try:
                client, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us: stop() is running
            if self.partitioned:
                with self._lock:
                    self._stats["partition_refusals"] += 1
                self._note("partition")
                _rst_close(client)
                continue
            self._start_relay(client)

    def _start_relay(self, client: socket.socket) -> None:
        try:
            upstream = socket.create_connection(self.upstream, timeout=10.0)
        except OSError:
            _rst_close(client)
            return
        with self._lock:
            self._conn_index += 1
            conn_index = self._conn_index
            self._stats["connections"] += 1
            trickle = False
            if self.plan.trickle_chunk_bytes is not None:
                if self._trickle_budget is None:
                    trickle = True
                elif self._trickle_budget > 0:
                    self._trickle_budget -= 1
                    trickle = True
            if trickle:
                self._stats["trickled_connections"] += 1
            self._conns.extend([client, upstream])
        rng = derive_stream(self._root_rng, conn_index)
        forward = threading.Thread(
            target=self._pump_faulty,
            args=(client, upstream, rng, trickle),
            name=f"repro-chaos-fwd-{conn_index}",
            daemon=True,
        )
        backward = threading.Thread(
            target=self._pump_clean,
            args=(upstream, client),
            name=f"repro-chaos-bwd-{conn_index}",
            daemon=True,
        )
        self._register_pump(forward)
        self._register_pump(backward)
        if trickle:
            self._note("trickle")
        forward.start()
        backward.start()

    def _register_pump(self, pump: threading.Thread) -> None:
        """Track a pump thread so ``stop()`` can join it."""
        with self._lock:
            self._threads.append(pump)

    def _pump_faulty(
        self,
        client: socket.socket,
        upstream: socket.socket,
        rng: np.random.Generator,
        trickle: bool,
    ) -> None:
        """client → server direction; where the plan's faults land."""
        frames = 0
        try:
            while True:
                chunk = client.recv(4096)
                if not chunk:
                    break
                plan = self.plan
                if (
                    plan.reset_after_frames is not None
                    and frames >= plan.reset_after_frames
                ):
                    with self._lock:
                        self._stats["resets"] += 1
                    self._note("reset")
                    _rst_close(client)
                    _rst_close(upstream)
                    return
                if self._spend_corruption(rng, plan.truncate_probability):
                    with self._lock:
                        self._stats["truncations"] += 1
                    self._note("truncate")
                    upstream.sendall(chunk[: max(1, len(chunk) // 2)])
                    _rst_close(client)
                    _rst_close(upstream)
                    return
                if self._spend_corruption(rng, plan.corrupt_probability):
                    with self._lock:
                        self._stats["corruptions"] += 1
                    self._note("corrupt")
                    damaged = bytearray(chunk)
                    position = int(rng.integers(0, len(damaged)))
                    damaged[position] ^= 0xFF
                    chunk = bytes(damaged)
                frames += chunk.count(b"\n")
                if trickle and plan.trickle_chunk_bytes is not None:
                    step = plan.trickle_chunk_bytes
                    for start in range(0, len(chunk), step):
                        upstream.sendall(chunk[start : start + step])
                        time.sleep(plan.trickle_delay_s)
                else:
                    upstream.sendall(chunk)
                with self._lock:
                    self._stats["frames_forwarded"] = (
                        self._stats["frames_forwarded"]
                        + chunk.count(b"\n")
                    )
                    self._stats["bytes_forwarded"] += len(chunk)
        except OSError:  # reprolint: disable=RL006
            # Reset/partition/timeout on either side ends the relay;
            # the finally below releases both sockets.
            pass
        finally:
            self._shutdown_pair(client, upstream)

    def _pump_clean(
        self, upstream: socket.socket, client: socket.socket
    ) -> None:
        """server → client direction; always a faithful relay."""
        try:
            while True:
                chunk = upstream.recv(4096)
                if not chunk:
                    break
                client.sendall(chunk)
        except OSError:  # reprolint: disable=RL006
            pass
        finally:
            self._shutdown_pair(client, upstream)

    def _spend_corruption(
        self, rng: np.random.Generator, probability: float
    ) -> bool:
        """One corruption/truncation draw against the shared budget."""
        if probability <= 0.0:
            return False
        if float(rng.random()) >= probability:
            return False
        with self._lock:
            if self._corrupt_budget is not None:
                if self._corrupt_budget <= 0:
                    return False
                self._corrupt_budget -= 1
        return True

    def _shutdown_pair(
        self, client: socket.socket, upstream: socket.socket
    ) -> None:
        for sock in (client, upstream):
            try:
                sock.close()
            except OSError:  # reprolint: disable=RL006
                pass
        with self._lock:
            for sock in (client, upstream):
                if sock in self._conns:
                    self._conns.remove(sock)

    @staticmethod
    def _note(kind: str) -> None:
        obs.count("faults.injected", labels={"kind": kind})

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def corrupt_file(
    path: PathLike,
    mode: str = "flip",
    seed: int = 0,
    flips: int = 8,
) -> None:
    """Deterministically damage a file on disk (checkpoint drills).

    Modes, all seeded so a drill replays byte-identically:

    * ``flip`` — XOR ``flips`` random bytes (the bit-rot case the
      integrity digest exists to catch);
    * ``truncate`` — keep only the first half (the torn-write case the
      length/JSON parse catches);
    * ``garbage`` — replace the content with random bytes (the foreign
      file / bad-sector case).
    """
    if mode not in FILE_FAULT_MODES:
        raise ConfigurationError(
            f"unknown file fault mode {mode!r}; pick from {FILE_FAULT_MODES}"
        )
    target = Path(path)
    data = bytearray(target.read_bytes())
    rng = ensure_rng(seed)
    if mode == "truncate":
        data = data[: len(data) // 2]
    elif mode == "garbage":
        data = bytearray(rng.integers(0, 256, size=max(1, len(data))).astype(
            np.uint8
        ).tobytes())
    else:
        for _ in range(max(1, flips)):
            position = int(rng.integers(0, max(1, len(data))))
            data[position % max(1, len(data))] ^= 0xFF
    target.write_bytes(bytes(data))
    obs.count("faults.injected", labels={"kind": f"file-{mode}"})
