"""Fleet chaos drills: six fault families vs. the serve self-healing.

Each drill builds a real fleet — registry, supervisor, TCP ingest —
injects exactly one fault family through :mod:`repro.faults.net` (or
the supervisor's own chaos hooks), and measures the stack's recovery:

``partition``
    A :class:`~repro.faults.net.ChaosProxy` between publisher and
    server is partitioned mid-session and healed; the publisher's
    reconnect/backoff loop must carry every read across, while a
    bystander deployment on a direct connection streams undisturbed.
``slow_loris``
    A trickled connection stalls byte delivery past the server's
    socket timeout; the server must shed the slow peer (typed error or
    reset, never a stuck handler), and the publisher's retry must
    complete on a clean connection.
``frame_corruption``
    Wire bytes are flipped en route; every damaged frame must come
    back as a typed protocol error and the resend must succeed once
    the corruption budget self-clears.
``checkpoint_corruption``
    The newest on-disk checkpoint is bit-flipped and the shard killed;
    the restart must quarantine the corrupt file (``.corrupt``
    sibling, never deleted) and restore from the lineage ancestor.
``shard_hang``
    A shard is wedged (live thread, frozen heartbeat); the
    :class:`~repro.serve.watchdog.ShardWatchdog` must declare the hang
    and recycle the shard through the restart budget.
``overload``
    A briefly-stalled worker backs the ingress queue up past the shed
    watermark; admission control must answer ``backpressure`` acks and
    the publisher must wait-and-resend with **zero** dropped reads.

Every drill gates on the same invariants: recovery within
``DrillConfig.recovery_deadline_s`` (the MTTR it reports), zero read
loss on the publisher path, fixes flowing after the fault, and zero
cross-deployment provenance leakage.  ``scripts/chaos_fleet.py`` runs
the families and writes the ``BENCH_chaos.json`` scorecard; see
``docs/RUNBOOK.md`` for the operator view of each failure.
"""

from __future__ import annotations

import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SourceUnavailableError
from repro.faults.net import ChaosProxy, WirePlan, corrupt_file
from repro.serve.publisher import ReadPublisher
from repro.serve.registry import DeploymentRegistry, DeploymentSpec, default_fleet
from repro.serve.server import IngestServer
from repro.serve.shard import checkpoint_history_paths
from repro.serve.supervisor import ShardSupervisor
from repro.sim.environments import hall_scene, laboratory_scene, library_scene
from repro.stream.checkpoint import QUARANTINE_SUFFIX
from repro.stream.events import TagRead
from repro.stream.supervise import RetryPolicy
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads

_SCENES = {
    "library": library_scene,
    "laboratory": laboratory_scene,
    "hall": hall_scene,
}

#: Retry schedule the drills give their publishers: tight, jittered,
#: and deep enough to ride out every injected outage window.
DRILL_POLICY = RetryPolicy(
    max_retries=60,
    base_delay_s=0.05,
    multiplier=1.3,
    max_delay_s=0.4,
    jitter=0.25,
)


def deployment_reads(spec: DeploymentSpec, fixes: int) -> List[TagRead]:
    """The synthetic read stream one deployment's readers would emit."""
    scene = _SCENES[spec.environment](
        rng=spec.seed,
        num_tags=spec.num_tags,
        num_antennas=spec.num_antennas,
        num_readers=spec.num_readers,
    )
    return list(
        synthetic_reads(
            scene, SyntheticStreamConfig(fixes=fixes), rng=spec.seed + 3
        )
    )


def check_leakage(
    supervisor: ShardSupervisor, registry: DeploymentRegistry
) -> Dict[str, Any]:
    """Every fix's provenance must stay inside its deployment's roster."""
    checked = 0
    violations: List[str] = []
    for deployment_id in registry.deployment_ids():
        roster = set(registry.spec(deployment_id).reader_names)
        for record in supervisor.shard(deployment_id).fix_records():
            checked += 1
            named = {
                reader["name"]
                for reader in record.get("provenance", {}).get("readers", [])
            }
            foreign = named - roster
            if foreign:
                violations.append(
                    f"{deployment_id} fix {record['index']} names "
                    f"foreign readers {sorted(foreign)}"
                )
    return {"checked_fixes": checked, "violations": violations}


def wait_until(
    predicate: Callable[[], bool], deadline_s: float, poll_s: float = 0.05
) -> bool:
    """Poll ``predicate`` until true or ``deadline_s`` elapses."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()


@dataclass(frozen=True)
class DrillConfig:
    """Knobs shared by every drill family.

    ``fixes`` scales the per-deployment workload; the deadlines bound
    how long a family may take to detect + recover before the drill
    fails.  Everything downstream (wire plans, stall windows, shed
    watermarks) derives from ``seed`` so a drill replays.
    """

    seed: int = 11
    fixes: int = 3
    workers: str = "thread"
    batch_size: int = 64
    recovery_deadline_s: float = 30.0
    hang_after_s: float = 1.0
    publisher_timeout_s: float = 15.0


@dataclass
class DrillResult:
    """One family's scorecard, as it lands in ``BENCH_chaos.json``."""

    family: str
    passed: bool
    recovered: bool
    mttr_s: float
    failures: List[str] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "passed": self.passed,
            "recovered": self.recovered,
            "mttr_s": self.mttr_s,
            "failures": list(self.failures),
            "details": dict(self.details),
        }


@dataclass
class Fleet:
    """One drill's live stack; :meth:`shutdown` is idempotent."""

    registry: DeploymentRegistry
    specs: List[DeploymentSpec]
    supervisor: ShardSupervisor
    ingest: IngestServer
    checkpoint_dir: Path
    _closed: bool = False

    @property
    def address(self) -> Tuple[str, int]:
        return self.ingest.host, self.ingest.port

    def shutdown(self) -> None:
        """Stop ingest then drain every shard (safe to call twice)."""
        if self._closed:
            return
        self._closed = True
        self.ingest.stop()
        self.supervisor.stop(drain=True)


@contextmanager
def drill_fleet(
    config: DrillConfig,
    deployments: int = 1,
    ingest_timeout_s: float = 10.0,
    **supervisor_kwargs: Any,
) -> Iterator[Fleet]:
    """A started fleet with TCP ingest, torn down (drained) on exit."""
    registry = DeploymentRegistry()
    specs = default_fleet(
        deployments, seed=config.seed, num_tags=3, num_antennas=3
    )
    for spec in specs:
        registry.register(spec)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        supervisor = ShardSupervisor(
            registry,
            checkpoint_dir=Path(tmp) / "checkpoints",
            workers=config.workers,
            **supervisor_kwargs,
        )
        supervisor.start()
        ingest = IngestServer(supervisor, timeout_s=ingest_timeout_s)
        ingest.start()
        fleet = Fleet(
            registry=registry,
            specs=specs,
            supervisor=supervisor,
            ingest=ingest,
            checkpoint_dir=Path(tmp) / "checkpoints",
        )
        try:
            yield fleet
        finally:
            fleet.shutdown()


def _publisher(
    address: Tuple[str, int],
    spec: DeploymentSpec,
    config: DrillConfig,
    **kwargs: Any,
) -> ReadPublisher:
    return ReadPublisher(
        address[0],
        address[1],
        spec.deployment_id,
        spec.reader_names,
        policy=DRILL_POLICY,
        timeout_s=config.publisher_timeout_s,
        **kwargs,
    )


def _publish_all(
    address: Tuple[str, int],
    spec: DeploymentSpec,
    reads: Sequence[TagRead],
    config: DrillConfig,
    out: Dict[str, Any],
) -> None:
    """Thread target: ship one deployment's reads, record the verdicts."""
    publisher = _publisher(address, spec, config)
    try:
        # publish() dials (and redials) itself, so a fault that lands
        # on the very first handshake still goes through the retries.
        accepted, dropped = publisher.publish(
            reads, batch_size=config.batch_size
        )
        out["accepted"] = accepted
        out["dropped"] = dropped
    except (SourceUnavailableError, OSError, ValueError) as exc:
        out["error"] = f"{type(exc).__name__}: {exc}"
    finally:
        publisher.close()


def _settle_and_audit(
    fleet: Fleet,
    result: DrillResult,
    expected_reads: Dict[str, int],
    per_deployment: Dict[str, Dict[str, Any]],
) -> None:
    """The shared gates: zero loss, fixes flowing, zero leakage."""
    wait_until(
        lambda: all(
            fleet.supervisor.fixes_emitted(deployment_id) >= 1
            for deployment_id in expected_reads
        ),
        60.0,
    )
    fleet.shutdown()
    for deployment_id, total in sorted(expected_reads.items()):
        out = per_deployment.get(deployment_id, {})
        if "error" in out:
            result.failures.append(
                f"{deployment_id}: publisher failed: {out['error']}"
            )
            continue
        if out.get("accepted", 0) != total:
            result.failures.append(
                f"{deployment_id}: accepted {out.get('accepted', 0)} of "
                f"{total} reads"
            )
        if out.get("dropped", 0) != 0:
            result.failures.append(
                f"{deployment_id}: dropped {out.get('dropped')} reads"
            )
        if fleet.supervisor.fixes_emitted(deployment_id) < 1:
            result.failures.append(f"{deployment_id}: no fixes after drain")
    leakage = check_leakage(fleet.supervisor, fleet.registry)
    result.failures.extend(leakage["violations"])
    result.details["leakage"] = {
        "checked_fixes": leakage["checked_fixes"],
        "violations": len(leakage["violations"]),
    }
    result.details["per_deployment"] = {
        deployment_id: dict(per_deployment.get(deployment_id, {}))
        for deployment_id in sorted(expected_reads)
    }


# -- the families ----------------------------------------------------------


def drill_partition(config: DrillConfig) -> DrillResult:
    """Partition mid-session, heal, and require a zero-loss resume."""
    result = DrillResult("partition", False, False, 0.0)
    heal_after_s = 0.5
    with drill_fleet(config, deployments=2) as fleet:
        victim, bystander = fleet.specs[0], fleet.specs[1]
        reads = {
            spec.deployment_id: deployment_reads(spec, config.fixes)
            for spec in fleet.specs
        }
        outs: Dict[str, Dict[str, Any]] = {
            spec.deployment_id: {} for spec in fleet.specs
        }
        with ChaosProxy(fleet.address, WirePlan(seed=config.seed)) as proxy:
            healed_at = {"t": 0.0}

            def _heal() -> None:
                time.sleep(heal_after_s)
                proxy.heal()
                healed_at["t"] = time.monotonic()

            # The victim connects while healthy; the partition then
            # cuts a *live* session, the worst case for the publisher.
            victim_pub = _publisher(proxy.address, victim, config)
            victim_pub.connect()
            proxy.partition()
            healer = threading.Thread(
                target=_heal, name="drill-healer", daemon=True
            )
            bystander_thread = threading.Thread(
                target=_publish_all,
                args=(
                    fleet.address,
                    bystander,
                    reads[bystander.deployment_id],
                    config,
                    outs[bystander.deployment_id],
                ),
                name="drill-bystander",
                daemon=True,
            )
            healer.start()
            bystander_thread.start()
            victim_out = outs[victim.deployment_id]
            try:
                accepted, dropped = victim_pub.publish(
                    reads[victim.deployment_id], batch_size=config.batch_size
                )
                victim_out["accepted"] = accepted
                victim_out["dropped"] = dropped
            except (SourceUnavailableError, OSError, ValueError) as exc:
                victim_out["error"] = f"{type(exc).__name__}: {exc}"
            finally:
                victim_pub.close()
            finished = time.monotonic()
            healer.join()
            bystander_thread.join()
            result.details["proxy"] = proxy.stats()
        result.mttr_s = max(0.0, finished - healed_at["t"])
        result.recovered = (
            "error" not in victim_out
            and result.mttr_s <= config.recovery_deadline_s
        )
        if not result.recovered:
            result.failures.append(
                f"victim did not recover within "
                f"{config.recovery_deadline_s}s of the heal"
            )
        expected = {
            deployment_id: len(batch) for deployment_id, batch in reads.items()
        }
        _settle_and_audit(fleet, result, expected, outs)
    result.passed = not result.failures
    return result


def drill_slow_loris(config: DrillConfig) -> DrillResult:
    """Trickle bytes past the server timeout; a bystander must not care."""
    result = DrillResult("slow_loris", False, False, 0.0)
    server_timeout_s = 0.3
    plan = WirePlan(
        seed=config.seed,
        trickle_chunk_bytes=512,
        trickle_delay_s=2 * server_timeout_s,
        trickle_limit=1,
    )
    with drill_fleet(
        config, deployments=2, ingest_timeout_s=server_timeout_s
    ) as fleet:
        victim, bystander = fleet.specs[0], fleet.specs[1]
        reads = {
            spec.deployment_id: deployment_reads(spec, config.fixes)
            for spec in fleet.specs
        }
        outs: Dict[str, Dict[str, Any]] = {
            spec.deployment_id: {} for spec in fleet.specs
        }
        with ChaosProxy(fleet.address, plan) as proxy:
            started = time.monotonic()
            threads = []
            for address, spec in (
                (proxy.address, victim),
                (fleet.address, bystander),
            ):
                thread = threading.Thread(
                    target=_publish_all,
                    args=(
                        address,
                        spec,
                        reads[spec.deployment_id],
                        config,
                        outs[spec.deployment_id],
                    ),
                    name=f"drill-loris-{spec.deployment_id}",
                    daemon=True,
                )
                threads.append(thread)
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            result.mttr_s = time.monotonic() - started
            result.details["proxy"] = proxy.stats()
        if proxy.stats()["trickled_connections"] < 1:
            result.failures.append("the slow-loris was never injected")
        result.recovered = (
            "error" not in outs[victim.deployment_id]
            and result.mttr_s <= config.recovery_deadline_s
        )
        if not result.recovered:
            result.failures.append(
                "trickled publisher did not complete within "
                f"{config.recovery_deadline_s}s"
            )
        expected = {
            deployment_id: len(batch) for deployment_id, batch in reads.items()
        }
        _settle_and_audit(fleet, result, expected, outs)
    result.passed = not result.failures
    return result


def drill_frame_corruption(config: DrillConfig) -> DrillResult:
    """Flip wire bytes; typed errors + resends must carry every read."""
    result = DrillResult("frame_corruption", False, False, 0.0)
    plan = WirePlan(seed=config.seed, corrupt_probability=1.0, corrupt_limit=2)
    with drill_fleet(config, deployments=1, ingest_timeout_s=2.0) as fleet:
        spec = fleet.specs[0]
        reads = deployment_reads(spec, config.fixes)
        out: Dict[str, Any] = {}
        with ChaosProxy(fleet.address, plan) as proxy:
            started = time.monotonic()
            _publish_all(proxy.address, spec, reads, config, out)
            result.mttr_s = time.monotonic() - started
            result.details["proxy"] = proxy.stats()
        if result.details["proxy"]["corruptions"] < 1:
            result.failures.append("no corruption was ever injected")
        result.recovered = (
            "error" not in out and result.mttr_s <= config.recovery_deadline_s
        )
        if not result.recovered:
            result.failures.append(
                "publisher did not survive wire corruption within "
                f"{config.recovery_deadline_s}s"
            )
        _settle_and_audit(
            fleet,
            result,
            {spec.deployment_id: len(reads)},
            {spec.deployment_id: out},
        )
    result.passed = not result.failures
    return result


def drill_checkpoint_corruption(config: DrillConfig) -> DrillResult:
    """Corrupt the newest checkpoint; restart must walk the lineage."""
    result = DrillResult("checkpoint_corruption", False, False, 0.0)
    with drill_fleet(config, deployments=1, history_keep=3) as fleet:
        spec = fleet.specs[0]
        deployment_id = spec.deployment_id
        reads = deployment_reads(spec, config.fixes)
        third = max(1, len(reads) // 3)
        out: Dict[str, Any] = {"accepted": 0, "dropped": 0}
        ancestor_id: Optional[str] = None
        latest_id: Optional[str] = None

        def _ship(batch: Sequence[TagRead], publisher: ReadPublisher) -> None:
            accepted, dropped = publisher.publish(
                batch, batch_size=config.batch_size
            )
            out["accepted"] += accepted
            out["dropped"] += dropped

        publisher = _publisher(fleet.address, spec, config)
        try:
            _ship(reads[:third], publisher)
            ancestor_id = fleet.supervisor.checkpoint(deployment_id)
            _ship(reads[third : 2 * third], publisher)
            latest_id = fleet.supervisor.checkpoint(deployment_id)
            latest_path = fleet.supervisor.checkpoint_path(deployment_id)
            assert latest_path is not None
            corrupt_file(latest_path, mode="flip", seed=config.seed)
            fault_at = time.monotonic()
            fleet.supervisor.kill(deployment_id)
            # The next routed batch restarts the shard inline; the
            # restore must quarantine the flipped file and chain
            # through the ancestor.
            _ship(reads[2 * third :], publisher)
            recovered_at = time.monotonic()
        except (SourceUnavailableError, OSError, ValueError) as exc:
            out["error"] = f"{type(exc).__name__}: {exc}"
            fault_at = recovered_at = time.monotonic()
        finally:
            publisher.close()
        result.mttr_s = recovered_at - fault_at
        specimens = sorted(
            str(path.name)
            for path in fleet.checkpoint_dir.glob(f"*{QUARANTINE_SUFFIX}*")
        )
        result.details["quarantined"] = specimens
        result.details["ancestor_checkpoint"] = ancestor_id
        result.details["corrupted_checkpoint"] = latest_id
        if not specimens:
            result.failures.append(
                "the corrupt checkpoint was not quarantined"
            )
        latest_path = fleet.supervisor.checkpoint_path(deployment_id)
        if latest_path is not None and not checkpoint_history_paths(
            latest_path
        ):
            result.failures.append("no checkpoint survived the recovery")
        result.recovered = (
            "error" not in out and result.mttr_s <= config.recovery_deadline_s
        )
        if not result.recovered:
            result.failures.append(
                "shard did not restore from the lineage within "
                f"{config.recovery_deadline_s}s"
            )
        _settle_and_audit(
            fleet,
            result,
            {deployment_id: len(reads)},
            {deployment_id: out},
        )
        records = fleet.supervisor.shard(deployment_id).fix_records()
        lineages = [
            record.get("provenance", {}).get("checkpoint_lineage", [])
            for record in records
        ]
        if not any(ancestor_id in lineage for lineage in lineages):
            result.failures.append(
                "restored fixes do not chain the ancestor checkpoint "
                f"{ancestor_id}"
            )
        restarts = fleet.supervisor.health_document()["deployments"][
            deployment_id
        ]["restarts"]
        result.details["restarts"] = restarts
        if restarts < 1:
            result.failures.append("shard was never restarted")
    result.passed = not result.failures
    return result


def drill_shard_hang(config: DrillConfig) -> DrillResult:
    """Wedge a live shard; the watchdog must declare and recycle it."""
    result = DrillResult("shard_hang", False, False, 0.0)
    with drill_fleet(
        config, deployments=1, hang_after_s=config.hang_after_s
    ) as fleet:
        spec = fleet.specs[0]
        deployment_id = spec.deployment_id
        reads = deployment_reads(spec, config.fixes)
        half = len(reads) // 2
        out: Dict[str, Any] = {"accepted": 0, "dropped": 0}
        publisher = _publisher(fleet.address, spec, config)
        try:
            accepted, dropped = publisher.publish(
                reads[:half], batch_size=config.batch_size
            )
            out["accepted"] += accepted
            out["dropped"] += dropped
            checkpoint_id = fleet.supervisor.checkpoint(deployment_id)
            result.details["checkpoint_id"] = checkpoint_id
            # Wedge far past the liveness deadline: only the watchdog
            # can end this, not the stall expiring on its own.
            fleet.supervisor.stall(deployment_id, 60.0)
            fault_at = time.monotonic()
            time.sleep(min(2 * config.hang_after_s, 2.0))
            shard = fleet.supervisor.shard(deployment_id)
            result.details["state_during_stall"] = shard.state
            result.details["failure_during_stall"] = shard.failure
            if shard.state == "failed":
                result.failures.append(
                    "stalled shard crashed instead of hanging; the drill "
                    "did not exercise hang detection"
                )
            watchdog = fleet.supervisor.watchdog
            assert watchdog is not None
            recycled = wait_until(
                lambda: watchdog.restarts_triggered >= 1
                and fleet.supervisor.shard(deployment_id).state == "live",
                config.recovery_deadline_s,
            )
            recovered_at = time.monotonic()
            result.details["hangs_declared"] = watchdog.hangs_declared
            result.details["watchdog_restarts"] = watchdog.restarts_triggered
            if not recycled:
                result.failures.append(
                    "watchdog did not recycle the hung shard within "
                    f"{config.recovery_deadline_s}s"
                )
            accepted, dropped = publisher.publish(
                reads[half:], batch_size=config.batch_size
            )
            out["accepted"] += accepted
            out["dropped"] += dropped
            result.recovered = recycled
            result.mttr_s = recovered_at - fault_at
        except (SourceUnavailableError, OSError, ValueError) as exc:
            out["error"] = f"{type(exc).__name__}: {exc}"
            result.mttr_s = config.recovery_deadline_s
        finally:
            publisher.close()
        _settle_and_audit(
            fleet,
            result,
            {deployment_id: len(reads)},
            {deployment_id: out},
        )
        records = fleet.supervisor.shard(deployment_id).fix_records()
        lineages = [
            record.get("provenance", {}).get("checkpoint_lineage", [])
            for record in records
        ]
        if not any(
            result.details.get("checkpoint_id") in lineage
            for lineage in lineages
        ):
            result.failures.append(
                "post-recycle fixes do not chain the pre-hang checkpoint"
            )
    result.passed = not result.failures
    return result


def drill_overload(config: DrillConfig) -> DrillResult:
    """Back the queue up past the watermark; demand zero-loss shedding."""
    result = DrillResult("overload", False, False, 0.0)
    stall_s = 0.8
    overload = DrillConfig(
        seed=config.seed,
        fixes=config.fixes,
        # Admission control is a thread-shard feature; a process
        # shard's synchronous pipe *is* its backpressure.
        workers="thread",
        batch_size=16,
        recovery_deadline_s=config.recovery_deadline_s,
        publisher_timeout_s=config.publisher_timeout_s,
    )
    with drill_fleet(
        overload,
        deployments=1,
        ingress_capacity=96,
        shed_watermark=0.4,
        shed_retry_after_s=0.05,
    ) as fleet:
        spec = fleet.specs[0]
        deployment_id = spec.deployment_id
        reads = deployment_reads(spec, overload.fixes)
        out: Dict[str, Any] = {}
        publisher = _publisher(
            fleet.address, spec, overload, max_backpressure_waits=1000
        )
        try:
            publisher.connect()
            fleet.supervisor.stall(deployment_id, stall_s)
            fault_at = time.monotonic()
            accepted, dropped = publisher.publish(
                reads, batch_size=overload.batch_size
            )
            out["accepted"] = accepted
            out["dropped"] = dropped
            result.mttr_s = time.monotonic() - fault_at
        except (SourceUnavailableError, OSError, ValueError) as exc:
            out["error"] = f"{type(exc).__name__}: {exc}"
            result.mttr_s = overload.recovery_deadline_s
        finally:
            publisher.close()
        result.details["backpressure_waits"] = publisher.backpressure_waits
        if publisher.backpressure_waits < 1:
            result.failures.append(
                "the queue never shed; the overload was not induced"
            )
        result.recovered = (
            "error" not in out
            and result.mttr_s <= overload.recovery_deadline_s
        )
        if not result.recovered:
            result.failures.append(
                "publisher did not drain the overload within "
                f"{overload.recovery_deadline_s}s"
            )
        _settle_and_audit(
            fleet,
            result,
            {deployment_id: len(reads)},
            {deployment_id: out},
        )
    result.passed = not result.failures
    return result


#: The drill families ``scripts/chaos_fleet.py`` runs, in order.
DRILL_FAMILIES: Dict[str, Callable[[DrillConfig], DrillResult]] = {
    "partition": drill_partition,
    "slow_loris": drill_slow_loris,
    "frame_corruption": drill_frame_corruption,
    "checkpoint_corruption": drill_checkpoint_corruption,
    "shard_hang": drill_shard_hang,
    "overload": drill_overload,
}


def run_drills(
    config: DrillConfig, families: Optional[Sequence[str]] = None
) -> List[DrillResult]:
    """Run the requested families (all of them by default), in order."""
    chosen = list(DRILL_FAMILIES) if families is None else list(families)
    unknown = [name for name in chosen if name not in DRILL_FAMILIES]
    if unknown:
        raise KeyError(
            f"unknown drill families {unknown}; "
            f"pick from {sorted(DRILL_FAMILIES)}"
        )
    return [DRILL_FAMILIES[name](config) for name in chosen]
