"""Decibel/linear conversions.

``db_to_linear``/``linear_to_db`` operate on *amplitude* ratios
(20 dB per decade) while ``db_to_power``/``power_to_db`` operate on
*power* ratios (10 dB per decade).  Mixing the two is the classic RF
bookkeeping bug, hence the explicit names.
"""

from __future__ import annotations

import numpy as np


def db_to_linear(db):
    """Amplitude ratio for a gain expressed in dB."""
    return np.power(10.0, np.asarray(db, dtype=float) / 20.0)


def linear_to_db(ratio):
    """Gain in dB for an amplitude ratio (must be positive)."""
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("amplitude ratio must be positive to convert to dB")
    return 20.0 * np.log10(arr)


def db_to_power(db):
    """Power ratio for a gain expressed in dB."""
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0)


def power_to_db(ratio):
    """Gain in dB for a power ratio (must be positive)."""
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("power ratio must be positive to convert to dB")
    return 10.0 * np.log10(arr)
