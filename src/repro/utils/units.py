"""Decibel/linear conversions.

``db_to_linear``/``linear_to_db`` operate on *amplitude* ratios
(20 dB per decade) while ``db_to_power``/``power_to_db`` operate on
*power* ratios (10 dB per decade).  Mixing the two is the classic RF
bookkeeping bug, hence the explicit names.
"""

from __future__ import annotations

from typing import Any, Union, overload

import numpy as np
from numpy.typing import NDArray

FloatArray = NDArray[np.float64]
_ScalarOrArray = Union[float, FloatArray]


@overload
def db_to_linear(db: float) -> float: ...
@overload
def db_to_linear(db: FloatArray) -> FloatArray: ...


def db_to_linear(db: _ScalarOrArray) -> Any:
    """Amplitude ratio for a gain expressed in dB."""
    result = np.power(10.0, np.asarray(db, dtype=float) / 20.0)
    return float(result) if np.ndim(db) == 0 else result


@overload
def linear_to_db(ratio: float) -> float: ...
@overload
def linear_to_db(ratio: FloatArray) -> FloatArray: ...


def linear_to_db(ratio: _ScalarOrArray) -> Any:
    """Gain in dB for an amplitude ratio (must be positive)."""
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("amplitude ratio must be positive to convert to dB")
    result = 20.0 * np.log10(arr)
    return float(result) if np.ndim(ratio) == 0 else result


@overload
def db_to_power(db: float) -> float: ...
@overload
def db_to_power(db: FloatArray) -> FloatArray: ...


def db_to_power(db: _ScalarOrArray) -> Any:
    """Power ratio for a gain expressed in dB."""
    result = np.power(10.0, np.asarray(db, dtype=float) / 10.0)
    return float(result) if np.ndim(db) == 0 else result


@overload
def power_to_db(ratio: float) -> float: ...
@overload
def power_to_db(ratio: FloatArray) -> FloatArray: ...


def power_to_db(ratio: _ScalarOrArray) -> Any:
    """Gain in dB for a power ratio (must be positive)."""
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("power ratio must be positive to convert to dB")
    result = 10.0 * np.log10(arr)
    return float(result) if np.ndim(ratio) == 0 else result
