"""Shared :mod:`numpy.typing` aliases for the strictly-typed signal core.

The MUSIC/P-MUSIC chain is precise about what flows where: snapshots and
covariances are complex, spectra and angle grids are real.  These
aliases give every signature in ``dsp/``, ``rf/`` and ``utils/`` one
vocabulary for that distinction, so a covariance silently cast to real
(reprolint rule RL003) also reads wrong in the type signature.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

#: Real-valued arrays: angle grids, spectra, phase offsets, statistics.
FloatArray = NDArray[np.float64]

#: Complex-valued arrays: snapshots, covariances, subspaces, steering.
ComplexArray = NDArray[np.complex128]

#: Integer index arrays (peak indices, grid cells).
IntArray = NDArray[np.int64]

__all__ = ["ArrayLike", "ComplexArray", "FloatArray", "IntArray"]
