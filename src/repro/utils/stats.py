"""Statistics helpers used by the evaluation harness.

The paper reports localization quality as medians, means, 90th
percentiles and CDF curves; these helpers centralise that arithmetic so
every benchmark formats results identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.utils.arrays import FloatArray


def empirical_cdf(values: Iterable[float]) -> Tuple[FloatArray, FloatArray]:
    """Return ``(sorted_values, cumulative_probabilities)``.

    The probabilities use the ``i / n`` convention so the last point is
    exactly 1.0, matching how the paper's CDF figures are drawn.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("empirical_cdf() of an empty sequence")
    probs = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, probs


def median(values: Iterable[float]) -> float:
    """Median of a sequence (kept for symmetry with :func:`percentile`)."""
    return float(np.median(np.asarray(list(values), dtype=float)))


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of a sequence."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be within [0, 100]")
    return float(np.percentile(np.asarray(list(values), dtype=float), q))


def mean_and_std(values: Iterable[float]) -> Tuple[float, float]:
    """Mean and (population) standard deviation of a sequence."""
    arr = np.asarray(list(values), dtype=float)
    return float(arr.mean()), float(arr.std())


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of a set of localization errors (metres)."""

    count: int
    mean: float
    median: float
    p90: float
    maximum: float

    def as_row(self, unit_scale: float = 100.0) -> str:
        """Format as a one-line table row (default unit: centimetres)."""
        return (
            f"n={self.count:4d}  mean={self.mean * unit_scale:6.1f}  "
            f"median={self.median * unit_scale:6.1f}  "
            f"p90={self.p90 * unit_scale:6.1f}  "
            f"max={self.maximum * unit_scale:6.1f}"
        )


def summarize_errors(errors: Sequence[float]) -> ErrorSummary:
    """Build an :class:`ErrorSummary` from raw error samples."""
    arr = np.asarray(list(errors), dtype=float)
    if arr.size == 0:
        raise ValueError("summarize_errors() of an empty sequence")
    return ErrorSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p90=float(np.percentile(arr, 90)),
        maximum=float(arr.max()),
    )
