"""Angle arithmetic helpers.

The library stores every angle in radians.  AoA values for a uniform
linear array live in ``[0, pi]`` (a ULA cannot distinguish front from
back), while generic bearings live in ``(-pi, pi]``.

These helpers are the *only* sanctioned degree/radian boundary: reprolint
rule RL002 flags raw ``np.deg2rad``/``np.rad2deg`` (and the ``math``
equivalents) everywhere else, so every unit conversion in the tree is
auditable from this module's call sites.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Union, overload

import numpy as np
from numpy.typing import NDArray

TWO_PI = 2.0 * math.pi

FloatArray = NDArray[np.float64]
_ScalarOrArray = Union[float, FloatArray]


@overload
def deg2rad(value: float) -> float: ...
@overload
def deg2rad(value: FloatArray) -> FloatArray: ...


def deg2rad(value: _ScalarOrArray) -> Any:
    """Convert degrees to radians (scalar or array)."""
    if np.ndim(value) == 0:
        return math.radians(float(value))
    return np.deg2rad(np.asarray(value, dtype=float))


@overload
def rad2deg(value: float) -> float: ...
@overload
def rad2deg(value: FloatArray) -> FloatArray: ...


def rad2deg(value: _ScalarOrArray) -> Any:
    """Convert radians to degrees (scalar or array)."""
    if np.ndim(value) == 0:
        return math.degrees(float(value))
    return np.rad2deg(np.asarray(value, dtype=float))


@overload
def wrap_to_pi(angle: float) -> float: ...
@overload
def wrap_to_pi(angle: FloatArray) -> FloatArray: ...


def wrap_to_pi(angle: _ScalarOrArray) -> Any:
    """Wrap an angle (scalar or array) into ``(-pi, pi]``."""
    wrapped = np.mod(np.asarray(angle) + math.pi, TWO_PI) - math.pi
    # np.mod maps exact odd multiples of pi to -pi; the convention here is
    # the half-open interval (-pi, pi], so fold -pi back to +pi.
    return np.where(wrapped == -math.pi, math.pi, wrapped) if np.ndim(angle) else (
        math.pi if wrapped == -math.pi else float(wrapped)
    )


@overload
def wrap_to_2pi(angle: float) -> float: ...
@overload
def wrap_to_2pi(angle: FloatArray) -> FloatArray: ...


def wrap_to_2pi(angle: _ScalarOrArray) -> Any:
    """Wrap an angle (scalar or array) into ``[0, 2*pi)``."""
    wrapped = np.mod(np.asarray(angle), TWO_PI)
    return wrapped if np.ndim(angle) else float(wrapped)


@overload
def angle_difference(a: float, b: float) -> float: ...
@overload
def angle_difference(a: FloatArray, b: _ScalarOrArray) -> FloatArray: ...
@overload
def angle_difference(a: _ScalarOrArray, b: FloatArray) -> FloatArray: ...


def angle_difference(a: _ScalarOrArray, b: _ScalarOrArray) -> Any:
    """Smallest signed difference ``a - b`` wrapped into ``(-pi, pi]``."""
    return wrap_to_pi(np.asarray(a) - np.asarray(b))


def circular_mean(angles: Iterable[float]) -> float:
    """Mean direction of a set of angles, computed on the unit circle.

    Raises
    ------
    ValueError
        If ``angles`` is empty or the resultant vector is (numerically)
        zero, in which case the mean direction is undefined.
    """
    arr = np.asarray(list(angles), dtype=float)
    if arr.size == 0:
        raise ValueError("circular_mean() of an empty sequence")
    resultant = np.exp(1j * arr).mean()
    if abs(resultant) < 1e-12:
        raise ValueError("circular mean undefined: resultant vector is zero")
    return float(np.angle(resultant))
