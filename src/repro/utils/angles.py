"""Angle arithmetic helpers.

The library stores every angle in radians.  AoA values for a uniform
linear array live in ``[0, pi]`` (a ULA cannot distinguish front from
back), while generic bearings live in ``(-pi, pi]``.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

TWO_PI = 2.0 * math.pi


def deg2rad(value):
    """Convert degrees to radians (scalar or array)."""
    return np.deg2rad(value)


def rad2deg(value):
    """Convert radians to degrees (scalar or array)."""
    return np.rad2deg(value)


def wrap_to_pi(angle):
    """Wrap an angle (scalar or array) into ``(-pi, pi]``."""
    wrapped = np.mod(np.asarray(angle) + math.pi, TWO_PI) - math.pi
    # np.mod maps exact odd multiples of pi to -pi; the convention here is
    # the half-open interval (-pi, pi], so fold -pi back to +pi.
    return np.where(wrapped == -math.pi, math.pi, wrapped) if np.ndim(angle) else (
        math.pi if wrapped == -math.pi else float(wrapped)
    )


def wrap_to_2pi(angle):
    """Wrap an angle (scalar or array) into ``[0, 2*pi)``."""
    wrapped = np.mod(np.asarray(angle), TWO_PI)
    return wrapped if np.ndim(angle) else float(wrapped)


def angle_difference(a, b):
    """Smallest signed difference ``a - b`` wrapped into ``(-pi, pi]``."""
    return wrap_to_pi(np.asarray(a) - np.asarray(b))


def circular_mean(angles: Iterable[float]) -> float:
    """Mean direction of a set of angles, computed on the unit circle.

    Raises
    ------
    ValueError
        If ``angles`` is empty or the resultant vector is (numerically)
        zero, in which case the mean direction is undefined.
    """
    arr = np.asarray(list(angles), dtype=float)
    if arr.size == 0:
        raise ValueError("circular_mean() of an empty sequence")
    resultant = np.exp(1j * arr).mean()
    if abs(resultant) < 1e-12:
        raise ValueError("circular mean undefined: resultant vector is zero")
    return float(np.angle(resultant))
