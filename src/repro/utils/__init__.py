"""Small, dependency-free helpers shared across the library."""

from repro.utils.angles import (
    deg2rad,
    rad2deg,
    wrap_to_pi,
    wrap_to_2pi,
    angle_difference,
    circular_mean,
)
from repro.utils.rng import ensure_rng, spawn_child
from repro.utils.stats import (
    empirical_cdf,
    median,
    percentile,
    mean_and_std,
    summarize_errors,
    ErrorSummary,
)
from repro.utils.units import db_to_linear, linear_to_db, db_to_power, power_to_db

__all__ = [
    "deg2rad",
    "rad2deg",
    "wrap_to_pi",
    "wrap_to_2pi",
    "angle_difference",
    "circular_mean",
    "ensure_rng",
    "spawn_child",
    "empirical_cdf",
    "median",
    "percentile",
    "mean_and_std",
    "summarize_errors",
    "ErrorSummary",
    "db_to_linear",
    "linear_to_db",
    "db_to_power",
    "power_to_db",
]
