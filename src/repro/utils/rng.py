"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed, an
existing :class:`numpy.random.Generator`, or ``None``.  Routing all
randomness through :func:`ensure_rng` keeps simulations reproducible and
lets experiment sweeps derive independent child streams deterministically
via :func:`spawn_child`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a freshly seeded generator, an ``int`` seeds a new
    generator, and an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def derive_stream(rng: np.random.Generator, key: int) -> np.random.Generator:
    """A deterministic side stream keyed off ``rng``'s initial entropy.

    Unlike :func:`spawn_child` this never advances the parent's spawn
    counter, so it can be called from inside library code (e.g. scene
    builders drawing tag EPCs) without shifting any stream the caller
    derives later — and repeated calls with the same key return the
    same stream.
    """
    if key < 0:
        raise ValueError("stream key must be non-negative")
    seed_seq = rng.bit_generator.seed_seq
    if not isinstance(seed_seq, np.random.SeedSequence):
        # Exotic bit generators without a SeedSequence cannot give a
        # reproducible side stream; fall back to consuming the parent.
        return np.random.default_rng(rng.integers(0, 2**63))
    child = np.random.SeedSequence(
        entropy=seed_seq.entropy,
        spawn_key=(*seed_seq.spawn_key, key),
    )
    return np.random.default_rng(child)


def spawn_child(rng: np.random.Generator, index: int) -> np.random.Generator:
    """Derive a deterministic, independent child stream from ``rng``.

    The child only depends on the parent's *initial* state and ``index``,
    not on how much of the parent stream has been consumed, so parallel
    sweeps get stable per-trial randomness.
    """
    if index < 0:
        raise ValueError("child index must be non-negative")
    seed_seq = rng.bit_generator.seed_seq
    if seed_seq is None:  # pragma: no cover - only for exotic bit generators
        return np.random.default_rng(rng.integers(0, 2**63))
    return np.random.default_rng(seed_seq.spawn(index + 1)[index])
