"""The shard supervisor: one process hosting a fleet of deployments.

:class:`ShardSupervisor` owns a :class:`~repro.serve.registry.DeploymentRegistry`
and runs one shard (thread- or process-mode worker, per config) for
every registered deployment.  Its jobs:

* **Routing** — :meth:`route` delivers an ingested batch to the right
  shard's bounded queue and reports the admission verdict the ingest
  protocol acks back.  Per-deployment routing is serialized (a
  process-mode shard's pipe conversation must never interleave), but
  different deployments route concurrently.
* **Failover** — a crashed shard (worker exception, killed process) is
  restarted from its latest durable checkpoint, up to
  ``restart_limit`` times per deployment.  The restored runner's
  lineage chains through the checkpoint id, so every post-restart fix
  carries an auditable proof of the resume in its provenance.
* **Fleet health** — :meth:`health_document` renders the schema-2
  ``/healthz`` document (per-deployment nesting) and
  :meth:`rings` exposes the per-deployment provenance feeds, both
  served through the existing :class:`~repro.obs.server.OpsServer`.

Lock discipline: the supervisor's own lock only guards its shard maps
(lookups copy references out); shard I/O — queue admission, pipe
frames, checkpoint files — always happens outside it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.analysis.sanitizer import sanitized_lock
from repro.errors import CheckpointError, RegistryError, ShardError
from repro.serve.registry import DeploymentRegistry
from repro.serve.shard import (
    Admission,
    DeploymentShard,
    ProcessShard,
    checkpoint_history_paths,
)
from repro.serve.watchdog import ShardWatchdog
from repro.stream.checkpoint import (
    checkpoint_id,
    load_checkpoint,
    quarantine_checkpoint,
)
from repro.stream.events import TagRead
from repro.stream.provenance import ProvenanceRing

#: The worker isolation modes a supervisor can run shards in.
WORKER_MODES: Tuple[str, ...] = ("thread", "process")

ShardLike = Union[DeploymentShard, ProcessShard]

PathLike = Union[str, Path]


class ShardSupervisor:
    """Run, route to, checkpoint and restart one shard per deployment.

    Parameters
    ----------
    registry:
        The deployment fleet; every registered spec gets a shard on
        :meth:`start`.
    checkpoint_dir:
        Directory for per-deployment checkpoints
        (``<deployment_id>.ckpt.json``); ``None`` disables durability
        and therefore restarts resume from scratch.
    workers:
        ``thread`` (default) or ``process`` — see
        :mod:`repro.serve.shard`.
    checkpoint_every:
        Shards checkpoint after this many fresh fixes (``0`` = only on
        demand and at drain).
    restart_limit:
        Crash-restarts tolerated per deployment before :meth:`route`
        gives up with :class:`~repro.errors.ShardError`.
    hang_after_s:
        When set, :meth:`start` also runs a :class:`ShardWatchdog`
        with this liveness deadline, recycling shards that hang (stop
        making progress without dying); ``None`` disables it.
    shed_watermark, shed_retry_after_s:
        Thread-shard admission control — see
        :class:`~repro.serve.shard.DeploymentShard`.
    history_keep:
        Checkpoint lineage depth retained per deployment for the
        corrupt-checkpoint walk-back (:meth:`recover_checkpoint`).
    """

    def __init__(
        self,
        registry: DeploymentRegistry,
        checkpoint_dir: Optional[PathLike] = None,
        workers: str = "thread",
        checkpoint_every: int = 0,
        restart_limit: int = 2,
        ingress_capacity: int = 8192,
        hang_after_s: Optional[float] = None,
        shed_watermark: float = 0.9,
        shed_retry_after_s: float = 0.2,
        history_keep: int = 3,
    ) -> None:
        if workers not in WORKER_MODES:
            raise ShardError(
                f"unknown worker mode {workers!r}; pick from {WORKER_MODES}"
            )
        self.registry = registry
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        if self.checkpoint_dir is not None:
            try:
                self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise ShardError(
                    f"cannot create checkpoint directory "
                    f"{str(self.checkpoint_dir)!r}: {exc}"
                ) from exc
        self.workers = workers
        self.checkpoint_every = checkpoint_every
        self.restart_limit = restart_limit
        self.ingress_capacity = ingress_capacity
        self.hang_after_s = hang_after_s
        self.shed_watermark = shed_watermark
        self.shed_retry_after_s = shed_retry_after_s
        self.history_keep = history_keep
        # Only the lifecycle methods (start/stop, caller-serialized by
        # contract) write this; the watchdog thread never does.
        self.watchdog: Optional[ShardWatchdog] = None  # reprolint: lockfree
        self._lock = sanitized_lock("serve.supervisor")
        self._shards: Dict[str, ShardLike] = {}
        self._route_locks: Dict[str, Any] = {}
        self._restarting: Set[str] = set()
        self._restarts: Dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        """Start one shard per registered deployment; returns self."""
        for deployment_id in self.registry.deployment_ids():
            self.start_deployment(deployment_id)
        if self.hang_after_s is not None and self.watchdog is None:
            self.watchdog = ShardWatchdog(
                self, hang_after_s=self.hang_after_s
            ).start()
        return self

    def start_deployment(
        self, deployment_id: str, restore_latest: bool = False
    ) -> ShardLike:
        """Start (or restart) one deployment's shard.

        ``restore_latest=True`` loads the deployment's newest durable
        checkpoint and resumes from it; a missing checkpoint file then
        raises :class:`~repro.errors.CheckpointError` rather than
        silently starting cold.
        """
        spec = self.registry.spec(deployment_id)
        with self._lock:
            existing = self._shards.get(deployment_id)
        if existing is not None and existing.state in ("starting", "live"):
            raise ShardError(
                f"deployment {deployment_id!r} already has a running shard"
            )
        restore: Optional[Mapping[str, Any]] = None
        if restore_latest:
            restore = self.recover_checkpoint(deployment_id)
            self.registry.note_checkpoint(deployment_id, checkpoint_id(restore))
        shard = self._build_shard(spec.deployment_id, restore)
        with self._lock:
            self._shards[deployment_id] = shard
            if deployment_id not in self._route_locks:
                self._route_locks[deployment_id] = sanitized_lock(
                    "serve.supervisor.route"
                )
        shard.start()
        return shard

    def _build_shard(
        self, deployment_id: str, restore: Optional[Mapping[str, Any]]
    ) -> ShardLike:
        spec = self.registry.spec(deployment_id)

        def on_state(state: str, error: Optional[str] = None) -> None:
            try:
                self.registry.set_state(deployment_id, state, error=error)
            except RegistryError:
                # A lost race on teardown (e.g. stop() after a crash
                # already recorded failed) must not kill the worker.
                obs.count(
                    "serve.registry.transition_conflicts",
                    labels={"deployment": deployment_id},
                )

        def on_checkpoint(identity: str) -> None:
            self.registry.note_checkpoint(deployment_id, identity)

        kwargs: Dict[str, Any] = {
            "spec": spec,
            "checkpoint_path": self.checkpoint_path(deployment_id),
            "checkpoint_every": self.checkpoint_every,
            "restore": restore,
            "on_state": on_state,
            "on_checkpoint": on_checkpoint,
        }
        kwargs["history_keep"] = self.history_keep
        if self.workers == "process":
            return ProcessShard(**kwargs)
        kwargs["ingress_capacity"] = self.ingress_capacity
        kwargs["shed_watermark"] = self.shed_watermark
        kwargs["shed_retry_after_s"] = self.shed_retry_after_s
        return DeploymentShard(**kwargs)

    def stop(self, drain: bool = True) -> None:
        """Stop every shard (draining by default)."""
        watchdog = self.watchdog
        if watchdog is not None:
            self.watchdog = None
            watchdog.stop()
        with self._lock:
            shards = dict(self._shards)
        for shard in shards.values():
            if shard.state in ("starting", "live"):
                shard.stop(drain=drain)

    # -- routing -----------------------------------------------------------

    def route(
        self, deployment_id: str, reads: Sequence[TagRead]
    ) -> Admission:
        """Deliver one batch to its deployment's shard.

        Returns the :class:`~repro.serve.shard.Admission` verdict
        (unpacks as the historical ``(accepted, dropped)`` pair; carries
        the load-shedding fields the ingest acks relay).  A failed
        shard is transparently restarted from its latest verifiable
        checkpoint first (within ``restart_limit``); an unknown
        deployment raises :class:`~repro.errors.RegistryError` so the
        ingest server can answer with a typed protocol error.
        """
        # Unknown ids fail here, before any shard lookup.
        self.registry.spec(deployment_id)
        shard = self._healthy_shard(deployment_id)
        with self._lock:
            route_lock = self._route_locks[deployment_id]
        with route_lock:
            return shard.route(reads)

    def _healthy_shard(self, deployment_id: str) -> ShardLike:
        with self._lock:
            shard = self._shards.get(deployment_id)
        if shard is None:
            raise ShardError(
                f"deployment {deployment_id!r} has no shard; "
                "supervisor not started?"
            )
        if shard.state != "failed":
            return shard
        return self.restart(deployment_id)

    # -- failover ----------------------------------------------------------

    def restart(self, deployment_id: str) -> ShardLike:
        """Restart a failed shard from its latest durable checkpoint.

        Exactly one caller performs the restart (a claim set arbitrates
        concurrent routes); the rest wait on the winner's result by
        retrying the lookup.
        """
        with self._lock:
            shard = self._shards.get(deployment_id)
            claimed = deployment_id not in self._restarting
            if claimed:
                self._restarting.add(deployment_id)
        if not claimed:
            # Another thread is restarting; the route lock downstream
            # serializes against the winner swapping the shard in.
            with self._lock:
                current = self._shards.get(deployment_id)
            if current is None:
                raise ShardError(
                    f"deployment {deployment_id!r} lost its shard mid-restart"
                )
            return current
        try:
            if shard is not None and shard.state != "failed":
                return shard
            with self._lock:
                used = self._restarts.get(deployment_id, 0)
            if used >= self.restart_limit:
                raise ShardError(
                    f"deployment {deployment_id!r} exhausted its "
                    f"{self.restart_limit} restarts "
                    f"(last failure: {None if shard is None else shard.failure})"
                )
            path = self.checkpoint_path(deployment_id)
            has_checkpoint = path is not None and bool(
                checkpoint_history_paths(path)
            )
            try:
                replacement = self.start_deployment(
                    deployment_id, restore_latest=has_checkpoint
                )
            except CheckpointError:
                # Every on-disk candidate failed verification (each is
                # quarantined by now).  Losing the stream state is
                # strictly better than losing the deployment: restart
                # cold and let the operator autopsy the specimens.
                obs.count(
                    "serve.checkpoint.recovery_failures",
                    labels={"deployment": deployment_id},
                )
                replacement = self.start_deployment(
                    deployment_id, restore_latest=False
                )
            with self._lock:
                self._restarts[deployment_id] = used + 1
            obs.count(
                "serve.shard.restarts", labels={"deployment": deployment_id}
            )
            return replacement
        finally:
            with self._lock:
                self._restarting.discard(deployment_id)

    def kill(self, deployment_id: str) -> None:
        """Crash one shard (chaos path: thread fault or real SIGKILL)."""
        shard = self.shard(deployment_id)
        shard.kill()
        shard.join()

    def stall(self, deployment_id: str, duration_s: float) -> None:
        """Hang one shard for ``duration_s`` (chaos path: wedge, not die).

        The shard stays ``live`` but stops making progress — exactly
        the failure the watchdog's liveness deadline exists to catch.
        """
        self.shard(deployment_id).stall(duration_s)

    # -- checkpoints -------------------------------------------------------

    def checkpoint_path(self, deployment_id: str) -> Optional[Path]:
        """Where one deployment's checkpoint lives (``None`` = disabled)."""
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / f"{deployment_id}.ckpt.json"

    def recover_checkpoint(self, deployment_id: str) -> Dict[str, Any]:
        """The newest *verifiable* checkpoint of one deployment.

        Walks the restore candidates newest-first — the "latest" file,
        then the rotated lineage ancestors — verifying each integrity
        digest.  A candidate that fails (truncated, bit-flipped, not
        JSON) is quarantined to a ``.corrupt`` sibling, never deleted,
        and the walk continues to its ancestor.  Raises
        :class:`~repro.errors.CheckpointError` when no candidate
        verifies (including the no-candidates case).
        """
        path = self.checkpoint_path(deployment_id)
        if path is None:
            raise CheckpointError(
                f"no checkpoint directory configured; cannot restore "
                f"{deployment_id!r}"
            )
        candidates = checkpoint_history_paths(path)
        failures = 0
        for candidate in candidates:
            try:
                state = load_checkpoint(candidate, verify=True)
            except CheckpointError:
                quarantine_checkpoint(candidate)
                failures += 1
                obs.count(
                    "serve.checkpoint.quarantined",
                    labels={"deployment": deployment_id},
                )
                continue
            if failures:
                obs.count(
                    "serve.checkpoint.lineage_recoveries",
                    labels={"deployment": deployment_id},
                )
            return state
        raise CheckpointError(
            f"no verifiable checkpoint for {deployment_id!r}: "
            f"{len(candidates)} candidate(s), {failures} quarantined"
        )

    def checkpoint(self, deployment_id: str) -> Optional[str]:
        """Force one shard's checkpoint now; returns its identity."""
        return self.shard(deployment_id).checkpoint_sync()

    def checkpoint_all(self) -> Dict[str, Optional[str]]:
        """Checkpoint every live shard; deployment id -> identity."""
        results: Dict[str, Optional[str]] = {}
        with self._lock:
            shards = dict(self._shards)
        for deployment_id, shard in sorted(shards.items()):
            if shard.state == "live":
                results[deployment_id] = shard.checkpoint_sync()
        return results

    # -- introspection -----------------------------------------------------

    def shard(self, deployment_id: str) -> ShardLike:
        """The current shard of one deployment."""
        with self._lock:
            shard = self._shards.get(deployment_id)
        if shard is None:
            raise ShardError(f"deployment {deployment_id!r} has no shard")
        return shard

    def rings(self) -> Dict[str, ProvenanceRing]:
        """Per-deployment provenance feeds (for the ops endpoint)."""
        with self._lock:
            return {
                deployment_id: shard.ring
                for deployment_id, shard in self._shards.items()
            }

    def fixes_emitted(self, deployment_id: Optional[str] = None) -> int:
        """Fix count of one deployment, or the whole fleet."""
        with self._lock:
            shards = dict(self._shards)
        if deployment_id is not None:
            shard = shards.get(deployment_id)
            return 0 if shard is None else shard.fixes_emitted
        return sum(shard.fixes_emitted for shard in shards.values())

    def health_document(self) -> Dict[str, Any]:
        """The fleet ``/healthz`` document (schema 2).

        Per-deployment nesting under ``deployments``; the fleet is
        ``ok`` only while every shard is live, ``degraded`` while any
        is starting/draining/restarting, and ``failed`` once any shard
        is failed or stopped unexpectedly.
        """
        registry_view = self.registry.snapshot()
        with self._lock:
            shards = dict(self._shards)
        deployments: Dict[str, Any] = {}
        worst = "ok"
        for deployment_id, entry in sorted(registry_view.items()):
            shard = shards.get(deployment_id)
            state = entry["state"]
            deployments[deployment_id] = {
                "state": state,
                "restarts": entry["restarts"],
                "last_error": entry["last_error"],
                "checkpoint_id": entry["checkpoint_id"],
                "readers": entry["readers"],
                "environment": entry["environment"],
                "fixes_emitted": (
                    0 if shard is None else shard.fixes_emitted
                ),
                "queue": (
                    {"offered": 0, "accepted": 0, "dropped": 0}
                    if shard is None
                    else shard.queue_stats()
                ),
            }
            if state == "failed":
                worst = "failed"
            elif state != "live" and worst != "failed":
                worst = "degraded"
        live = sum(1 for d in deployments.values() if d["state"] == "live")
        return {
            "schema": 2,
            "status": worst if deployments else "unknown",
            "deployments": deployments,
            "total": len(deployments),
            "live": live,
            "workers": self.workers,
        }

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
