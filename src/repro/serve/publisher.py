"""Client side of the ingest protocol: :class:`ReadPublisher`.

A publisher owns one TCP connection to an :class:`IngestServer`, dials
the handshake for its deployment, and ships :class:`TagRead` batches
as ``reads`` frames, awaiting the per-batch ack.  Transport faults
(reset, timeout, truncated ack) are retried with the same
:class:`~repro.stream.supervise.RetryPolicy` backoff the stream layer
uses for flaky readers — the attempt budget resets after every acked
batch, and on reconnect the *unacked* batch is resent (the shard
queue's event-time windows make the occasional duplicate harmless,
exactly as for replayed reader sources).  Protocol refusals from the
server (``unknown-deployment``, ``reader-mismatch``, ...) are not
retried: they are configuration bugs and re-raise as
:class:`~repro.errors.IngestProtocolError` with the server's code.

Per-batch round-trip times land in :attr:`ReadPublisher.rtts_ms` so
load generators can report an ingest latency distribution.
"""

from __future__ import annotations

import socket
import time
import zlib
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import (
    ConfigurationError,
    IngestProtocolError,
    SourceUnavailableError,
)
from repro.serve import protocol
from repro.stream.events import TagRead
from repro.stream.supervise import RetryPolicy
from repro.utils.rng import ensure_rng

#: Transport-level failures worth a reconnect (vs. protocol refusals).
#: ``not-accepting`` is included because it is what a publisher sees
#: while the server restarts a crashed/hung shard — transient by
#: design, permanent only once the restart budget is spent (at which
#: point the retries exhaust too and surface the server's message).
_RETRYABLE_CODES = ("truncated", "malformed", "not-accepting")

#: Publishers jitter their reconnect backoff by default: after a server
#: restart every publisher redials at once, and identical schedules
#: would re-synchronize those spikes forever (the thundering herd).
DEFAULT_PUBLISHER_POLICY = RetryPolicy(jitter=0.25)


class _BackpressureSignal(Exception):
    """Internal: the server shed the batch; pause and resend."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(f"backpressure, retry after {retry_after_s:g}s")
        self.retry_after_s = retry_after_s


class ReadPublisher:
    """Publish ``TagRead`` batches for one deployment over TCP.

    Parameters
    ----------
    host, port:
        The ingest server to dial.
    deployment:
        Deployment id announced in the handshake.
    readers:
        Reader roster announced in the handshake; must be a subset of
        the deployment's registered roster or the server refuses with
        ``reader-mismatch``.
    policy:
        Reconnect backoff schedule; attempts reset after each ack.
        The default carries 25 % jitter, seeded per deployment, so a
        fleet of publishers desynchronizes its redials after a server
        restart instead of stampeding in lockstep.
    timeout_s:
        Socket timeout for connect and every frame exchange.
    sleep:
        Injectable sleep (tests pass a no-op).
    max_backpressure_waits:
        How many consecutive ``backpressure`` acks the publisher will
        honor for one batch (sleeping the advertised ``retry_after_s``
        each time) before giving up with
        :class:`~repro.errors.SourceUnavailableError`.  Backpressure
        waits do not consume the reconnect budget — the connection is
        healthy, the shard is merely busy.
    jitter_seed:
        Override for the jitter stream's seed (defaults to a CRC of
        the deployment id, so each deployment draws a distinct but
        reproducible schedule).

    The publisher is single-threaded by contract — share nothing, or
    give each worker thread its own instance.
    """

    def __init__(
        self,
        host: str,
        port: int,
        deployment: str,
        readers: Sequence[str],
        policy: RetryPolicy = DEFAULT_PUBLISHER_POLICY,
        timeout_s: float = 10.0,
        sleep: Callable[[float], None] = time.sleep,
        max_backpressure_waits: int = 100,
        jitter_seed: Optional[int] = None,
    ) -> None:
        if not deployment:
            raise ConfigurationError("deployment id must be non-empty")
        self.host = host
        self.port = port
        self.deployment = deployment
        self.readers = tuple(readers)
        self.policy = policy
        self.timeout_s = timeout_s
        self.max_backpressure_waits = max_backpressure_waits
        self._sleep = sleep
        self._rng = ensure_rng(
            zlib.crc32(deployment.encode("utf-8"))
            if jitter_seed is None
            else jitter_seed
        )
        self._sock: Optional[socket.socket] = None
        self._rfile: Optional[Any] = None
        self._wfile: Optional[Any] = None
        self._seq = 0
        self.batches_acked = 0
        self.reads_accepted = 0
        self.reads_dropped = 0
        self.backpressure_waits = 0
        #: Round-trip time of every acked batch, milliseconds.
        self.rtts_ms: List[float] = []

    # -- connection management -------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> "ReadPublisher":
        """Dial the server and complete the handshake; returns self."""
        if self._sock is not None:
            return self
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        try:
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            hello = protocol.IngestHello(
                deployment=self.deployment, readers=self.readers
            )
            protocol.write_frame(wfile, hello.to_dict())
            reply = protocol.read_frame(rfile)
            if reply is None:
                raise IngestProtocolError(
                    "server closed the connection during handshake",
                    code="truncated",
                    deployment=self.deployment,
                )
            protocol.parse_ack(reply)
        except (OSError, ValueError, IngestProtocolError):
            sock.close()
            raise
        self._sock = sock
        self._rfile = rfile
        self._wfile = wfile
        return self

    def close(self, *, polite: bool = True) -> None:
        """Close the connection, optionally saying ``bye`` first."""
        sock = self._sock
        rfile, wfile = self._rfile, self._wfile
        self._sock = None
        self._rfile = None
        self._wfile = None
        if sock is None:
            return
        try:
            if polite and wfile is not None and rfile is not None:
                protocol.write_frame(wfile, protocol.bye_frame())
                protocol.read_frame(rfile)  # the done frame, best effort
        except (OSError, ValueError, IngestProtocolError):
            # A peer that is already gone cannot take a goodbye; the
            # close below still releases the socket either way.
            obs.count(
                "serve.publisher.close_errors",
                labels={"deployment": self.deployment},
            )
        finally:
            sock.close()

    def _reconnect(self, attempt: int) -> None:
        self.close(polite=False)
        self._sleep(self.policy.delay_for(attempt, rng=self._rng))
        obs.count(
            "serve.publisher.reconnects", labels={"deployment": self.deployment}
        )
        self.connect()

    # -- publishing ------------------------------------------------------

    def publish(
        self, reads: Sequence[TagRead], batch_size: int = 256
    ) -> Tuple[int, int]:
        """Ship ``reads`` in batches; returns ``(accepted, dropped)``.

        Transport failures reconnect with backoff and resend the
        unacked batch; after ``policy.max_retries`` consecutive
        failures the last error re-raises as
        :class:`~repro.errors.SourceUnavailableError`, mirroring
        :func:`~repro.stream.supervise.supervised_reads`.
        """
        if batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        try:
            self.connect()
        except IngestProtocolError as exc:
            # A transient refusal of the *first* dial (wire corruption
            # mangling the hello, a mid-restart shard) goes through the
            # same retry budget as a mid-stream failure; a permanent
            # refusal (reader-mismatch, unknown deployment) re-raises.
            if exc.code not in _RETRYABLE_CODES:
                raise
        except (OSError, ValueError):
            # The first batch's retry loop redials with backoff.
            obs.count(
                "serve.publisher.dial_failures",
                labels={"deployment": self.deployment},
            )
        accepted = 0
        dropped = 0
        for start in range(0, len(reads), batch_size):
            batch = reads[start : start + batch_size]
            got_a, got_d = self._publish_batch(batch)
            accepted += got_a
            dropped += got_d
        return accepted, dropped

    def _publish_batch(self, batch: Sequence[TagRead]) -> Tuple[int, int]:
        attempt = 0
        waits = 0
        while True:
            self._seq += 1
            try:
                return self._exchange(self._seq, batch)
            except _BackpressureSignal as signal:
                # The shard shed the batch: the connection is healthy,
                # so honor the advertised pause and resend the same
                # batch without burning a reconnect attempt.
                waits += 1
                if waits > self.max_backpressure_waits:
                    raise SourceUnavailableError(
                        f"publisher for {self.deployment!r} still shed "
                        f"after {waits - 1} backpressure waits"
                    ) from signal
                self.backpressure_waits += 1
                obs.count(
                    "serve.publisher.backpressure_waits",
                    labels={"deployment": self.deployment},
                )
                self._sleep(signal.retry_after_s)
                continue
            except IngestProtocolError as exc:
                if exc.code not in _RETRYABLE_CODES:
                    raise  # a server refusal, not a transport blip
                last_error: Exception = exc
            except (OSError, ValueError) as exc:
                last_error = exc
            if attempt >= self.policy.max_retries:
                raise SourceUnavailableError(
                    f"publisher for {self.deployment!r} gave up after "
                    f"{attempt + 1} attempts: {last_error}"
                ) from last_error
            try:
                self._reconnect(attempt)
            except IngestProtocolError as exc:
                # A partitioned or mid-restart server can refuse the
                # redial itself; a retryable refusal burns this attempt
                # (the next loop iteration fails fast on the missing
                # connection and backs off again), a permanent one
                # (e.g. reader-mismatch) re-raises.
                if exc.code not in _RETRYABLE_CODES:
                    raise
            except (OSError, ValueError):
                # Connect failed; the next iteration retries.
                obs.count(
                    "serve.publisher.dial_failures",
                    labels={"deployment": self.deployment},
                )
            attempt += 1

    def _exchange(
        self, seq: int, batch: Sequence[TagRead]
    ) -> Tuple[int, int]:
        if self._rfile is None or self._wfile is None:
            raise OSError("publisher is not connected")
        started = time.perf_counter()
        protocol.write_frame(self._wfile, protocol.reads_frame(seq, batch))
        reply = protocol.read_frame(self._rfile)
        if reply is None:
            raise IngestProtocolError(
                "server closed the connection before acking",
                code="truncated",
                deployment=self.deployment,
            )
        if reply.get("status") == "error":
            protocol.parse_ack(reply)  # raises with the server's code
        if reply.get("op") != "ack" or reply.get("seq") != seq:
            raise IngestProtocolError(
                f"expected ack for seq {seq}, got {reply!r}",
                code="malformed",
                deployment=self.deployment,
            )
        if reply.get("status") == "backpressure":
            raise _BackpressureSignal(
                max(0.0, float(reply.get("retry_after_s", 0.05)))
            )
        rtt_ms = (time.perf_counter() - started) * 1000.0
        self.rtts_ms.append(rtt_ms)
        obs.observe(
            "serve.publisher.rtt_ms",
            rtt_ms,
            labels={"deployment": self.deployment},
        )
        accepted = int(reply.get("accepted", 0))
        dropped = int(reply.get("dropped", 0))
        self.batches_acked += 1
        self.reads_accepted += accepted
        self.reads_dropped += dropped
        return accepted, dropped

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "ReadPublisher":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
