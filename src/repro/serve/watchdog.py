"""Hang detection for the serving fleet: :class:`ShardWatchdog`.

Crash detection is easy — a dead thread or a reaped pid flips the
shard's ``state`` to ``failed`` and the next :meth:`route` restarts
it.  The failure mode Nuzzer-scale deployments actually report is the
*hung* node: the thread is alive, the state says ``live``, and nothing
has moved in seconds.  The watchdog closes that gap by measuring each
shard's ``liveness_age()`` — seconds since the worker last completed a
loop pass (thread shards) or seconds the current pipe exchange has
gone unanswered (process shards) — against a hang deadline.

A shard past the deadline is *declared hung*: the watchdog counts
``serve.watchdog.hangs{deployment}``, kills the worker (the same
injected-crash path chaos drills use) and restarts it through the
supervisor's existing claim-set/restart-budget machinery, so a hang
consumes exactly one unit of the same ``restart_limit`` a crash would
and the restored runner's lineage chains through the checkpoint it
resumed from.  Crashed (``failed``) shards found during a scan are
restarted too — the watchdog makes recovery proactive instead of
waiting for the next routed batch to trip over the corpse.

The scan loop is a daemon thread owned by the supervisor
(:meth:`ShardSupervisor.start` / ``stop`` manage it); :meth:`scan_once`
is the deterministic seam the tests and drills drive directly.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, List, Optional

from repro import obs
from repro.errors import ShardError

if TYPE_CHECKING:
    from repro.serve.supervisor import ShardSupervisor


class ShardWatchdog:
    """Declare hung shards dead and restart them within budget.

    Parameters
    ----------
    supervisor:
        The fleet to watch; restarts go through its claim set.
    hang_after_s:
        Liveness deadline: a live shard whose ``liveness_age()``
        exceeds this is declared hung and recycled.
    poll_interval_s:
        How often the background loop scans the fleet.
    restart_crashed:
        Also restart shards already in ``failed`` state (proactive
        recovery instead of waiting for the next routed batch).
    """

    def __init__(
        self,
        supervisor: "ShardSupervisor",
        hang_after_s: float = 5.0,
        poll_interval_s: float = 0.25,
        restart_crashed: bool = True,
    ) -> None:
        if hang_after_s <= 0.0:
            raise ShardError(
                f"hang_after_s must be positive, got {hang_after_s!r}"
            )
        self.supervisor = supervisor
        self.hang_after_s = hang_after_s
        self.poll_interval_s = poll_interval_s
        self.restart_crashed = restart_crashed
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.scans = 0
        self.hangs_declared = 0
        self.restarts_triggered = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardWatchdog":
        """Spawn the background scan loop; returns self."""
        if self._thread is not None:
            raise ShardError("watchdog is already started")
        self._stop.clear()
        thread = threading.Thread(
            target=self._run,
            name="repro-shard-watchdog",
            daemon=True,
        )
        self._thread = thread
        thread.start()
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop and join the scan loop."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout_s)
        self._thread = None
        if thread.is_alive():
            raise ShardError(
                f"watchdog thread did not stop within {timeout_s:g}s"
            )

    def _run(self) -> None:
        while not self._stop.is_set():
            self.scan_once()
            self._stop.wait(timeout=self.poll_interval_s)

    # -- scanning ----------------------------------------------------------

    def scan_once(self) -> List[str]:
        """One fleet pass; returns the deployments it recycled.

        Deterministic seam for tests and drills: hung live shards are
        killed and restarted, already-failed shards are restarted when
        ``restart_crashed`` is set.  Restart refusals (budget
        exhausted, races) are counted, never raised — the watchdog must
        outlive any single shard's misfortune.
        """
        self.scans += 1
        obs.count("serve.watchdog.scans")
        recycled: List[str] = []
        for deployment_id in self.supervisor.registry.deployment_ids():
            try:
                shard = self.supervisor.shard(deployment_id)
            except ShardError:
                continue  # not started yet; nothing to watch
            state = shard.state
            if state == "live":
                age = shard.liveness_age()
                if age <= self.hang_after_s:
                    continue
                self.hangs_declared += 1
                obs.count(
                    "serve.watchdog.hangs",
                    labels={"deployment": deployment_id},
                )
                shard.kill()
                shard.join()
            elif not (self.restart_crashed and state == "failed"):
                continue
            if self._restart(deployment_id):
                recycled.append(deployment_id)
        return recycled

    def _restart(self, deployment_id: str) -> bool:
        try:
            self.supervisor.restart(deployment_id)
        except ShardError:
            obs.count(
                "serve.watchdog.restart_failures",
                labels={"deployment": deployment_id},
            )
            return False
        self.restarts_triggered += 1
        obs.count(
            "serve.watchdog.restarts",
            labels={"deployment": deployment_id},
        )
        return True

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "ShardWatchdog":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
