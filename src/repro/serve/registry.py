"""The deployment registry: which fleets exist and what state they're in.

A serving process hosts many *deployments* — independent monitored
areas, each with its own scene, reader roster, calibration seeds and
streaming knobs.  :class:`DeploymentSpec` pins everything needed to
rebuild one deployment's pipeline deterministically (the same
seed-offset conventions the CLI uses: ``seed + 1`` calibrates,
``seed + 2`` baselines, ``seed + 3`` drives the synthetic stream), and
:class:`DeploymentRegistry` maps deployment ids to specs plus their
live shard state.

The registry persists as one versioned JSON document (``kind``
``dwatch-registry``, schema 1) with exactly the header discipline of
streaming checkpoints: an unknown kind or schema, a duplicate id or a
malformed spec raises :class:`~repro.errors.RegistryError` instead of
silently serving the wrong fleet.

Shard states form a small lifecycle::

    starting --> live --> draining --> stopped
        \\          \\
         +-> failed  +-> failed --> starting   (restart from checkpoint)

Transitions outside :data:`_TRANSITIONS` raise — a supervisor bug
surfaces as a typed error, not a quietly inconsistent fleet.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro import obs
from repro.analysis.sanitizer import sanitized_lock
from repro.errors import ConfigurationError, RegistryError
from repro.obs import get_logger

#: Format marker so future revisions can migrate old registries.
REGISTRY_SCHEMA = 1

#: The ``kind`` tag distinguishing registries from other JSON files.
REGISTRY_KIND = "dwatch-registry"

#: The shard lifecycle states, in documentation order.
SHARD_STATES: Tuple[str, ...] = (
    "starting",
    "live",
    "draining",
    "stopped",
    "failed",
)

#: Environments a deployment spec may name (the TDM scenes whose
#: builders accept tag/antenna/reader overrides).
SERVE_ENVIRONMENTS: Tuple[str, ...] = ("library", "laboratory", "hall")

#: Legal state transitions (see the module docstring's lifecycle).
_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "starting": ("live", "failed", "stopped"),
    "live": ("draining", "failed", "stopped"),
    "draining": ("stopped", "failed"),
    "stopped": ("starting",),
    "failed": ("starting", "stopped"),
}

PathLike = Union[str, Path]


@dataclass(frozen=True)
class DeploymentSpec:
    """Everything needed to rebuild one deployment deterministically.

    Parameters
    ----------
    deployment_id:
        The fleet-unique id clients handshake with.
    environment:
        Scene family (one of :data:`SERVE_ENVIRONMENTS`).
    seed:
        Base RNG seed; calibration, baseline and synthetic streams
        derive from it with the repo-wide ``+1/+2/+3`` offsets.
    num_tags, num_antennas, num_readers:
        Scene-size overrides (the defaults are serving-sized, much
        smaller than the paper-scale scene defaults).
    cell_size:
        Likelihood grid cell; coarse by default — a serving fleet
        trades per-fix resolution for per-shard cost.
    decay, max_targets:
        Streaming knobs forwarded into the shard's ``StreamConfig``.
    description:
        Free-form operator note, persisted with the registry.
    """

    deployment_id: str
    environment: str = "hall"
    seed: int = 11
    num_tags: int = 6
    num_antennas: int = 4
    num_readers: int = 3
    cell_size: float = 0.25
    decay: float = 0.8
    max_targets: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not self.deployment_id:
            raise ConfigurationError("deployment_id must be non-empty")
        if self.environment not in SERVE_ENVIRONMENTS:
            raise ConfigurationError(
                f"unknown serve environment {self.environment!r}; "
                f"pick from {SERVE_ENVIRONMENTS}"
            )
        if not 1 <= self.num_readers <= 4:
            raise ConfigurationError(
                "num_readers must be in [1, 4] (wall-mounted rosters)"
            )

    @property
    def reader_names(self) -> Tuple[str, ...]:
        """The reader roster this deployment's scene will carry.

        Wall-mounted scenes name readers ``reader-0`` … ``reader-N-1``;
        pinning the roster here lets the ingest server validate a
        client's handshake without building the scene.
        """
        return tuple(f"reader-{i}" for i in range(self.num_readers))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "deployment_id": self.deployment_id,
            "environment": self.environment,
            "seed": self.seed,
            "num_tags": self.num_tags,
            "num_antennas": self.num_antennas,
            "num_readers": self.num_readers,
            "cell_size": self.cell_size,
            "decay": self.decay,
            "max_targets": self.max_targets,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "DeploymentSpec":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                deployment_id=str(record["deployment_id"]),
                environment=str(record.get("environment", "hall")),
                seed=int(record.get("seed", 11)),
                num_tags=int(record.get("num_tags", 6)),
                num_antennas=int(record.get("num_antennas", 4)),
                num_readers=int(record.get("num_readers", 3)),
                cell_size=float(record.get("cell_size", 0.25)),
                decay=float(record.get("decay", 0.8)),
                max_targets=int(record.get("max_targets", 1)),
                description=str(record.get("description", "")),
            )
        except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
            raise RegistryError(f"malformed deployment spec: {exc}") from exc


@dataclass
class _Entry:
    """One registered deployment (internal)."""

    spec: DeploymentSpec
    state: str = "stopped"
    restarts: int = 0
    last_error: Optional[str] = None
    checkpoint_id: Optional[str] = None


class DeploymentRegistry:
    """Thread-safe map of deployment ids to specs and shard state.

    The supervisor mutates states through :meth:`set_state`; the ingest
    server and ops routes only ever read snapshots, so serving a
    handshake can never wedge a state transition.
    """

    def __init__(self) -> None:
        self._lock = sanitized_lock("serve.registry")
        self._entries: Dict[str, _Entry] = {}

    def register(self, spec: DeploymentSpec) -> None:
        """Add one deployment; duplicates are a configuration bug."""
        with self._lock:
            if spec.deployment_id in self._entries:
                raise RegistryError(
                    f"deployment {spec.deployment_id!r} is already registered"
                )
            self._entries[spec.deployment_id] = _Entry(spec=spec)

    def spec(self, deployment_id: str) -> DeploymentSpec:
        """The spec of one deployment; unknown ids raise."""
        with self._lock:
            entry = self._entries.get(deployment_id)
        if entry is None:
            raise RegistryError(f"unknown deployment {deployment_id!r}")
        return entry.spec

    def __contains__(self, deployment_id: str) -> bool:
        with self._lock:
            return deployment_id in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def deployment_ids(self) -> List[str]:
        """All registered ids, sorted."""
        with self._lock:
            return sorted(self._entries)

    def state_of(self, deployment_id: str) -> str:
        """The current shard state of one deployment."""
        with self._lock:
            entry = self._entries.get(deployment_id)
        if entry is None:
            raise RegistryError(f"unknown deployment {deployment_id!r}")
        return entry.state

    def set_state(
        self,
        deployment_id: str,
        state: str,
        *,
        error: Optional[str] = None,
        checkpoint_id: Optional[str] = None,
    ) -> None:
        """Transition one deployment's shard state (validated).

        ``error`` records the failure reason on a ``failed``
        transition; ``checkpoint_id`` records which checkpoint a
        restart resumed from.  A ``failed -> starting`` transition
        counts as a restart.
        """
        if state not in SHARD_STATES:
            raise RegistryError(
                f"unknown shard state {state!r}; pick from {SHARD_STATES}"
            )
        with self._lock:
            entry = self._entries.get(deployment_id)
            if entry is None:
                raise RegistryError(f"unknown deployment {deployment_id!r}")
            if state not in _TRANSITIONS[entry.state]:
                raise RegistryError(
                    f"illegal shard transition {entry.state!r} -> {state!r} "
                    f"for deployment {deployment_id!r}"
                )
            if entry.state == "failed" and state == "starting":
                entry.restarts += 1
            entry.state = state
            if error is not None:
                entry.last_error = error
            if checkpoint_id is not None:
                entry.checkpoint_id = checkpoint_id

    def note_checkpoint(self, deployment_id: str, checkpoint_id: str) -> None:
        """Record the latest durable checkpoint of one deployment.

        Not a state transition — checkpoints land while a shard stays
        ``live`` — so this bypasses the transition table on purpose.
        """
        with self._lock:
            entry = self._entries.get(deployment_id)
            if entry is None:
                raise RegistryError(f"unknown deployment {deployment_id!r}")
            entry.checkpoint_id = checkpoint_id

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A consistent per-deployment view (for health documents)."""
        with self._lock:
            return {
                deployment_id: {
                    "state": entry.state,
                    "restarts": entry.restarts,
                    "last_error": entry.last_error,
                    "checkpoint_id": entry.checkpoint_id,
                    "readers": list(entry.spec.reader_names),
                    "environment": entry.spec.environment,
                }
                for deployment_id, entry in self._entries.items()
            }

    # -- persistence -------------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        """The registry as one versioned JSON document."""
        with self._lock:
            deployments = [
                {
                    "spec": entry.spec.to_dict(),
                    "state": entry.state,
                    "restarts": entry.restarts,
                    "last_error": entry.last_error,
                    "checkpoint_id": entry.checkpoint_id,
                }
                for _, entry in sorted(self._entries.items())
            ]
        return {
            "schema": REGISTRY_SCHEMA,
            "kind": REGISTRY_KIND,
            "deployments": deployments,
        }

    def save(self, path: PathLike) -> None:
        """Persist the registry document (states included)."""
        document = self.to_document()
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            raise RegistryError(
                f"cannot write registry {str(path)!r}: {exc}"
            ) from exc

    @classmethod
    def load(cls, path: PathLike) -> "DeploymentRegistry":
        """Rebuild a registry from a saved document.

        Persisted states collapse to the restart-safe ones: anything
        that was running when the document was written comes back as
        ``stopped`` (a fresh supervisor must explicitly start it), but
        ``failed`` survives so the restart counter's history stays
        meaningful.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise RegistryError(
                f"cannot open registry {str(path)!r}: {exc}"
            ) from exc
        except ValueError as exc:
            raise RegistryError(
                f"registry {str(path)!r} is not valid JSON "
                "(truncated or foreign file?)"
            ) from exc
        return cls.from_document(data, source=str(path))

    @classmethod
    def from_document(
        cls, data: Any, source: str = "<document>"
    ) -> "DeploymentRegistry":
        """Rebuild a registry from an already-parsed document."""
        if not isinstance(data, dict) or data.get("kind") != REGISTRY_KIND:
            raise RegistryError(
                f"registry {source!r}: not a {REGISTRY_KIND!r} document"
            )
        if data.get("schema") != REGISTRY_SCHEMA:
            raise RegistryError(
                f"registry {source!r}: unsupported schema "
                f"{data.get('schema')!r} (this build reads schema "
                f"{REGISTRY_SCHEMA})"
            )
        registry = cls()
        for record in data.get("deployments", []):
            if not isinstance(record, dict) or "spec" not in record:
                raise RegistryError(
                    f"registry {source!r}: malformed deployment record"
                )
            spec = DeploymentSpec.from_dict(record["spec"])
            registry.register(spec)
            state = str(record.get("state", "stopped"))
            unknown_state: Optional[str] = None
            if state not in SHARD_STATES:
                # Forward compatibility: a newer binary may have
                # persisted a state this build does not know.  Refusing
                # the whole registry would brick a rollback, so map it
                # to ``failed`` (the conservative "needs an operator"
                # bucket), warn, and keep the original string in
                # ``last_error`` for the autopsy.
                unknown_state = state
                get_logger(__name__).warning(
                    "registry %r: unknown shard state %r for %r; "
                    "treating as failed",
                    source,
                    state,
                    spec.deployment_id,
                )
                obs.count(
                    "serve.registry.unknown_states",
                    labels={"deployment": spec.deployment_id},
                )
                state = "failed"
            with registry._lock:
                entry = registry._entries[spec.deployment_id]
                entry.state = state if state == "failed" else "stopped"
                entry.restarts = int(record.get("restarts", 0))
                raw_error = record.get("last_error")
                if unknown_state is not None:
                    entry.last_error = (
                        f"loaded unknown shard state {unknown_state!r} "
                        f"(from a newer registry schema?)"
                    )
                else:
                    entry.last_error = (
                        None if raw_error is None else str(raw_error)
                    )
                raw_ckpt = record.get("checkpoint_id")
                entry.checkpoint_id = (
                    None if raw_ckpt is None else str(raw_ckpt)
                )
        return registry


def default_fleet(
    count: int,
    environment: str = "hall",
    seed: int = 11,
    num_tags: int = 6,
    num_antennas: int = 4,
) -> List[DeploymentSpec]:
    """A deterministic fleet of ``count`` small deployments.

    Shared by ``repro serve`` and ``scripts/loadgen.py`` so both build
    byte-identical fleets from the same arguments.  Deployments cycle
    their reader counts through 2..4 (so rosters differ between
    neighbouring shards — cross-shard leakage of a fix's provenance is
    detectable, not vacuously absent) and derive distinct seeds (hence
    distinct EPC populations) from the base seed.
    """
    if count < 1:
        raise ConfigurationError("a fleet needs at least one deployment")
    return [
        DeploymentSpec(
            deployment_id=f"dep-{index:02d}",
            environment=environment,
            seed=seed + 97 * index,
            num_tags=num_tags,
            num_antennas=num_antennas,
            num_readers=2 + index % 3,
            description=f"default fleet member {index}",
        )
        for index in range(count)
    ]
