"""The network ingest endpoint: ``dwatch-ingest`` frames over TCP.

:class:`IngestServer` accepts publisher connections, validates their
handshake against the deployment registry (protocol version, known
deployment id, reader roster ⊆ the deployment's roster) and then
routes every reads batch through the supervisor to the right shard,
acking each batch with the shard queue's admission verdict.

Failure discipline, per the protocol contract:

* Every violation gets a **typed error ack** before the connection
  closes — ``version-mismatch``, ``unknown-deployment``,
  ``reader-mismatch``, ``malformed``, ``truncated``, ``oversized``,
  ``not-accepting`` — so a misconfigured publisher learns *why* in a
  machine-readable code instead of staring at a reset.
* Every socket carries a hard timeout; a stalled or malicious peer
  costs one handler thread for ``timeout_s``, never a hang.
* A crashed handler never takes the server down
  (:class:`ThreadingTCPServer` with daemon handler threads), and the
  ``serve.ingest.errors{code}`` counter makes refused handshakes
  visible on ``/metrics``.

Start/stop mirrors :class:`~repro.obs.server.OpsServer`: the bind
happens outside the state lock, serving runs on a named daemon thread,
and ``stop()`` joins it.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Optional, Tuple

from repro import obs
from repro.analysis.sanitizer import sanitized_lock
from repro.errors import (
    ConfigurationError,
    IngestProtocolError,
    RegistryError,
    ShardError,
)
from repro.serve import protocol
from repro.serve.supervisor import ShardSupervisor

#: Default per-socket timeout; every blocking read obeys it.
DEFAULT_TIMEOUT_S = 10.0


class _IngestHandler(socketserver.StreamRequestHandler):
    """One publisher connection; all shared state lives on ``server``."""

    server: "_IngestTCPServer"

    def handle(self) -> None:
        self.connection.settimeout(self.server.ingest.timeout_s)
        deployment: Optional[str] = None
        try:
            deployment = self._handshake()
            if deployment is None:
                return
            self._pump(deployment)
        except IngestProtocolError as exc:
            self._refuse(exc.code, str(exc), deployment)
        except (OSError, ValueError):
            # Timeout, reset or a peer that vanished mid-frame: the
            # connection is beyond acking — just account for it.
            obs.count("serve.ingest.errors", labels={"code": "connection"})

    def _handshake(self) -> Optional[str]:
        frame = protocol.read_frame(self.rfile)
        if frame is None:  # connected and left without a word
            return None
        hello = protocol.parse_hello(frame)
        supervisor = self.server.ingest.supervisor
        try:
            spec = supervisor.registry.spec(hello.deployment)
        except RegistryError as exc:
            raise IngestProtocolError(
                str(exc), code="unknown-deployment", deployment=hello.deployment
            ) from exc
        roster = set(spec.reader_names)
        foreign = sorted(set(hello.readers) - roster)
        if foreign:
            raise IngestProtocolError(
                f"readers {foreign} are not part of deployment "
                f"{hello.deployment!r} (roster: {sorted(roster)})",
                code="reader-mismatch",
                deployment=hello.deployment,
            )
        protocol.write_frame(
            self.wfile, protocol.ack_frame(deployment=hello.deployment)
        )
        obs.count(
            "serve.ingest.sessions", labels={"deployment": hello.deployment}
        )
        return hello.deployment

    def _pump(self, deployment: str) -> None:
        supervisor = self.server.ingest.supervisor
        while True:
            frame = protocol.read_frame(self.rfile)
            if frame is None:  # clean EOF at a frame boundary
                return
            op = frame.get("op")
            if op == "reads":
                seq, reads = protocol.parse_reads(frame)
                try:
                    verdict = supervisor.route(deployment, reads)
                except (ShardError, RegistryError) as exc:
                    raise IngestProtocolError(
                        f"deployment is not accepting reads: {exc}",
                        code="not-accepting",
                        deployment=deployment,
                    ) from exc
                obs.count(
                    "serve.ingest.reads",
                    float(len(reads)),
                    labels={"deployment": deployment},
                )
                if verdict.shed:
                    obs.count(
                        "serve.ingest.backpressure",
                        labels={"deployment": deployment},
                    )
                    ack = protocol.batch_ack_frame(
                        seq,
                        verdict.accepted,
                        verdict.dropped,
                        status="backpressure",
                        retry_after_s=verdict.retry_after_s,
                    )
                else:
                    ack = protocol.batch_ack_frame(
                        seq, verdict.accepted, verdict.dropped
                    )
                protocol.write_frame(self.wfile, ack)
            elif op == "bye":
                protocol.write_frame(self.wfile, protocol.done_frame())
                return
            else:
                raise IngestProtocolError(
                    f"unknown op {op!r}", code="malformed", deployment=deployment
                )

    def _refuse(
        self, code: str, error: str, deployment: Optional[str]
    ) -> None:
        obs.count("serve.ingest.errors", labels={"code": code})
        try:
            protocol.write_frame(
                self.wfile,
                protocol.ack_frame(
                    "error", deployment=deployment, code=code, error=error
                ),
            )
        except (OSError, ValueError):
            return  # peer is gone; the counter already recorded the refusal


class _IngestTCPServer(socketserver.ThreadingTCPServer):
    """ThreadingTCPServer carrying a back-reference to the IngestServer."""

    daemon_threads = True
    allow_reuse_address = True
    ingest: "IngestServer"


class IngestServer:
    """Bind, accept publishers, route their reads to shards.

    Parameters
    ----------
    supervisor:
        The shard fleet handshakes are validated against and reads are
        routed through.
    port:
        TCP port; ``0`` picks an ephemeral one (read :attr:`port`
        after :meth:`start`).
    host:
        Bind address; loopback by default.
    timeout_s:
        Per-socket timeout applied to every publisher connection.
    """

    def __init__(
        self,
        supervisor: ShardSupervisor,
        port: int = 0,
        host: str = "127.0.0.1",
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        if not 0 <= port <= 65535:
            raise ConfigurationError(
                f"ingest server port must be in [0, 65535], got {port}"
            )
        self.supervisor = supervisor
        self.host = host
        self.requested_port = port
        self.timeout_s = timeout_s
        self._state_lock = sanitized_lock("serve.ingest.state")
        self._starting = False
        self._server: Optional[_IngestTCPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The actually bound port (resolves a requested port of 0)."""
        with self._state_lock:
            server = self._server
        if server is None:
            return self.requested_port
        return int(server.server_address[1])

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` publishers should dial."""
        return self.host, self.port

    def start(self) -> "IngestServer":
        """Bind and accept from a daemon thread; returns self."""
        with self._state_lock:
            if self._server is not None or self._starting:
                raise ConfigurationError("ingest server is already running")
            self._starting = True
        try:
            server = _IngestTCPServer(
                (self.host, self.requested_port), _IngestHandler
            )
        except OSError as exc:
            with self._state_lock:
                self._starting = False
            raise ConfigurationError(
                f"cannot bind ingest server on "
                f"{self.host}:{self.requested_port}: {exc}"
            ) from exc
        server.ingest = self
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-ingest-server",
            daemon=True,
        )
        with self._state_lock:
            self._server = server
            self._thread = thread
            self._starting = False
        thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and join the accept thread."""
        with self._state_lock:
            server = self._server
            thread = self._thread
            self._server = None
            self._thread = None
        if server is None:
            return
        server.shutdown()
        server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "IngestServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
