"""The versioned ``dwatch-ingest`` wire protocol: framing + handshake.

Deployments feed their :class:`~repro.stream.events.TagRead` streams to
a central :class:`~repro.serve.server.IngestServer` over TCP.  The wire
format is **length-delimited JSONL**: every message is one JSON object
on one line, prefixed by the decimal byte length of the JSON payload::

    <length> <json>\\n

The explicit length makes truncation *detectable* — a crashed writer
leaves a prefix whose length promise the bytes cannot keep, which
raises a typed :class:`~repro.errors.IngestProtocolError` instead of a
hang or a bare ``JSONDecodeError`` (the same crash-artefact discipline
the record/replay format follows, upgraded for a network transport
where "wait for more bytes" and "the sender died" are otherwise
indistinguishable).

The conversation, modeled on the record/replay header:

* **Hello** (client -> server, first frame) — ``{"kind":
  "dwatch-ingest", "schema": 1, "deployment": <id>, "readers":
  [<names>]}``.  Protocol version, deployment id and the deployment's
  reader roster; the server validates all three against its registry
  before any read is accepted.
* **Ack** (server -> client) — ``{"kind": "dwatch-ingest-ack",
  "schema": 1, "status": "ok" | "error", "code": ..., "error": ...}``.
  Error codes are stable strings (:data:`ERROR_CODES`) so clients can
  branch without parsing prose.
* **Reads** (client -> server) — ``{"op": "reads", "seq": n, "reads":
  [[t, reader, epc, re, im], ...]}``, answered by an ``{"op": "ack",
  "seq": n, "accepted": a, "dropped": d}`` frame that carries the
  shard queue's admission verdict back to the producer.
* **Bye** (client -> server) — ``{"op": "bye"}``, answered with
  ``{"op": "done"}`` before the server closes the connection.

Every parse failure raises :class:`IngestProtocolError` with a stable
``code``; nothing in this module blocks without the caller-provided
socket timeout, so a malformed or malicious peer costs a timeout, never
a hang.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, BinaryIO, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import IngestProtocolError
from repro.stream.events import TagRead

#: Protocol revision; a mismatch is refused at handshake, never guessed.
PROTOCOL_SCHEMA = 1

#: The ``kind`` tag of the client hello (same discipline as recordings).
PROTOCOL_KIND = "dwatch-ingest"

#: The ``kind`` tag of the server's handshake reply.
ACK_KIND = "dwatch-ingest-ack"

#: Stable machine-readable diagnostic codes carried by error acks and
#: :class:`~repro.errors.IngestProtocolError`.
ERROR_CODES: Tuple[str, ...] = (
    "malformed",
    "oversized",
    "truncated",
    "version-mismatch",
    "unknown-deployment",
    "reader-mismatch",
    "not-accepting",
)

#: Upper bound on one frame's JSON payload.  A single TDM sweep batch
#: is a few KiB; anything near this bound is a protocol violation (or
#: an attack), not a workload.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Longest run of digits a length prefix may be (covers MAX_FRAME_BYTES).
_MAX_PREFIX_DIGITS = 9


# -- framing ---------------------------------------------------------------


def encode_frame(message: Mapping[str, Any]) -> bytes:
    """One length-delimited wire frame for ``message``."""
    payload = json.dumps(dict(message), sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise IngestProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound",
            code="oversized",
        )
    return str(len(payload)).encode("ascii") + b" " + payload + b"\n"


def read_frame(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises
    ------
    IngestProtocolError
        With code ``truncated`` when the stream ends mid-frame (length
        prefix promised more bytes than arrived), ``oversized`` when
        the prefix exceeds :data:`MAX_FRAME_BYTES`, and ``malformed``
        for a non-numeric prefix or a payload that is not a JSON
        object.
    """
    prefix = bytearray()
    while True:
        byte = stream.read(1)
        if not byte:
            if not prefix:
                return None
            raise IngestProtocolError(
                "stream ended inside a frame length prefix",
                code="truncated",
            )
        if byte == b" ":
            break
        if not byte.isdigit() or len(prefix) >= _MAX_PREFIX_DIGITS:
            raise IngestProtocolError(
                f"invalid frame length prefix {bytes(prefix + byte)!r}",
                code="malformed",
            )
        prefix += byte
    if not prefix:
        raise IngestProtocolError("empty frame length prefix", code="malformed")
    length = int(prefix.decode("ascii"))
    if length > MAX_FRAME_BYTES:
        raise IngestProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound",
            code="oversized",
        )
    payload = bytearray()
    while len(payload) < length:
        chunk = stream.read(length - len(payload))
        if not chunk:
            raise IngestProtocolError(
                f"frame truncated: length prefix promised {length} bytes, "
                f"got {len(payload)}",
                code="truncated",
            )
        payload += chunk
    newline = stream.read(1)
    if newline not in (b"\n", b""):
        raise IngestProtocolError(
            f"frame not newline-terminated (found {newline!r})",
            code="malformed",
        )
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise IngestProtocolError(
            f"frame payload is not valid JSON: {exc}", code="malformed"
        ) from exc
    if not isinstance(message, dict):
        raise IngestProtocolError(
            "frame payload is not a JSON object", code="malformed"
        )
    return message


def write_frame(stream: BinaryIO, message: Mapping[str, Any]) -> None:
    """Encode and write one frame, flushing so the peer can react."""
    stream.write(encode_frame(message))
    stream.flush()


# -- handshake -------------------------------------------------------------


@dataclass(frozen=True)
class IngestHello:
    """The client's opening frame: who is publishing, speaking what."""

    deployment: str
    readers: Tuple[str, ...] = ()
    schema: int = PROTOCOL_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        """The JSON object sent as the first frame."""
        return {
            "kind": PROTOCOL_KIND,
            "schema": self.schema,
            "deployment": self.deployment,
            "readers": list(self.readers),
        }


def parse_hello(message: Mapping[str, Any]) -> IngestHello:
    """Validate a hello frame; typed diagnostics for every failure mode."""
    if message.get("kind") != PROTOCOL_KIND:
        raise IngestProtocolError(
            f"handshake is not a {PROTOCOL_KIND!r} hello "
            f"(kind={message.get('kind')!r})",
            code="malformed",
        )
    schema = message.get("schema")
    if schema != PROTOCOL_SCHEMA:
        raise IngestProtocolError(
            f"unsupported ingest protocol schema {schema!r} "
            f"(this build speaks schema {PROTOCOL_SCHEMA})",
            code="version-mismatch",
        )
    deployment = message.get("deployment")
    if not isinstance(deployment, str) or not deployment:
        raise IngestProtocolError(
            "hello carries no deployment id", code="malformed"
        )
    raw_readers = message.get("readers", [])
    if not isinstance(raw_readers, list):
        raise IngestProtocolError(
            "hello 'readers' must be a list of reader names",
            code="malformed",
            deployment=deployment,
        )
    return IngestHello(
        deployment=deployment,
        readers=tuple(str(name) for name in raw_readers),
        schema=int(schema),
    )


def ack_frame(
    status: str = "ok",
    *,
    deployment: Optional[str] = None,
    code: Optional[str] = None,
    error: Optional[str] = None,
) -> Dict[str, Any]:
    """The server's handshake reply frame."""
    message: Dict[str, Any] = {
        "kind": ACK_KIND,
        "schema": PROTOCOL_SCHEMA,
        "status": status,
    }
    if deployment is not None:
        message["deployment"] = deployment
    if code is not None:
        message["code"] = code
    if error is not None:
        message["error"] = error
    return message


def parse_ack(message: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a handshake ack; raise the server's diagnostic as typed.

    An error ack re-raises as :class:`IngestProtocolError` carrying the
    server's stable ``code``, so the client sees the same typed
    exception whether the violation was detected locally or remotely.
    """
    if message.get("kind") != ACK_KIND:
        raise IngestProtocolError(
            f"expected a {ACK_KIND!r} handshake reply, got "
            f"kind={message.get('kind')!r}",
            code="malformed",
        )
    if message.get("status") != "ok":
        raise IngestProtocolError(
            f"server refused the handshake: {message.get('error', 'unknown')}",
            code=str(message.get("code", "malformed")),
            deployment=(
                str(message["deployment"])
                if message.get("deployment") is not None
                else None
            ),
        )
    return dict(message)


# -- read batches ----------------------------------------------------------


def encode_read(read: TagRead) -> List[Any]:
    """One read as its compact wire tuple ``[t, reader, epc, re, im]``."""
    value = complex(read.iq)
    return [read.time_s, read.reader_name, read.epc, value.real, value.imag]


def decode_read(record: Sequence[Any]) -> TagRead:
    """Inverse of :func:`encode_read`."""
    try:
        return TagRead(
            time_s=float(record[0]),
            reader_name=str(record[1]),
            epc=str(record[2]),
            iq=complex(float(record[3]), float(record[4])),
        )
    except (IndexError, TypeError, ValueError) as exc:
        raise IngestProtocolError(
            f"malformed wire read {record!r}: {exc}", code="malformed"
        ) from exc


def reads_frame(seq: int, reads: Sequence[TagRead]) -> Dict[str, Any]:
    """A batch frame carrying ``reads`` with sequence number ``seq``."""
    return {
        "op": "reads",
        "seq": seq,
        "reads": [encode_read(read) for read in reads],
    }


def parse_reads(message: Mapping[str, Any]) -> Tuple[int, List[TagRead]]:
    """Decode a batch frame into ``(seq, reads)``."""
    raw = message.get("reads")
    if not isinstance(raw, list):
        raise IngestProtocolError(
            "reads frame carries no 'reads' list", code="malformed"
        )
    try:
        seq = int(message.get("seq", -1))
    except (TypeError, ValueError) as exc:
        raise IngestProtocolError(
            f"reads frame seq is not an integer: {message.get('seq')!r}",
            code="malformed",
        ) from exc
    return seq, [decode_read(record) for record in raw]


def batch_ack_frame(
    seq: int,
    accepted: int,
    dropped: int,
    *,
    status: str = "ok",
    retry_after_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Per-batch admission verdict returned to the publisher.

    ``status="backpressure"`` marks a batch refused by admission
    control (the shard's ingress backlog crossed its shed watermark);
    ``retry_after_s`` then advises how long to pause before resending
    the *same* batch.  Backward compatible by construction: an ``ok``
    ack is byte-identical to the schema-1 ack, and an old client that
    ignores the extra keys still accounts the batch correctly because a
    backpressure ack reports ``accepted=0``.
    """
    message: Dict[str, Any] = {
        "op": "ack",
        "seq": seq,
        "accepted": accepted,
        "dropped": dropped,
    }
    if status != "ok":
        message["status"] = status
        if retry_after_s is not None:
            message["retry_after_s"] = retry_after_s
    return message


def bye_frame() -> Dict[str, Any]:
    """The clean end-of-stream frame."""
    return {"op": "bye"}


def done_frame() -> Dict[str, Any]:
    """The server's reply to ``bye`` before closing the connection."""
    return {"op": "done"}
