"""The process-mode shard worker: ``python -m repro.serve.worker``.

A :class:`~repro.serve.shard.ProcessShard` parent speaks to this child
over stdin/stdout using the same length-delimited frames as the
network ingest protocol (:mod:`repro.serve.protocol`).  The
conversation:

* ``{"op": "job", "spec": ..., "checkpoint_path": ..., "checkpoint_every":
  n, "restore": ...}`` — build the deployment's pipeline (restoring the
  given checkpoint document when present); answered with ``{"op":
  "ready"}`` or a terminal ``{"op": "fatal", "error": ...}``.
* ``{"op": "reads", "seq": n, "reads": [...]}`` — ingest one batch,
  poll the runner, answer ``{"op": "ack", "seq": n, "accepted": a,
  "dropped": d, "fixes": [fix records]}``.
* ``{"op": "checkpoint"}`` — persist a checkpoint atomically, answer
  ``{"op": "checkpointed", "checkpoint_id": ...}``.
* ``{"op": "bye", "drain": bool}`` — optionally flush pending windows
  and write a final checkpoint, answer ``{"op": "done", "fixes":
  [...]}`` and exit 0.

stdout carries frames *only* — anything else would corrupt the stream,
which is why the pipeline build happens after the job frame arrives and
all diagnostics ride the ``fatal`` frame instead of prints.  Killing
this process with SIGKILL mid-stream is the supported crash case: the
parent restores the last checkpoint into a fresh worker and the fix
stream continues bit-identically (pinned by the hand-off tests).
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.serve import protocol
from repro.serve.registry import DeploymentSpec
from repro.serve.shard import build_runner, write_checkpoint_file
from repro.stream.provenance import fix_record
from repro.stream.runner import StreamRunner


def _serve(stdin: Any, stdout: Any) -> int:
    job = protocol.read_frame(stdin)
    if job is None or job.get("op") != "job":
        protocol.write_frame(
            stdout, {"op": "fatal", "error": f"expected a job frame, got {job!r}"}
        )
        return 2
    try:
        spec = DeploymentSpec.from_dict(job["spec"])
        runner: StreamRunner = build_runner(spec, restore=job.get("restore"))
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        protocol.write_frame(stdout, {"op": "fatal", "error": str(exc)})
        return 2
    checkpoint_path: Optional[str] = job.get("checkpoint_path")
    checkpoint_every = int(job.get("checkpoint_every", 0))
    history_keep = int(job.get("history_keep", 0))
    unflushed = 0
    protocol.write_frame(
        stdout, {"op": "ready", "deployment": spec.deployment_id}
    )
    while True:
        frame = protocol.read_frame(stdin)
        if frame is None:
            # Parent vanished without a bye; nothing to flush safely.
            return 1
        op = frame.get("op")
        if op == "reads":
            _, reads = protocol.parse_reads(frame)
            accepted = runner.queue.put_many(reads)
            fixes = runner.poll()
            records = [fix_record(fix) for fix in fixes]
            unflushed += len(records)
            if (
                checkpoint_path is not None
                and checkpoint_every > 0
                and unflushed >= checkpoint_every
            ):
                write_checkpoint_file(
                    checkpoint_path,
                    runner.checkpoint(),
                    history_keep=history_keep,
                )
                unflushed = 0
            protocol.write_frame(
                stdout,
                {
                    "op": "ack",
                    "seq": frame.get("seq"),
                    "accepted": accepted,
                    "dropped": len(reads) - accepted,
                    "fixes": records,
                },
            )
        elif op == "checkpoint":
            if checkpoint_path is None:
                protocol.write_frame(
                    stdout,
                    {"op": "fatal", "error": "no checkpoint path configured"},
                )
                return 2
            identity = write_checkpoint_file(
                checkpoint_path,
                runner.checkpoint(),
                history_keep=history_keep,
            )
            unflushed = 0
            protocol.write_frame(
                stdout, {"op": "checkpointed", "checkpoint_id": identity}
            )
        elif op == "bye":
            records: List[Dict[str, Any]] = []
            if frame.get("drain", True):
                records = [fix_record(fix) for fix in runner.finish()]
                if checkpoint_path is not None:
                    write_checkpoint_file(
                        checkpoint_path,
                        runner.checkpoint(),
                        history_keep=history_keep,
                    )
            protocol.write_frame(stdout, {"op": "done", "fixes": records})
            return 0
        else:
            protocol.write_frame(
                stdout, {"op": "fatal", "error": f"unknown op {op!r}"}
            )
            return 2


def main() -> int:
    """Child entry point: frames in on stdin, frames out on stdout."""
    return _serve(sys.stdin.buffer, sys.stdout.buffer)


if __name__ == "__main__":  # pragma: no cover - exercised via ProcessShard
    sys.exit(main())
