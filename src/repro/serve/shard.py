"""Deployment shards: one streaming pipeline per monitored area.

A *shard* owns everything one deployment needs — the deterministic
scene rebuild, the calibrated :class:`~repro.core.pipeline.DWatch`, a
:class:`~repro.stream.runner.StreamRunner` and a deployment-labeled
ingress queue — behind a small uniform surface the supervisor drives:

``route(reads)``
    Admit a batch into the shard's bounded ingress queue (the
    backpressure point network ingest presses against); returns the
    ``(accepted, dropped)`` admission verdict the ingest protocol acks
    back to the publisher.
``checkpoint_sync()``
    Force a checkpoint *now* and block until it is durably on disk —
    the deterministic seam kill/restore tests and drains stand on.
``stop(drain=True)`` / ``kill()``
    Orderly drain-and-checkpoint shutdown, or an injected crash (the
    chaos path restarts exercise).

Two implementations share that surface:

* :class:`DeploymentShard` — the default: a daemon worker **thread**
  pulls the ingress queue, polls the runner and periodically
  checkpoints.  All mutable cross-thread state sits behind one
  ``sanitized_lock``; file and queue I/O happen outside it.
* :class:`ProcessShard` — the worker is a **subprocess**
  (``python -m repro.serve.worker``) spoken to over the same
  length-delimited frames as the network protocol.  Crashing it is a
  real ``SIGKILL``, which is what makes the cross-process checkpoint
  hand-off test honest.

Fixes are delivered three ways, all equivalent: pushed into the
shard's :class:`~repro.stream.provenance.ProvenanceRing` (the ops
feed), appended to :meth:`fix_records` (the programmatic feed), and
counted on the ``serve.fixes{deployment}`` metric.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro import obs
from repro.analysis.sanitizer import sanitized_lock
from repro.errors import CheckpointError, IngestProtocolError, ShardError
from repro.serve import protocol
from repro.serve.registry import DeploymentSpec
from repro.stream.checkpoint import (
    checkpoint_history_dir,
    checkpoint_id,
    durable_write_json,
    seal_state,
)
from repro.stream.events import TagRead
from repro.stream.provenance import ProvenanceRing, fix_record
from repro.stream.queue import BoundedReadQueue
from repro.stream.runner import StreamConfig, StreamRunner

#: Callback the supervisor wires to its registry: (state, error, ckpt).
StateCallback = Callable[..., None]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class Admission:
    """A shard's verdict on one routed batch.

    Unpacks as the historical ``(accepted, dropped)`` pair, so every
    existing ``accepted, dropped = shard.route(...)`` caller keeps
    working; the new fields carry the load-shedding story the ingest
    protocol acks back to publishers.
    """

    accepted: int
    dropped: int
    #: True when the batch was refused wholesale by admission control
    #: (ingress backlog over the shed watermark) rather than admitted.
    shed: bool = False
    #: Advisory publisher pause, seconds, when ``shed`` is set.
    retry_after_s: Optional[float] = None

    def __iter__(self) -> Iterator[int]:
        yield self.accepted
        yield self.dropped


def build_runner(
    spec: DeploymentSpec,
    restore: Optional[Mapping[str, Any]] = None,
) -> StreamRunner:
    """Deterministically rebuild one deployment's streaming pipeline.

    Follows the repo-wide seed-offset convention (``seed + 1``
    calibrates, ``seed + 2`` baselines) so the same spec always yields
    the same calibrated pipeline — which is what lets a checkpoint from
    a dead shard restore into a freshly built one: the fingerprint
    (readers, window, decay) is a pure function of the spec.
    """
    from repro.core.pipeline import DWatch
    from repro.sim.environments import hall_scene, laboratory_scene, library_scene
    from repro.sim.measurement import MeasurementSession

    makers = {
        "library": library_scene,
        "laboratory": laboratory_scene,
        "hall": hall_scene,
    }
    scene = makers[spec.environment](
        rng=spec.seed,
        num_tags=spec.num_tags,
        num_antennas=spec.num_antennas,
        num_readers=spec.num_readers,
    )
    dwatch = DWatch(scene, cell_size=spec.cell_size)
    dwatch.calibrate(rng=spec.seed + 1)
    session = MeasurementSession(scene, rng=spec.seed + 2)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    runner = StreamRunner(
        dwatch,
        StreamConfig(
            decay=spec.decay,
            max_targets=spec.max_targets,
            deployment_id=spec.deployment_id,
        ),
    )
    if restore is not None:
        runner.restore(restore)
    return runner


def rotate_checkpoint_history(path: PathLike, history_keep: int) -> None:
    """Move the current "latest" checkpoint into its lineage history.

    Ancestors live under ``<path>.history/<seq>.json`` with the highest
    sequence number the most recent; the supervisor walks them
    newest-first when the latest file fails verification.  At most
    ``history_keep`` ancestors are retained — quarantined ``.corrupt``
    specimens are never pruned.
    """
    target = Path(path)
    if history_keep <= 0 or not target.exists():
        return
    history = checkpoint_history_dir(target)
    try:
        history.mkdir(parents=True, exist_ok=True)
        known = sorted(
            entry
            for entry in history.glob("*.json")
            if entry.stem.isdigit()
        )
        next_seq = int(known[-1].stem) + 1 if known else 0
        os.replace(target, history / f"{next_seq:08d}.json")
        known = sorted(
            entry
            for entry in history.glob("*.json")
            if entry.stem.isdigit()
        )
        for stale in known[: max(0, len(known) - history_keep)]:
            stale.unlink()
    except OSError as exc:
        raise ShardError(
            f"cannot rotate checkpoint history for {str(target)!r}: {exc}"
        ) from exc


def checkpoint_history_paths(path: PathLike) -> List[Path]:
    """Restore candidates for a deployment, newest first.

    The "latest" file leads, followed by the rotated ancestors in
    reverse sequence order.  Missing entries are simply absent — the
    caller tries each in turn and quarantines the ones that fail.
    """
    target = Path(path)
    candidates: List[Path] = []
    if target.exists():
        candidates.append(target)
    history = checkpoint_history_dir(target)
    if history.is_dir():
        candidates.extend(
            sorted(
                (
                    entry
                    for entry in history.glob("*.json")
                    if entry.stem.isdigit()
                ),
                reverse=True,
            )
        )
    return candidates


def write_checkpoint_file(
    path: PathLike, state: Mapping[str, Any], history_keep: int = 0
) -> str:
    """Durably persist a sealed checkpoint document; returns its identity.

    Delegates to :func:`~repro.stream.checkpoint.durable_write_json`
    (temp sibling, data fsync, atomic rename, directory fsync) and
    seals the document with an integrity digest so restore can detect
    disk corruption.  With ``history_keep > 0`` the previous "latest"
    is rotated into the lineage history first instead of being
    overwritten.
    """
    target = Path(path)
    rotate_checkpoint_history(target, history_keep)
    try:
        durable_write_json(target, seal_state(state))
    except CheckpointError as exc:
        raise ShardError(
            f"cannot write shard checkpoint {str(target)!r}: {exc}"
        ) from exc
    return checkpoint_id(state)


class DeploymentShard:
    """Thread-mode shard: a daemon worker around one ``StreamRunner``.

    Parameters
    ----------
    spec:
        The deployment to build and serve.
    checkpoint_path:
        Where checkpoints land (``None`` disables checkpointing).
    checkpoint_every:
        Checkpoint after this many newly emitted fixes (``0`` = only
        on demand and at drain).
    restore:
        A checkpoint document to resume from (lineage chains through
        :meth:`StreamRunner.restore`).
    on_state:
        Supervisor callback ``(state, *, error=None, checkpoint_id=None)``
        fired on lifecycle transitions.
    ingress_capacity, ingress_policy:
        The routing queue's bound and overload behaviour; its drops are
        what the per-batch ingest acks report.
    shed_watermark:
        Admission-control threshold as a fraction of
        ``ingress_capacity``: a batch arriving while the ingress
        backlog is at or above it is *shed* — refused wholesale with a
        ``retry_after_s`` hint instead of silently dropping reads.
        ``0`` disables shedding (the pre-backpressure behaviour).
    shed_retry_after_s:
        Base publisher pause advertised on a shed batch; scaled up to
        2 s as the backlog climbs past the watermark.
    history_keep:
        How many rotated checkpoint ancestors to retain next to the
        "latest" file (the lineage walk-back depth); ``0`` keeps none.
    """

    def __init__(
        self,
        spec: DeploymentSpec,
        checkpoint_path: Optional[PathLike] = None,
        checkpoint_every: int = 0,
        restore: Optional[Mapping[str, Any]] = None,
        on_state: Optional[StateCallback] = None,
        on_checkpoint: Optional[Callable[[str], None]] = None,
        ingress_capacity: int = 8192,
        ingress_policy: str = "drop-oldest",
        ring_capacity: int = 256,
        poll_interval_s: float = 0.05,
        shed_watermark: float = 0.9,
        shed_retry_after_s: float = 0.2,
        history_keep: int = 3,
    ) -> None:
        if not 0.0 <= shed_watermark <= 1.0:
            raise ShardError(
                f"shed_watermark must be within [0, 1], got {shed_watermark!r}"
            )
        self.spec = spec
        self.checkpoint_path = (
            None if checkpoint_path is None else Path(checkpoint_path)
        )
        self.checkpoint_every = checkpoint_every
        self.poll_interval_s = poll_interval_s
        self.shed_watermark = shed_watermark
        self.shed_retry_after_s = shed_retry_after_s
        self.history_keep = history_keep
        self._ingress_capacity = ingress_capacity
        self.ring = ProvenanceRing(capacity=ring_capacity)
        self._restore = None if restore is None else dict(restore)
        self._on_state = on_state
        self._on_checkpoint = on_checkpoint
        self._ingress = BoundedReadQueue(
            capacity=ingress_capacity,
            policy=ingress_policy,
            deployment=spec.deployment_id,
        )
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._fail = threading.Event()
        # Written by stop() strictly before _stop.set() and read by
        # the worker strictly after seeing _stop set -- the Event is
        # the ordering edge, so the flag itself needs no lock.
        self._drain_on_stop = True  # reprolint: lockfree
        self._ckpt_request = threading.Event()
        self._ckpt_done = threading.Event()
        self._lock = sanitized_lock("serve.shard")
        self._thread: Optional[threading.Thread] = None
        self._runner: Optional[StreamRunner] = None
        self._failure: Optional[str] = None
        self._fix_records: List[Dict[str, Any]] = []
        self._last_checkpoint_id: Optional[str] = None
        self._heartbeat = time.monotonic()
        self._stall_until = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "DeploymentShard":
        """Spawn the worker thread (build happens on the worker)."""
        with self._lock:
            if self._thread is not None:
                raise ShardError(
                    f"shard {self.spec.deployment_id!r} is already started"
                )
            thread = threading.Thread(
                target=self._work,
                name=f"repro-shard-{self.spec.deployment_id}",
                daemon=True,
            )
            self._thread = thread
        self._notify("starting")
        thread.start()
        return self

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Ask the worker to finish and join it.

        ``drain=True`` flushes the ingress queue, closes every pending
        window (``runner.finish()``) and writes a final checkpoint
        before the thread exits; ``drain=False`` abandons in-flight
        state (the crash-adjacent shutdown).
        """
        with self._lock:
            thread = self._thread
        if thread is None:
            return
        self._drain_on_stop = drain
        self._stop.set()
        self._wake.set()
        thread.join(timeout=timeout_s)
        if thread.is_alive():
            raise ShardError(
                f"shard {self.spec.deployment_id!r} worker did not stop "
                f"within {timeout_s:g}s"
            )

    def kill(self) -> None:
        """Inject a crash: the worker raises on its next loop pass."""
        self._fail.set()
        self._wake.set()

    def join(self, timeout_s: float = 30.0) -> None:
        """Wait for the worker thread to end (crashed or stopped)."""
        with self._lock:
            thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout_s)

    # -- data paths --------------------------------------------------------

    def route(self, reads: Sequence[TagRead]) -> Admission:
        """Admit a batch into the ingress queue; an :class:`Admission`.

        When the ingress backlog sits at or above the shed watermark
        the whole batch is refused (``shed=True``) with a
        ``retry_after_s`` hint — the publisher resends the *same* batch
        after the pause, so shedding never loses reads the way a
        silent queue-full drop would.
        """
        if self.shed_watermark > 0.0:
            backlog = len(self._ingress)
            threshold = self.shed_watermark * self._ingress_capacity
            if backlog >= threshold:
                # The deeper past the watermark, the longer the hint:
                # full backlog advertises 2 s, the watermark itself the
                # base pause.  Publishers treat it as advisory.
                overfill = backlog / max(1.0, float(self._ingress_capacity))
                hint = min(2.0, self.shed_retry_after_s * (1.0 + overfill))
                self._wake.set()
                obs.count(
                    "serve.shed.batches",
                    labels={"deployment": self.spec.deployment_id},
                )
                obs.count(
                    "serve.shed.reads",
                    float(len(reads)),
                    labels={"deployment": self.spec.deployment_id},
                )
                # dropped=0 on purpose: a shed batch is refused and
                # resent, not lost — a legacy client that ignores the
                # status key must not account these reads as dropped.
                return Admission(
                    accepted=0,
                    dropped=0,
                    shed=True,
                    retry_after_s=hint,
                )
        accepted = self._ingress.put_many(reads)
        self._wake.set()
        return Admission(accepted=accepted, dropped=len(reads) - accepted)

    def checkpoint_sync(self, timeout_s: float = 30.0) -> Optional[str]:
        """Checkpoint now; block until durable.  Returns the identity."""
        if self.checkpoint_path is None:
            raise ShardError(
                f"shard {self.spec.deployment_id!r} has no checkpoint path"
            )
        self._ckpt_done.clear()
        self._ckpt_request.set()
        self._wake.set()
        if not self._ckpt_done.wait(timeout=timeout_s):
            raise ShardError(
                f"shard {self.spec.deployment_id!r} did not checkpoint "
                f"within {timeout_s:g}s (worker dead? state={self.state})"
            )
        with self._lock:
            return self._last_checkpoint_id

    def fix_records(self) -> List[Dict[str, Any]]:
        """All fixes emitted so far, as fix-log records (a copy)."""
        with self._lock:
            return list(self._fix_records)

    @property
    def fixes_emitted(self) -> int:
        """How many fixes the shard has produced."""
        with self._lock:
            return len(self._fix_records)

    @property
    def state(self) -> str:
        """Coarse liveness: starting / live / stopped / failed."""
        with self._lock:
            thread, runner, failure = self._thread, self._runner, self._failure
        if failure is not None:
            return "failed"
        if thread is None:
            return "stopped"
        if not thread.is_alive():
            return "stopped"
        return "live" if runner is not None else "starting"

    @property
    def failure(self) -> Optional[str]:
        """The crash reason, when the worker died."""
        with self._lock:
            return self._failure

    def queue_stats(self) -> Dict[str, int]:
        """Ingress-queue admission counters (the backpressure view)."""
        stats = self._ingress.stats
        return {
            "offered": stats.offered,
            "accepted": stats.accepted,
            "dropped": stats.dropped,
        }

    # -- liveness ----------------------------------------------------------

    def liveness_age(self) -> float:
        """Seconds since the worker last completed a loop pass.

        The heartbeat is stamped *after* the stall gate, so a hung
        worker — stalled, deadlocked, wedged in a long poll — shows a
        growing age while its thread stays alive and its state stays
        ``live``.  That gap is exactly what the watchdog's hang
        deadline measures; a crashed shard is caught by ``state``
        instead.
        """
        with self._lock:
            return time.monotonic() - self._heartbeat

    def stall(self, duration_s: float) -> None:
        """Chaos hook: wedge the worker for ``duration_s`` seconds.

        The worker keeps its thread (state stays ``live``, no failure
        recorded) but stops draining, polling and heartbeating — a
        faithful stand-in for a deadlock or a runaway computation.
        ``kill()`` still interrupts a stalled worker within ~10 ms.
        """
        with self._lock:
            self._stall_until = time.monotonic() + duration_s
        obs.count(
            "serve.shard.stalls",
            labels={"deployment": self.spec.deployment_id},
        )

    # -- worker body -------------------------------------------------------

    def _hold_if_stalled(self) -> None:
        while True:
            with self._lock:
                remaining = self._stall_until - time.monotonic()
            if remaining <= 0.0:
                return
            if self._fail.is_set():
                raise ShardError("injected crash (kill())")
            time.sleep(min(remaining, 0.01))

    def _work(self) -> None:
        try:
            runner = build_runner(self.spec, restore=self._restore)
            with self._lock:
                self._runner = runner
                self._heartbeat = time.monotonic()
            self._notify("live")
            unflushed = 0
            while True:
                self._wake.wait(timeout=self.poll_interval_s)
                self._wake.clear()
                if self._fail.is_set():
                    raise ShardError("injected crash (kill())")
                self._hold_if_stalled()
                with self._lock:
                    self._heartbeat = time.monotonic()
                drained = self._ingress.drain()
                if drained:
                    runner.queue.put_many(drained)
                    unflushed += self._emit(runner.poll())
                if self._ckpt_request.is_set():
                    self._ckpt_request.clear()
                    self._write_checkpoint(runner)
                    unflushed = 0
                    self._ckpt_done.set()
                elif (
                    self.checkpoint_every > 0
                    and unflushed >= self.checkpoint_every
                ):
                    self._write_checkpoint(runner)
                    unflushed = 0
                if self._stop.is_set():
                    if self._drain_on_stop:
                        leftovers = self._ingress.drain()
                        if leftovers:
                            runner.queue.put_many(leftovers)
                        self._emit(runner.finish())
                        if self.checkpoint_path is not None:
                            self._write_checkpoint(runner)
                    break
            self._notify("draining")
            self._notify("stopped")
        # The shard crash boundary: ANY escaping failure must become
        # state=failed with the reason recorded, or the supervisor can
        # never notice and restart -- hence deliberately broad.
        except Exception as exc:  # reprolint: disable=RL005
            with self._lock:
                self._failure = str(exc)
            obs.count(
                "serve.shard.crashes",
                labels={"deployment": self.spec.deployment_id},
            )
            self._notify("failed", error=str(exc))

    def _emit(self, fixes: Sequence[Any]) -> int:
        records = [fix_record(fix) for fix in fixes]
        for fix, record in zip(fixes, records):
            self.ring.push(fix)
        if records:
            with self._lock:
                self._fix_records.extend(records)
            obs.count(
                "serve.fixes",
                float(len(records)),
                labels={"deployment": self.spec.deployment_id},
            )
        return len(records)

    def _write_checkpoint(self, runner: StreamRunner) -> None:
        if self.checkpoint_path is None:
            return
        state = runner.checkpoint()
        identity = write_checkpoint_file(
            self.checkpoint_path, state, history_keep=self.history_keep
        )
        with self._lock:
            self._last_checkpoint_id = identity
        obs.count(
            "serve.shard.checkpoints",
            labels={"deployment": self.spec.deployment_id},
        )
        if self._on_checkpoint is not None:
            self._on_checkpoint(identity)

    def _notify(self, state: str, error: Optional[str] = None) -> None:
        if self._on_state is None:
            return
        try:
            self._on_state(state, error=error)
        # Callbacks are bookkeeping; whatever they raise must not take
        # the worker down with them, so the boundary is broad on purpose.
        except Exception:  # reprolint: disable=RL005
            obs.count(
                "serve.shard.state_callback_errors",
                labels={"deployment": self.spec.deployment_id},
            )


class ProcessShard:
    """Process-mode shard: the worker is a killable child process.

    The parent speaks the same length-delimited frames as the network
    protocol over the child's stdin/stdout (see
    :mod:`repro.serve.worker` for the conversation).  All calls are
    synchronous and must come from one thread — the supervisor —
    which keeps the parent side lock-free by construction.
    """

    def __init__(
        self,
        spec: DeploymentSpec,
        checkpoint_path: Optional[PathLike] = None,
        checkpoint_every: int = 0,
        restore: Optional[Mapping[str, Any]] = None,
        on_state: Optional[StateCallback] = None,
        on_checkpoint: Optional[Callable[[str], None]] = None,
        ring_capacity: int = 256,
        io_timeout_s: float = 120.0,
        history_keep: int = 3,
    ) -> None:
        self.spec = spec
        self.checkpoint_path = (
            None if checkpoint_path is None else Path(checkpoint_path)
        )
        self.checkpoint_every = checkpoint_every
        self.io_timeout_s = io_timeout_s
        self.history_keep = history_keep
        self.ring = ProvenanceRing(capacity=ring_capacity)
        self._restore = None if restore is None else dict(restore)
        self._on_state = on_state
        self._on_checkpoint = on_checkpoint
        self._proc: Optional[subprocess.Popen[bytes]] = None
        self._seq = 0
        self._failure: Optional[str] = None
        self._fix_records: List[Dict[str, Any]] = []
        self._last_checkpoint_id: Optional[str] = None
        self._dropped = 0
        # Written around each synchronous pipe exchange on the single
        # supervisor thread; the watchdog thread only ever *reads* the
        # float, which CPython makes tear-free.
        self._inflight_since: Optional[float] = None  # reprolint: lockfree

    def start(self) -> "ProcessShard":
        """Spawn the worker process and wait for its ready frame."""
        if self._proc is not None:
            raise ShardError(
                f"shard {self.spec.deployment_id!r} is already started"
            )
        self._notify("starting")
        environment = os.environ.copy()
        source_root = str(Path(__file__).resolve().parents[2])
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = (
            source_root if not existing
            else source_root + os.pathsep + existing
        )
        self._proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=environment,
        )
        job: Dict[str, Any] = {
            "op": "job",
            "spec": self.spec.to_dict(),
            "checkpoint_path": (
                None
                if self.checkpoint_path is None
                else str(self.checkpoint_path)
            ),
            "checkpoint_every": self.checkpoint_every,
            "history_keep": self.history_keep,
            "restore": self._restore,
        }
        self._send(job)
        reply = self._receive()
        if reply.get("op") != "ready":
            raise self._fail_with(
                f"worker did not become ready: {reply.get('error', reply)!r}"
            )
        self._notify("live")
        return self

    def route(self, reads: Sequence[TagRead]) -> Admission:
        """Ship a batch to the child; blocks for its admission verdict.

        Process shards never shed: the pipe exchange is synchronous, so
        the caller *is* the backpressure — there is no ingress backlog
        to watermark.
        """
        self._seq += 1
        self._send(protocol.reads_frame(self._seq, reads))
        reply = self._receive()
        if reply.get("op") != "ack" or reply.get("seq") != self._seq:
            raise self._fail_with(f"worker answered out of protocol: {reply!r}")
        self._absorb_fixes(reply.get("fixes", []))
        accepted = int(reply.get("accepted", 0))
        dropped = int(reply.get("dropped", 0))
        self._dropped += dropped
        return Admission(accepted=accepted, dropped=dropped)

    def checkpoint_sync(self, timeout_s: float = 30.0) -> Optional[str]:
        """Ask the child to checkpoint; returns the identity."""
        self._send({"op": "checkpoint"})
        reply = self._receive()
        if reply.get("op") != "checkpointed":
            raise self._fail_with(f"checkpoint refused: {reply!r}")
        identity = str(reply["checkpoint_id"])
        self._last_checkpoint_id = identity
        if self._on_checkpoint is not None:
            self._on_checkpoint(identity)
        return identity

    def stop(self, drain: bool = True, timeout_s: float = 60.0) -> None:
        """Orderly shutdown: drain, final checkpoint, reap the child."""
        proc = self._proc
        if proc is None:
            return
        if proc.poll() is not None:
            self._proc = None
            return
        try:
            self._send({"op": "bye", "drain": drain})
            reply = self._receive()
            if reply.get("op") == "done":
                self._absorb_fixes(reply.get("fixes", []))
        except ShardError:  # reprolint: disable=RL006
            # _fail_with already recorded and counted the failure; the
            # child still gets reaped below either way.
            pass
        try:
            proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5.0)
        self._close_pipes()
        self._proc = None
        if self._failure is None:
            self._notify("draining")
            self._notify("stopped")

    def kill(self) -> None:
        """SIGKILL the worker — a real crash, no cleanup, no flush."""
        proc = self._proc
        if proc is None:
            return
        proc.kill()
        proc.wait(timeout=10.0)
        self._close_pipes()
        self._proc = None
        self._failure = "killed"
        obs.count(
            "serve.shard.crashes",
            labels={"deployment": self.spec.deployment_id},
        )
        self._notify("failed", error="killed")

    def join(self, timeout_s: float = 30.0) -> None:
        """Process shards have no thread to join; kept for symmetry."""
        return None

    def fix_records(self) -> List[Dict[str, Any]]:
        """All fixes emitted so far, as fix-log records (a copy)."""
        return list(self._fix_records)

    @property
    def fixes_emitted(self) -> int:
        """How many fixes the shard has produced."""
        return len(self._fix_records)

    @property
    def state(self) -> str:
        """Coarse liveness: starting / live / stopped / failed."""
        if self._failure is not None:
            return "failed"
        proc = self._proc
        if proc is None or proc.poll() is not None:
            return "stopped"
        return "live"

    @property
    def failure(self) -> Optional[str]:
        """The crash reason, when the worker died."""
        return self._failure

    def queue_stats(self) -> Dict[str, int]:
        """Admission counters as reported by the child's acks."""
        return {
            "offered": self._seq,
            "accepted": self._seq,
            "dropped": self._dropped,
        }

    # -- liveness ----------------------------------------------------------

    def liveness_age(self) -> float:
        """Seconds the oldest in-flight pipe exchange has been pending.

        ``0.0`` while idle: an idle child cannot be distinguished from
        a wedged one without sending it work, so hang detection for
        process shards measures how long the current request has gone
        unanswered.
        """
        since = self._inflight_since
        if since is None:
            return 0.0
        return time.monotonic() - since

    def stall(self, duration_s: float) -> None:
        """Chaos hook: ``SIGSTOP`` the child for ``duration_s`` seconds.

        A stopped process is the canonical hung-not-crashed shard: the
        pid survives, the pipes stay open, nothing is answered.  A
        daemon timer sends ``SIGCONT`` afterwards; a ``kill()`` in the
        meantime still lands (``SIGKILL`` terminates stopped
        processes).
        """
        proc = self._proc
        if proc is None:
            raise ShardError(
                f"shard {self.spec.deployment_id!r} worker is not running"
            )
        proc.send_signal(signal.SIGSTOP)
        obs.count(
            "serve.shard.stalls",
            labels={"deployment": self.spec.deployment_id},
        )
        timer = threading.Timer(duration_s, self._resume)
        timer.daemon = True
        timer.start()

    def _resume(self) -> None:
        proc = self._proc
        if proc is None or proc.poll() is not None:
            return
        try:
            proc.send_signal(signal.SIGCONT)
        except (OSError, ProcessLookupError):  # reprolint: disable=RL006
            # The child died (or was killed) mid-stall; nothing to wake.
            pass

    # -- plumbing ----------------------------------------------------------

    def _absorb_fixes(self, records: Sequence[Mapping[str, Any]]) -> None:
        for record in records:
            materialized = dict(record)
            self._fix_records.append(materialized)
            self.ring.push_record(materialized)
        if records:
            obs.count(
                "serve.fixes",
                float(len(records)),
                labels={"deployment": self.spec.deployment_id},
            )

    def _send(self, message: Mapping[str, Any]) -> None:
        proc = self._proc
        if proc is None or proc.stdin is None:
            raise ShardError(
                f"shard {self.spec.deployment_id!r} worker is not running"
            )
        if self._inflight_since is None:
            self._inflight_since = time.monotonic()  # reprolint: lockfree
        try:
            protocol.write_frame(proc.stdin, message)
        except (OSError, ValueError) as exc:
            raise self._fail_with(f"worker pipe write failed: {exc}") from exc

    def _receive(self) -> Dict[str, Any]:
        proc = self._proc
        if proc is None or proc.stdout is None:
            raise ShardError(
                f"shard {self.spec.deployment_id!r} worker is not running"
            )
        try:
            frame = protocol.read_frame(proc.stdout)
        except (IngestProtocolError, OSError, ValueError) as exc:
            raise self._fail_with(f"worker pipe read failed: {exc}") from exc
        self._inflight_since = None  # reprolint: lockfree
        if frame is None:
            raise self._fail_with("worker closed its pipe (crashed?)")
        if frame.get("op") == "fatal":
            raise self._fail_with(f"worker failed: {frame.get('error')!r}")
        return frame

    def _fail_with(self, reason: str) -> ShardError:
        if self._failure is None:
            self._failure = reason
            obs.count(
                "serve.shard.crashes",
                labels={"deployment": self.spec.deployment_id},
            )
            self._notify("failed", error=reason)
        return ShardError(
            f"shard {self.spec.deployment_id!r}: {reason}"
        )

    def _close_pipes(self) -> None:
        proc = self._proc
        if proc is None:
            return
        for handle in (proc.stdin, proc.stdout):
            if handle is not None:
                try:
                    handle.close()
                except OSError:  # reprolint: disable=RL006
                    # Closing the pipes of an already-dead child can
                    # fail benignly; there is nothing left to release.
                    pass

    def _notify(self, state: str, error: Optional[str] = None) -> None:
        if self._on_state is None:
            return
        try:
            self._on_state(state, error=error)
        # Same contract as the thread shard: callback failures are
        # counted, never propagated into the pipe conversation.
        except Exception:  # reprolint: disable=RL005
            obs.count(
                "serve.shard.state_callback_errors",
                labels={"deployment": self.spec.deployment_id},
            )
