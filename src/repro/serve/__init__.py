"""repro.serve — sharded multi-deployment tracking with network ingest.

The serving layer runs one D-Watch streaming pipeline per *deployment*
(a scene + reader roster + pipeline config registered in a
:class:`~repro.serve.registry.DeploymentRegistry`), supervised as a
fleet of shards by :class:`~repro.serve.supervisor.ShardSupervisor`,
fed over TCP by :class:`~repro.serve.server.IngestServer` /
:class:`~repro.serve.publisher.ReadPublisher`, and observed through
the existing ops endpoint.  See ``docs/SERVING.md`` for the protocol
spec and failover semantics.
"""

from repro.serve.protocol import (
    ACK_KIND,
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_KIND,
    PROTOCOL_SCHEMA,
    IngestHello,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.publisher import DEFAULT_PUBLISHER_POLICY, ReadPublisher
from repro.serve.registry import (
    REGISTRY_KIND,
    REGISTRY_SCHEMA,
    SHARD_STATES,
    DeploymentRegistry,
    DeploymentSpec,
    default_fleet,
)
from repro.serve.server import IngestServer
from repro.serve.shard import (
    Admission,
    DeploymentShard,
    ProcessShard,
    build_runner,
    checkpoint_history_paths,
    rotate_checkpoint_history,
    write_checkpoint_file,
)
from repro.serve.supervisor import ShardSupervisor
from repro.serve.watchdog import ShardWatchdog

__all__ = [
    "ACK_KIND",
    "DEFAULT_PUBLISHER_POLICY",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_KIND",
    "PROTOCOL_SCHEMA",
    "REGISTRY_KIND",
    "REGISTRY_SCHEMA",
    "SHARD_STATES",
    "Admission",
    "DeploymentRegistry",
    "DeploymentShard",
    "DeploymentSpec",
    "IngestHello",
    "IngestServer",
    "ProcessShard",
    "ReadPublisher",
    "ShardSupervisor",
    "ShardWatchdog",
    "build_runner",
    "checkpoint_history_paths",
    "default_fleet",
    "encode_frame",
    "read_frame",
    "rotate_checkpoint_history",
    "write_checkpoint_file",
    "write_frame",
]
