"""Exception hierarchy for the D-Watch reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
estimation failures.
"""

from __future__ import annotations

from typing import List, Optional


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class GeometryError(ReproError):
    """A geometric operation received degenerate or inconsistent input."""


class ProtocolError(ReproError):
    """The simulated EPC Gen2 / LLRP layer encountered an invalid exchange."""


class EstimationError(ReproError):
    """A signal-processing estimator could not produce a valid result."""


class CalibrationError(ReproError):
    """Phase calibration failed or was applied before being computed."""


class LocalizationError(ReproError):
    """The localization pipeline could not produce a position estimate."""


class ContractViolation(EstimationError):
    """A debug-mode array contract (shape, dtype or finiteness) failed.

    Only ever raised when the :mod:`repro.analysis.contracts` sanitizer
    is active (``REPRO_DEBUG=1``); production runs never construct or
    raise this.  Subclasses :class:`EstimationError` because the
    contracts guard estimator inputs: debug mode may *refine* the
    exception a caller sees for invalid input, but never changes which
    ``except`` clauses catch it.
    """


class StreamError(ReproError):
    """The online streaming engine could not ingest or assemble reads.

    Carries optional structured context — which reader, tag EPC, event
    time and TDM slot the failure concerns — appended to the message
    *and* kept as attributes, so a supervisor can react per reader
    (quarantine, retry) instead of parsing message strings.  The same
    pattern :class:`RecordingError` uses for line numbers, generalised
    to the live ingest path.
    """

    def __init__(
        self,
        message: str,
        *,
        reader: Optional[str] = None,
        epc: Optional[str] = None,
        time_s: Optional[float] = None,
        slot: Optional[int] = None,
    ) -> None:
        self.reader = reader
        self.epc = epc
        self.time_s = time_s
        self.slot = slot
        context: List[str] = []
        if reader is not None:
            context.append(f"reader={reader!r}")
        if epc is not None:
            context.append(f"epc={epc!r}")
        if time_s is not None:
            context.append(f"t={time_s:g}s")
        if slot is not None:
            context.append(f"slot={slot}")
        if context:
            message = f"{message} [{' '.join(context)}]"
        super().__init__(message)


class BackpressureError(StreamError):
    """A bounded stream queue refused a read.

    Raised only under the ``"block"`` policy when the queue stays full
    past the caller's timeout; the dropping policies never raise — they
    count their drops instead.
    """


class QueueClosedError(StreamError):
    """A read was offered to a queue after :meth:`close`.

    Raised instead of silently accepting (the consumer will never see
    the read) or deadlocking (a ``block`` producer waiting on a
    consumer that already shut down).  Producers treat it as the
    end-of-stream signal.
    """


class SourceUnavailableError(StreamError):
    """An ingest source dropped its connection or failed to produce.

    The retryable failure class of the supervision layer: a reader
    falling off LLRP, a socket reset, a stalled recording pipe.
    :func:`repro.stream.supervise.supervised_reads` rebuilds the source
    with backoff on this (and on ``OSError``); anything else propagates
    as a genuine bug.
    """


class CheckpointError(StreamError):
    """A streaming checkpoint is missing, malformed or mismatched.

    Restoring state captured from a *different* deployment (other
    readers, window shape or decay) would silently corrupt every later
    fix, so the checkpoint carries a configuration fingerprint and a
    mismatch raises this instead of proceeding.
    """


class RecordingError(StreamError):
    """A read-stream recording is missing, malformed or truncated.

    Replay never lets :class:`json.JSONDecodeError` (or a bare
    ``KeyError``) escape: a half-written final line, a wrong header or
    a missing field all surface as this type with the offending line
    number, so stream consumers can catch one exception class.
    """


class RetentionError(StreamError):
    """A retention scan or apply step failed.

    Raised for an unreadable artefact directory or a delete that the
    filesystem refused — never for foreign files, which the scanner
    deliberately skips (retention only ever touches artefacts this
    library wrote, identified by their ``kind`` headers).
    """


class ExpositionError(ConfigurationError):
    """A metrics exposition violates the Prometheus text format.

    Raised by the in-repo validator (:mod:`repro.obs.export`) when a
    rendered ``/metrics`` payload breaks the format rules — bad metric
    or label names, missing ``TYPE`` lines, non-cumulative histogram
    buckets, duplicate series.  A subclass of
    :class:`ConfigurationError` because a bad exposition is always an
    instrumentation bug, never a runtime estimation failure.
    """


class IngestProtocolError(ProtocolError):
    """The ``dwatch-ingest`` wire protocol was violated.

    Raised by :mod:`repro.serve.protocol` for every way a network peer
    can speak the protocol wrongly: a version mismatch, a handshake for
    an unknown deployment id, a frame whose length prefix and payload
    disagree (the classic truncated-write artefact), an oversized
    frame, or JSON that does not parse.  Carries structured context —
    the offending deployment and a stable machine-readable ``code`` —
    so servers can answer with a typed diagnostic instead of hanging up
    silently, and clients can decide retry-vs-abort without parsing
    message strings.  A subclass of :class:`ProtocolError` because it
    is the network twin of the LLRP exchange errors.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "malformed",
        deployment: Optional[str] = None,
    ) -> None:
        self.code = code
        self.deployment = deployment
        context: List[str] = [f"code={code}"]
        if deployment is not None:
            context.append(f"deployment={deployment!r}")
        super().__init__(f"{message} [{' '.join(context)}]")


class RegistryError(StreamError):
    """A deployment registry document is missing, malformed or stale.

    The registry is persisted as versioned JSON exactly like streaming
    checkpoints; an unknown ``kind``/``schema``, a duplicate
    deployment id, or a lookup of a deployment that was never
    registered all raise this instead of silently serving the wrong
    fleet.
    """


class ShardError(StreamError):
    """A deployment shard failed or was asked for an impossible action.

    Raised when a shard worker dies (and carried into the supervisor's
    crash/restart bookkeeping), when a restart budget is exhausted, or
    when an operation (route, drain, checkpoint) is attempted against a
    shard in a state that cannot honour it.
    """


class UsageError(ReproError):
    """A command-line invocation asked for something that does not exist.

    Raised instead of a bare ``SystemExit`` so the CLI's single error
    handler can render the message and pick the exit code, and so
    programmatic callers of :func:`repro.cli.main` can catch it like
    any other :class:`ReproError`.
    """
