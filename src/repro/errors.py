"""Exception hierarchy for the D-Watch reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
estimation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class GeometryError(ReproError):
    """A geometric operation received degenerate or inconsistent input."""


class ProtocolError(ReproError):
    """The simulated EPC Gen2 / LLRP layer encountered an invalid exchange."""


class EstimationError(ReproError):
    """A signal-processing estimator could not produce a valid result."""


class CalibrationError(ReproError):
    """Phase calibration failed or was applied before being computed."""


class LocalizationError(ReproError):
    """The localization pipeline could not produce a position estimate."""


class ContractViolation(EstimationError):
    """A debug-mode array contract (shape, dtype or finiteness) failed.

    Only ever raised when the :mod:`repro.analysis.contracts` sanitizer
    is active (``REPRO_DEBUG=1``); production runs never construct or
    raise this.  Subclasses :class:`EstimationError` because the
    contracts guard estimator inputs: debug mode may *refine* the
    exception a caller sees for invalid input, but never changes which
    ``except`` clauses catch it.
    """


class StreamError(ReproError):
    """The online streaming engine could not ingest or assemble reads."""


class BackpressureError(StreamError):
    """A bounded stream queue refused a read.

    Raised only under the ``"block"`` policy when the queue stays full
    past the caller's timeout; the dropping policies never raise — they
    count their drops instead.
    """


class RecordingError(StreamError):
    """A read-stream recording is missing, malformed or truncated.

    Replay never lets :class:`json.JSONDecodeError` (or a bare
    ``KeyError``) escape: a half-written final line, a wrong header or
    a missing field all surface as this type with the offending line
    number, so stream consumers can catch one exception class.
    """


class UsageError(ReproError):
    """A command-line invocation asked for something that does not exist.

    Raised instead of a bare ``SystemExit`` so the CLI's single error
    handler can render the message and pick the exit code, and so
    programmatic callers of :func:`repro.cli.main` can catch it like
    any other :class:`ReproError`.
    """
