"""Device-free localization baselines from the paper's related work.

Two representative competitor families (Section 7):

* **RSSI fingerprinting** — translate localization into signature
  matching against a labour-intensive offline training database; breaks
  when the environment changes.
* **Radio tomographic imaging (RTI)** — model-based attenuation imaging
  over the link mesh; coarse and dependent on dense line-of-sight
  links.

Both are implemented against the same measurement interface D-Watch
consumes, so the benchmarks compare them head-to-head on identical
captures.
"""

from repro.baselines.fingerprint import FingerprintLocalizer
from repro.baselines.rti import RtiLocalizer

__all__ = ["FingerprintLocalizer", "RtiLocalizer"]
