"""RSSI fingerprinting baseline (the related-work family of [41-43, 49]).

The fingerprint approach walks a trainer to every grid location, records
the per-(reader, tag) received power vector as that location's
signature, and later matches online captures against the database with
weighted k-nearest-neighbours.  It achieves usable accuracy — at the
cost of hours of offline training that must be *redone whenever the
environment changes*, which is exactly the deployment burden D-Watch
eliminates (Section 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, LocalizationError
from repro.geometry.point import Point
from repro.sim.measurement import Measurement, MeasurementSession
from repro.sim.scene import Scene
from repro.sim.target import human_target


def rssi_features(
    measurement: Measurement, keys: Optional[List[Tuple[str, str]]] = None
) -> Tuple[np.ndarray, List[Tuple[str, str]]]:
    """Per-(reader, tag) mean received power in dB, as a flat vector.

    Parameters
    ----------
    measurement:
        The capture to featurize.
    keys:
        Optional fixed key order (from training); missing pairs read as
        the -100 dB silence floor so train/online vectors stay aligned.
    """
    powers: Dict[Tuple[str, str], float] = {}
    for reader_name in measurement.readers():
        for epc in measurement.tags_for(reader_name):
            snapshots = measurement.matrix(reader_name, epc)
            mean_power = float(np.mean(np.abs(snapshots) ** 2))
            powers[(reader_name, epc)] = 10.0 * math.log10(
                max(mean_power, 1e-18)
            )
    if keys is None:
        keys = sorted(powers)
    vector = np.array([powers.get(key, -100.0) for key in keys])
    return vector, list(keys)


@dataclass
class FingerprintLocalizer:
    """Weighted k-NN localization over an offline signature database.

    Parameters
    ----------
    k:
        Neighbours in the match.
    training_spacing:
        Grid pitch of training locations (metres).  The paper's
        complaint about this family is precisely that the training walk
        covers *every* such location.
    samples_per_location:
        Captures averaged per training location.
    """

    k: int = 3
    training_spacing: float = 0.5
    samples_per_location: int = 2

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError("k must be at least 1")
        if self.training_spacing <= 0.0:
            raise ConfigurationError("training spacing must be positive")
        self._locations: List[Point] = []
        self._signatures: Optional[np.ndarray] = None
        self._keys: Optional[List[Tuple[str, str]]] = None

    @property
    def trained(self) -> bool:
        """Whether a database has been collected."""
        return self._signatures is not None

    @property
    def training_captures(self) -> int:
        """Size of the offline effort: captures in the database."""
        return len(self._locations) * self.samples_per_location

    def train(
        self,
        scene: Scene,
        session: MeasurementSession,
        locations: Optional[Sequence[Point]] = None,
        target_factory=human_target,
    ) -> int:
        """Walk the training grid and record signatures.

        Returns the number of training captures taken (the labour the
        paper's Table-less comparison argues about).
        """
        from repro.sim.deployment import test_location_grid

        if locations is None:
            locations = test_location_grid(
                scene.room, spacing=self.training_spacing
            )
        if not locations:
            raise ConfigurationError("no training locations")
        signatures = []
        keys = None
        for location in locations:
            target = target_factory(location)
            vectors = []
            for _ in range(self.samples_per_location):
                capture = session.capture([target])
                vector, keys = rssi_features(capture, keys)
                vectors.append(vector)
            signatures.append(np.mean(vectors, axis=0))
        self._locations = list(locations)
        self._signatures = np.stack(signatures)
        self._keys = keys
        return self.training_captures

    def localize(self, measurement: Measurement) -> Point:
        """Weighted k-NN match of an online capture.

        Raises
        ------
        LocalizationError
            If called before training.
        """
        if not self.trained:
            raise LocalizationError("fingerprint database has not been trained")
        vector, _ = rssi_features(measurement, self._keys)
        distances = np.linalg.norm(self._signatures - vector, axis=1)
        order = np.argsort(distances)[: self.k]
        weights = 1.0 / np.clip(distances[order], 1e-6, None)
        weights = weights / weights.sum()
        x = sum(w * self._locations[i].x for w, i in zip(weights, order))
        y = sum(w * self._locations[i].y for w, i in zip(weights, order))
        return Point(float(x), float(y))
