"""Radio tomographic imaging baseline (Wilson & Patwari, RTI [48]).

RTI images the attenuation field: every tag-to-reader link whose RSS
drops contributes shadow evidence along its line, a weight matrix maps
voxels to links through an ellipse model, and a Tikhonov-regularized
least squares inverts RSS changes into a shadowing image whose peak is
the target.  It is model-based (no training) like D-Watch, but it only
uses the links' *direct* lines, so its accuracy hinges on a dense mesh
and degrades in exactly the multipath-rich settings D-Watch thrives in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, LocalizationError
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.sim.measurement import Measurement
from repro.sim.scene import Scene


def link_rss_db(measurement: Measurement) -> Dict[Tuple[str, str], float]:
    """Mean received power (dB) of every (reader, tag) link."""
    rss: Dict[Tuple[str, str], float] = {}
    for reader_name in measurement.readers():
        for epc in measurement.tags_for(reader_name):
            snapshots = measurement.matrix(reader_name, epc)
            power = float(np.mean(np.abs(snapshots) ** 2))
            rss[(reader_name, epc)] = 10.0 * math.log10(max(power, 1e-18))
    return rss


@dataclass
class RtiLocalizer:
    """Shadowing-image localization over the tag-reader link mesh.

    Parameters
    ----------
    scene:
        The deployment; link geometry (tag and antenna positions) is
        *required* by RTI — one of the deployment burdens D-Watch
        avoids (it never needs tag locations).
    voxel_size:
        Image resolution (metres).
    ellipse_width:
        Excess path length (metres) bounding the weighting ellipse: a
        voxel contributes to a link if detouring through it lengthens
        the path by less than this.
    regularization:
        Tikhonov strength of the image inversion.
    detection_threshold:
        Minimum image peak to call a detection; empty-area captures
        produce only noise-level peaks an order of magnitude below a
        genuine body shadow.
    """

    scene: Scene
    voxel_size: float = 0.25
    ellipse_width: float = 0.4
    regularization: float = 3.0
    detection_threshold: float = 0.1

    def __post_init__(self) -> None:
        if self.voxel_size <= 0.0:
            raise ConfigurationError("voxel size must be positive")
        if self.ellipse_width <= 0.0:
            raise ConfigurationError("ellipse width must be positive")
        room = self.scene.room
        xs = np.arange(
            room.min_x + self.voxel_size / 2, room.max_x, self.voxel_size
        )
        ys = np.arange(
            room.min_y + self.voxel_size / 2, room.max_y, self.voxel_size
        )
        self._voxels = [Point(float(x), float(y)) for y in ys for x in xs]
        self._grid_shape = (len(ys), len(xs))
        self._links: List[Tuple[str, str, Segment]] = []
        for reader in self.scene.readers:
            anchor = reader.array.centroid
            self._links.extend(
                (reader.name, tag.epc, Segment(tag.position, anchor))
                for tag in self.scene.tags_in_range(reader)
            )
        if not self._links:
            raise ConfigurationError("scene has no usable links")
        self._weights = self._build_weights()
        self._baseline_rss: Optional[Dict[Tuple[str, str], float]] = None
        n_voxels = len(self._voxels)
        wtw = self._weights.T @ self._weights
        self._inverse = np.linalg.inv(
            wtw + self.regularization * np.eye(n_voxels)
        ) @ self._weights.T

    @property
    def num_links(self) -> int:
        """Size of the link mesh."""
        return len(self._links)

    def calibrate(self, baseline: Measurement) -> None:
        """Record the empty-area RSS of every link."""
        self._baseline_rss = link_rss_db(baseline)

    def shadowing_image(self, measurement: Measurement) -> np.ndarray:
        """The inverted attenuation image, shape ``(ny, nx)``."""
        if self._baseline_rss is None:
            raise LocalizationError("RTI must be calibrated with a baseline")
        online = link_rss_db(measurement)
        changes = np.zeros(len(self._links))
        for index, (reader_name, epc, _) in enumerate(self._links):
            base = self._baseline_rss.get((reader_name, epc))
            now = online.get((reader_name, epc))
            if base is None or now is None:
                continue
            changes[index] = max(0.0, base - now)  # attenuation in dB
        image = self._inverse @ changes
        return image.reshape(self._grid_shape)

    def localize(self, measurement: Measurement) -> Point:
        """Position of the shadowing image's peak.

        Raises
        ------
        LocalizationError
            If uncalibrated or the image is flat (nothing shadowed).
        """
        image = self.shadowing_image(measurement)
        peak = float(image.max())
        if peak <= self.detection_threshold:
            raise LocalizationError("no attenuation observed on any link")
        flat_index = int(np.argmax(image))
        return self._voxels[flat_index]

    def _build_weights(self) -> np.ndarray:
        """Ellipse-model weight matrix, shape ``(links, voxels)``.

        Weight ``1/sqrt(d)`` inside the ellipse (longer links spread
        their attenuation thinner), zero outside — the standard RTI
        formulation.
        """
        weights = np.zeros((len(self._links), len(self._voxels)))
        for link_index, (_, _, segment) in enumerate(self._links):
            d = segment.length()
            if d <= 0.0:
                continue
            inv_sqrt = 1.0 / math.sqrt(d)
            for voxel_index, voxel in enumerate(self._voxels):
                detour = (
                    voxel.distance_to(segment.start)
                    + voxel.distance_to(segment.end)
                    - d
                )
                if detour < self.ellipse_width:
                    weights[link_index, voxel_index] = inv_sqrt
        return weights
