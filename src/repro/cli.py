"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the tasks a user reaches for first:

* ``demo``      — calibrate, baseline and localize one target in a
  chosen environment, printing the likelihood heat map.
* ``coverage``  — print the deployment's coverage/deadzone map.
* ``experiment``— run one figure reproduction by name.
* ``stream``    — continuous tracking over a synthetic or replayed
  read stream (``--record`` / ``--replay`` for JSONL recordings,
  ``--chaos`` to inject a named fault scenario, ``--fix-log`` to
  record per-fix provenance, ``--serve-metrics`` for the live ops
  endpoint).
* ``health``    — run a stream and report per-reader health plus the
  fix-quality summary (the fleet view of ``docs/ROBUSTNESS.md``).
* ``stats``     — pretty-print a metrics snapshot written by a prior
  ``--metrics`` run (``--prefix`` to filter one series).
* ``provenance``— inspect a ``--fix-log`` recording: who and what
  produced each fix (readers, faults, spectral path, lineage).
* ``retain``    — age out old recordings/checkpoints under a
  TTL/size/count policy (dry-run unless ``--apply``).
* ``serve``     — run a sharded fleet of tracking deployments behind
  the TCP ingest endpoint (``docs/SERVING.md``); ``--serve-metrics``
  adds the fleet-wide ops endpoint.

Results go to stdout; progress goes through structured logging on
stderr (suppressed by ``--quiet``).  ``--trace FILE`` / ``--metrics
FILE`` turn on the observability layer and write JSONL span traces and
metric snapshots — see ``docs/OBSERVABILITY.md`` for the schema and
``docs/RUNBOOK.md`` for the operational recipes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.constants import TABLE_GRID_CELL_M
from repro.errors import ReproError, UsageError
from repro.obs.logging import configure_logging, fields, get_logger

log = get_logger("cli")

ENVIRONMENTS = ("library", "laboratory", "hall", "table", "wifi-office")

#: Environments with TDM RFID readers — the ones the stream engine runs on.
RFID_ENVIRONMENTS = ("library", "laboratory", "hall", "table")

#: Exit code for invalid usage / library-reported failures.
EXIT_ERROR = 2


def _build_scene(name: str, seed: int):
    from repro.sim.environments import (
        hall_scene,
        laboratory_scene,
        library_scene,
        table_scene,
    )
    from repro.wifi import wifi_office_scene

    makers = {
        "library": library_scene,
        "laboratory": laboratory_scene,
        "hall": hall_scene,
        "table": table_scene,
        "wifi-office": wifi_office_scene,
    }
    if name not in makers:
        raise UsageError(
            f"unknown environment {name!r}; pick from {ENVIRONMENTS}"
        )
    return makers[name](rng=seed)


def cmd_demo(args: argparse.Namespace) -> int:
    """Localize one target and show the evidence surface."""
    from repro.core.pipeline import DWatch
    from repro.geometry.point import Point
    from repro.sim.measurement import MeasurementSession
    from repro.sim.target import human_target
    from repro.viz import render_likelihood, render_scene

    scene = _build_scene(args.environment, args.seed)
    print("\n".join(render_scene(scene)))
    cell = TABLE_GRID_CELL_M if args.environment == "table" else 0.05
    dwatch = DWatch(scene, cell_size=cell)
    log.info(
        "calibrating readers over the air",
        extra=fields(environment=args.environment, readers=len(scene.readers)),
    )
    dwatch.calibrate(rng=args.seed + 1)
    log.info("collecting empty-area baseline", extra=fields(captures=3))
    session = MeasurementSession(scene, rng=args.seed + 2)
    dwatch.collect_baseline([session.capture() for _ in range(3)])

    if args.x is not None and args.y is not None:
        position = Point(args.x, args.y)
    else:
        position = scene.room.center
    target = human_target(position)
    log.info(
        "localizing target",
        extra=fields(x=f"{position.x:.2f}", y=f"{position.y:.2f}"),
    )
    measurement = session.capture([target])
    evidence = dwatch.evidence(measurement)
    estimates = dwatch.localize(measurement)
    print("\nlikelihood surface (X = true position):")
    print(
        "\n".join(
            render_likelihood(dwatch.likelihood_map, evidence, truth=position)
        )
    )
    if estimates:
        estimate = estimates[0]
        error = target.localization_error(estimate.position)
        print(
            f"\nestimate ({estimate.position.x:.2f}, {estimate.position.y:.2f})"
            f"  true ({position.x:.2f}, {position.y:.2f})"
            f"  error {error * 100:.1f} cm"
        )
    else:
        print("\ntarget not localizable from here (deadzone)")
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    """Print the coverage/deadzone map of a deployment."""
    from repro.sim.coverage import analyze_coverage

    scene = _build_scene(args.environment, args.seed)
    log.info(
        "analyzing coverage",
        extra=fields(environment=args.environment, spacing=args.spacing),
    )
    coverage = analyze_coverage(scene, grid_spacing=args.spacing)
    print("\n".join(coverage.ascii_map()))
    print(
        f"\ncoverage {coverage.coverage_rate:.0%}  "
        f"deadzone {coverage.deadzone_rate:.0%}  "
        f"('#' localizable, '+' one reader, '.' deadzone)"
    )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one figure reproduction by its short name."""
    import repro.experiments as experiments

    runners: Dict[str, Callable] = {
        "fig03": lambda: experiments.run_fig03(rng=args.seed),
        "fig04": lambda: experiments.run_fig04(rng=args.seed),
        "fig09": lambda: experiments.run_fig09(trials=2, rng=args.seed),
        "fig10": lambda: experiments.run_fig10(trials=3, rng=args.seed),
        "fig12": lambda: experiments.run_fig12(rng=args.seed),
        "fig13": lambda: experiments.run_fig13(trials=6, rng=args.seed),
        "fig14": lambda: experiments.run_fig14(num_locations=12, rng=args.seed),
        "fig15": lambda: experiments.run_fig15(num_locations=8, rng=args.seed),
        "fig16": lambda: experiments.run_fig16(num_locations=10, rng=args.seed),
        "fig17": lambda: experiments.run_fig17(num_locations=10, rng=args.seed),
        "fig18": lambda: experiments.run_fig18(num_locations=8, rng=args.seed),
        "fig19": lambda: experiments.run_fig19(snapshots=4, rng=args.seed),
        "fig21": lambda: experiments.run_fig21(rng=args.seed),
        "latency": lambda: experiments.run_latency(fixes=8, rng=args.seed),
    }
    if args.figure not in runners:
        raise UsageError(
            f"unknown figure {args.figure!r}; pick from {sorted(runners)}"
        )
    log.info("running experiment", extra=fields(figure=args.figure, seed=args.seed))
    result = runners[args.figure]()
    print("\n".join(result.rows()))
    return 0


def _calibrated_pipeline(scene, environment: str, seed: int):
    """Calibrate and baseline a DWatch pipeline over ``scene``."""
    from repro.core.pipeline import DWatch
    from repro.sim.measurement import MeasurementSession

    cell = TABLE_GRID_CELL_M if environment == "table" else 0.05
    dwatch = DWatch(scene, cell_size=cell)
    log.info(
        "calibrating readers over the air",
        extra=fields(environment=environment, readers=len(scene.readers)),
    )
    dwatch.calibrate(rng=seed + 1)
    log.info("collecting empty-area baseline", extra=fields(captures=2))
    session = MeasurementSession(scene, rng=seed + 2)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    return dwatch


def _chaos_source(args: argparse.Namespace, scene, seed: int, source):
    """Wrap ``source`` with the requested chaos scenario's injector.

    Returns ``(source, injector)``; the injector is ``None`` when the
    scenario is ``none``, leaving the stream untouched (the CLI output
    is pinned byte-identical to a run without the flag).
    """
    from repro.faults import FaultInjector, chaos_plan, scene_schedules

    plan = chaos_plan(args.chaos, scene, fixes=args.fixes, seed=seed)
    if not plan.enabled:
        return source, None
    log.info(
        "injecting faults",
        extra=fields(scenario=args.chaos, faults=len(plan.faults)),
    )
    injector = FaultInjector(plan, scene_schedules(scene))
    return injector.inject(source), injector


def _fix_line(fix) -> str:
    """One stdout line per fix; quality appears only when not full."""
    quality = ""
    if fix.quality.level != "full":
        quality = (
            f"  [{fix.quality.level}"
            f" conf={fix.quality.confidence:.2f}"
            f" readers={fix.quality.active_readers}/{fix.quality.total_readers}]"
        )
    if fix.position is None:
        return f"fix {fix.index:3d}  t={fix.time_s:.4f}s  no target{quality}"
    suffix = "  (predicted)" if fix.predicted_only else ""
    return (
        f"fix {fix.index:3d}  t={fix.time_s:.4f}s  "
        f"({fix.position.x:.3f}, {fix.position.y:.3f}){suffix}{quality}"
    )


def cmd_stream(args: argparse.Namespace) -> int:
    """Continuous tracking over a synthetic or replayed read stream."""
    from repro.stream import (
        RecordingHeader,
        StreamConfig,
        StreamRunner,
        SyntheticStreamConfig,
        read_header,
        read_recording,
        synthetic_reads,
        write_recording,
    )

    if args.record and args.replay:
        raise UsageError("--record and --replay are mutually exclusive")

    environment = args.environment
    seed = args.seed
    if args.replay:
        # The recording header pins the deployment it was captured in,
        # so calibration and baseline rebuild deterministically.
        header = read_header(args.replay)
        if header.environment is not None:
            environment = header.environment
        if header.seed is not None:
            seed = header.seed
    if environment not in RFID_ENVIRONMENTS:
        raise UsageError(
            f"environment {environment!r} has no TDM readers to stream from; "
            f"pick from {RFID_ENVIRONMENTS}"
        )

    scene = _build_scene(environment, seed)
    synthetic_cfg = SyntheticStreamConfig(fixes=args.fixes)

    if args.record:
        written = write_recording(
            args.record,
            synthetic_reads(scene, synthetic_cfg, rng=seed + 3),
            RecordingHeader(
                environment=environment,
                seed=seed,
                description=f"synthetic {environment} stream, {args.fixes} fixes",
            ),
        )
        print(f"recorded {written} reads to {args.record}")
        return 0

    dwatch = _calibrated_pipeline(scene, environment, seed)
    runner = StreamRunner(
        dwatch,
        StreamConfig(
            decay=args.decay,
            drift_alpha=args.drift_alpha,
            max_targets=args.max_targets,
        ),
    )
    if args.replay:
        source = read_recording(args.replay)
    else:
        source = synthetic_reads(scene, synthetic_cfg, rng=seed + 3)
    source, injector = _chaos_source(args, scene, seed, source)
    if injector is not None:
        # Fix provenance names the fault kinds active over each window.
        runner.fault_probe = injector.active_kinds
    fix_writer = None
    if args.fix_log:
        from repro.stream.provenance import FixLogHeader, FixLogWriter

        fix_writer = FixLogWriter(
            args.fix_log,
            FixLogHeader(
                environment=environment,
                seed=seed,
                description=f"{environment} stream, {args.fixes} fixes",
            ),
        )
    server = None
    ring = None
    if args.serve_metrics is not None:
        from repro.obs.server import OpsServer, health_document_for
        from repro.stream.provenance import ProvenanceRing

        ring = ProvenanceRing(capacity=256)
        server = OpsServer(
            port=args.serve_metrics,
            health_provider=lambda: health_document_for(runner),
            ring=ring,
        ).start()
        log.info("ops endpoint listening", extra=fields(url=server.url))
    log.info(
        "streaming reads",
        extra=fields(source="replay" if args.replay else "synthetic"),
    )
    windows = 0
    located = 0
    degraded = 0
    try:
        for fix in runner.run(source):
            windows += 1
            if fix.position is not None:
                located += 1
            if fix.quality.degraded:
                degraded += 1
            if fix_writer is not None:
                fix_writer.append(fix)
            if ring is not None:
                ring.push(fix)
            print(_fix_line(fix))
    finally:
        if fix_writer is not None:
            fix_writer.close()
            log.info(
                "fix log written; inspect with `repro provenance`",
                extra=fields(file=args.fix_log, fixes=fix_writer.written),
            )
        if server is not None:
            server.stop()
    stats = runner.queue.stats
    print(
        f"\nwindows {windows}  located {located}  "
        f"late reads {runner.assembler.late_reads}  "
        f"torn sweeps {runner.assembler.torn_sweeps}  "
        f"dropped reads {stats.dropped}"
    )
    if injector is not None:
        injected = ", ".join(
            f"{name} {count}"
            for name, count in sorted(injector.stats.items())
            if count
        )
        print(
            f"chaos {args.chaos}: degraded fixes {degraded}, "
            f"rejected reads {runner.rejected_reads}, "
            f"injected [{injected or 'nothing'}]"
        )
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """Run a stream and report per-reader health and fix quality."""
    from repro.stream import (
        StreamConfig,
        StreamRunner,
        SyntheticStreamConfig,
        synthetic_reads,
    )

    environment = args.environment
    seed = args.seed
    scene = _build_scene(environment, seed)
    dwatch = _calibrated_pipeline(scene, environment, seed)
    runner = StreamRunner(dwatch, StreamConfig(decay=args.decay))
    source = synthetic_reads(
        scene, SyntheticStreamConfig(fixes=args.fixes), rng=seed + 3
    )
    source, injector = _chaos_source(args, scene, seed, source)
    if injector is not None:
        runner.fault_probe = injector.active_kinds
    fixes = list(runner.run(source))

    chaos_note = f", chaos {args.chaos}" if injector is not None else ""
    print(
        f"reader health ({environment}, seed {seed}, "
        f"{args.fixes} fixes{chaos_note})\n"
    )
    header = (
        f"{'reader':<16} {'state':<12} {'reads':>7} {'windows':>9} "
        f"{'rate':>8} {'violations':>11} {'quarantines':>12} {'recoveries':>11}"
    )
    print(header)
    for record in runner.health.report():
        windows = f"{record.windows_contributed}/{record.windows_seen}"
        print(
            f"{record.name:<16} {record.state:<12} {record.reads:>7} "
            f"{windows:>9} {record.read_rate:>8.1f} {record.violations:>11} "
            f"{record.quarantines:>12} {record.recoveries:>11}"
        )
    by_level = {"full": 0, "degraded": 0, "insufficient": 0}
    for fix in fixes:
        by_level[fix.quality.level] = by_level.get(fix.quality.level, 0) + 1
    confidences = [fix.quality.confidence for fix in fixes]
    mean_confidence = sum(confidences) / len(confidences) if confidences else 0.0
    print(
        f"\nfix quality: full {by_level['full']}  "
        f"degraded {by_level['degraded']}  "
        f"insufficient {by_level['insufficient']}  "
        f"mean confidence {mean_confidence:.3f}"
    )
    if injector is not None and injector.total_injected:
        injected = ", ".join(
            f"{name} {count}"
            for name, count in sorted(injector.stats.items())
            if count
        )
        print(f"injected faults: {injected}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Pretty-print a metrics snapshot from a ``--metrics`` JSONL file."""
    from repro.obs.metrics import load_snapshot_jsonl, render_snapshot

    try:
        records = load_snapshot_jsonl(args.file)
    except FileNotFoundError as exc:
        raise UsageError(
            f"no metrics file at {args.file!r}; run a command with "
            "--metrics FILE first (e.g. `repro demo --metrics metrics.jsonl`)"
        ) from exc
    if args.prefix is not None and not any(
        record.get("name", "").startswith(args.prefix) for record in records
    ):
        # A typo'd prefix silently printing an empty table looks like
        # "no metrics were recorded" — fail loudly instead, and name
        # what is actually there.
        available = ", ".join(
            sorted({str(record.get("name", "")) for record in records})[:12]
        )
        raise UsageError(
            f"no metrics in {args.file!r} match prefix {args.prefix!r}; "
            f"available names start with: {available}"
        )
    print(f"metrics snapshot: {args.file}")
    print("\n".join(render_snapshot(records, prefix=args.prefix)))
    return 0


def _provenance_line(fix) -> str:
    """One summary line per logged fix."""
    if fix.position is None:
        where = "no target"
    else:
        where = f"({fix.position[0]:.3f}, {fix.position[1]:.3f})"
    p = fix.provenance
    if p is None:
        return (
            f"fix {fix.index:3d}  t={fix.time_s:.4f}s  {where}  "
            f"{fix.quality_level:<12} (no provenance)"
        )
    contributing = ",".join(p.contributing) or "-"
    faults = ",".join(p.active_faults) or "-"
    return (
        f"fix {fix.index:3d}  t={fix.time_s:.4f}s  {where}  "
        f"{fix.quality_level:<12} path={p.spectral_path:<6} "
        f"readers={contributing}  faults={faults}"
    )


def cmd_provenance(args: argparse.Namespace) -> int:
    """Inspect a fix log written by ``repro stream --fix-log``."""
    import json as _json

    from repro.stream import read_fix_log, read_fix_log_header

    header = read_fix_log_header(args.file)
    fixes = list(read_fix_log(args.file))
    if args.json:
        for fix in fixes:
            record = {
                "index": fix.index,
                "t": fix.time_s,
                "position": (
                    None if fix.position is None else list(fix.position)
                ),
                "predicted_only": fix.predicted_only,
                "quality": fix.quality_level,
                "confidence": fix.confidence,
                "provenance": (
                    None
                    if fix.provenance is None
                    else fix.provenance.to_dict()
                ),
            }
            print(_json.dumps(record, sort_keys=True))
        return 0
    origin = []
    if header.environment is not None:
        origin.append(f"environment {header.environment}")
    if header.seed is not None:
        origin.append(f"seed {header.seed}")
    origin_note = f", {', '.join(origin)}" if origin else ""
    print(f"fix log: {args.file} ({len(fixes)} fixes{origin_note})\n")
    paths: Dict[str, int] = {}
    fault_kinds: Dict[str, int] = {}
    lineage: List[str] = []
    for fix in fixes:
        print(_provenance_line(fix))
        if fix.provenance is None:
            continue
        paths[fix.provenance.spectral_path] = (
            paths.get(fix.provenance.spectral_path, 0) + 1
        )
        for kind in fix.provenance.active_faults:
            fault_kinds[kind] = fault_kinds.get(kind, 0) + 1
        lineage = list(fix.provenance.checkpoint_lineage)
    path_note = (
        "  ".join(f"{name} {count}" for name, count in sorted(paths.items()))
        or "none"
    )
    fault_note = (
        ", ".join(
            f"{kind} ({count} fixes)"
            for kind, count in sorted(fault_kinds.items())
        )
        or "none"
    )
    lineage_note = " -> ".join(lineage) if lineage else "fresh run (no restores)"
    print(
        f"\nspectral paths: {path_note}\n"
        f"faults seen: {fault_note}\n"
        f"checkpoint lineage: {lineage_note}"
    )
    return 0


def cmd_retain(args: argparse.Namespace) -> int:
    """Age out recordings/checkpoints/fix logs under a retention policy."""
    import time

    from repro.stream.retention import (
        RetentionPolicy,
        apply_retention,
        plan_retention,
        scan_artefacts,
    )

    policy = RetentionPolicy(
        max_age_s=(
            None if args.max_age_days is None else args.max_age_days * 86400.0
        ),
        max_total_bytes=(
            None
            if args.max_total_mb is None
            else int(args.max_total_mb * 1024 * 1024)
        ),
        max_count=args.max_count,
    )
    if not policy.bounded:
        raise UsageError(
            "set at least one bound: --max-age-days, --max-total-mb "
            "or --max-count"
        )
    artefacts = scan_artefacts(args.directory)
    plan = plan_retention(artefacts, policy, now_s=time.time())
    mode = "apply" if args.apply else "dry run"
    print(
        f"retention over {args.directory} ({mode}): "
        f"{len(artefacts)} artefacts, keep {len(plan.keep)}, "
        f"delete {len(plan.delete)} ({plan.bytes_freed} bytes)"
    )
    for planned in plan.delete:
        print(
            f"  delete {planned.artefact.path.name}  "
            f"[{planned.artefact.kind}, {planned.artefact.size_bytes} bytes, "
            f"{planned.reason}]"
        )
    if not args.apply:
        if plan.delete:
            print("dry run: nothing deleted (pass --apply to delete)")
        return 0
    removed = apply_retention(plan)
    print(f"deleted {len(removed)} artefacts")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a fleet of tracking deployments behind network ingest."""
    import time

    from repro.obs.server import OpsServer
    from repro.serve import (
        DeploymentRegistry,
        IngestServer,
        ShardSupervisor,
        default_fleet,
    )

    if args.registry is not None:
        registry = DeploymentRegistry.load(args.registry)
    else:
        registry = DeploymentRegistry()
        for spec in default_fleet(
            args.deployments, environment=args.environment, seed=args.seed
        ):
            registry.register(spec)
    if len(registry) == 0:
        raise UsageError("the registry has no deployments to serve")

    supervisor = ShardSupervisor(
        registry,
        checkpoint_dir=args.checkpoint_dir,
        workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        hang_after_s=args.hang_after,
    )
    supervisor.start()
    ingest = IngestServer(supervisor, port=args.port)
    ops = None
    try:
        ingest.start()
        if args.serve_metrics is not None:
            ops = OpsServer(
                port=args.serve_metrics,
                health_provider=supervisor.health_document,
                rings=supervisor.rings(),
            ).start()
            log.info("ops endpoint listening", extra=fields(url=ops.url))
        if args.port_file:
            ports = {"ingest": ingest.port}
            if ops is not None:
                ports["ops"] = ops.port
            with open(args.port_file, "w", encoding="utf-8") as handle:
                json.dump(ports, handle)
        print(
            f"serving {len(registry)} deployments "
            f"({args.workers} workers) on "
            f"{ingest.host}:{ingest.port}"
        )
        deadline = (
            None if args.duration is None else time.time() + args.duration
        )
        try:
            while deadline is None or time.time() < deadline:
                time.sleep(0.2)
        except KeyboardInterrupt:
            log.info("interrupted; draining shards")
    finally:
        if ops is not None:
            ops.stop()
        ingest.stop()
        supervisor.stop(drain=True)
    health = supervisor.health_document()
    for deployment_id in registry.deployment_ids():
        entry = health["deployments"][deployment_id]
        print(
            f"  {deployment_id}: state {entry['state']}  "
            f"fixes {entry['fixes_emitted']}  restarts {entry['restarts']}"
        )
    print(f"total fixes {supervisor.fixes_emitted()}")
    return 0


def _chaos_option(parser: argparse.ArgumentParser) -> None:
    """The shared ``--chaos`` scenario flag (stream + health)."""
    from repro.faults import CHAOS_SCENARIOS

    parser.add_argument(
        "--chaos",
        default="none",
        choices=CHAOS_SCENARIOS,
        help="inject a named fault scenario into the read stream "
        "(default: none)",
    )


def _backend_option(parser: argparse.ArgumentParser) -> None:
    """The shared ``--backend`` dispatch flag (numerics commands).

    Choices are *not* pinned at parser build time: the accepted set
    lives in :mod:`repro.dsp.backend` and unknown names surface as
    :class:`~repro.errors.UsageError` with the known names listed, so
    the parser needs no numpy import just to render ``--help``.
    """
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help="array backend for the batched spectral kernels "
        "(numpy, torch, cupy; default: numpy, or $REPRO_BACKEND). "
        "Unavailable backends fall back to numpy with a warning.",
    )


def _observability_options(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace`` / ``--metrics`` flags."""
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL span trace of the run to FILE",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a JSONL metrics snapshot of the run to FILE",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="D-Watch reproduction: demos, coverage maps, experiments",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress logging (results still print to stdout)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="localize one target end to end")
    demo.add_argument("--environment", default="hall", choices=ENVIRONMENTS)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--x", type=float, default=None)
    demo.add_argument("--y", type=float, default=None)
    _backend_option(demo)
    _observability_options(demo)
    demo.set_defaults(handler=cmd_demo)

    coverage = sub.add_parser("coverage", help="print the coverage map")
    coverage.add_argument("--environment", default="hall", choices=ENVIRONMENTS)
    coverage.add_argument("--seed", type=int, default=1)
    coverage.add_argument("--spacing", type=float, default=0.4)
    coverage.set_defaults(handler=cmd_coverage)

    experiment = sub.add_parser("experiment", help="run a figure reproduction")
    experiment.add_argument("figure")
    experiment.add_argument("--seed", type=int, default=1)
    _backend_option(experiment)
    _observability_options(experiment)
    experiment.set_defaults(handler=cmd_experiment)

    stream = sub.add_parser(
        "stream", help="continuous tracking over a read stream"
    )
    stream.add_argument("--environment", default="hall", choices=RFID_ENVIRONMENTS)
    stream.add_argument("--seed", type=int, default=1)
    stream.add_argument(
        "--fixes",
        type=int,
        default=8,
        help="synthetic stream length in fix windows (default: 8)",
    )
    stream.add_argument(
        "--max-targets", dest="max_targets", type=int, default=1
    )
    stream.add_argument(
        "--decay",
        type=float,
        default=0.8,
        help="covariance forgetting factor in (0, 1] (default: 0.8)",
    )
    stream.add_argument(
        "--drift-alpha",
        dest="drift_alpha",
        type=float,
        default=0.0,
        help="baseline drift EWMA weight; 0 freezes the baseline (default)",
    )
    stream.add_argument(
        "--record",
        metavar="FILE",
        default=None,
        help="write the synthetic read stream to FILE as JSONL and exit",
    )
    stream.add_argument(
        "--replay",
        metavar="FILE",
        default=None,
        help="stream reads from a recording instead of the simulator",
    )
    stream.add_argument(
        "--fix-log",
        dest="fix_log",
        metavar="FILE",
        default=None,
        help="write per-fix provenance to FILE as JSONL "
        "(inspect with `repro provenance`)",
    )
    stream.add_argument(
        "--serve-metrics",
        dest="serve_metrics",
        metavar="PORT",
        type=int,
        default=None,
        help="serve /metrics, /healthz and /provenance/recent on "
        "127.0.0.1:PORT while streaming (0 picks an ephemeral port)",
    )
    _backend_option(stream)
    _chaos_option(stream)
    _observability_options(stream)
    stream.set_defaults(handler=cmd_stream)

    health = sub.add_parser(
        "health", help="per-reader health report over a stream run"
    )
    health.add_argument("--environment", default="hall", choices=RFID_ENVIRONMENTS)
    health.add_argument("--seed", type=int, default=1)
    health.add_argument(
        "--fixes",
        type=int,
        default=8,
        help="synthetic stream length in fix windows (default: 8)",
    )
    health.add_argument(
        "--decay",
        type=float,
        default=0.8,
        help="covariance forgetting factor in (0, 1] (default: 0.8)",
    )
    _backend_option(health)
    _chaos_option(health)
    _observability_options(health)
    health.set_defaults(handler=cmd_health)

    stats = sub.add_parser(
        "stats", help="pretty-print a --metrics JSONL snapshot"
    )
    stats.add_argument(
        "file",
        nargs="?",
        default="metrics.jsonl",
        help="metrics snapshot file (default: metrics.jsonl)",
    )
    stats.add_argument(
        "--prefix",
        default=None,
        help="only show metrics whose name starts with PREFIX",
    )
    stats.set_defaults(handler=cmd_stats)

    provenance = sub.add_parser(
        "provenance", help="inspect a `repro stream --fix-log` recording"
    )
    provenance.add_argument(
        "file",
        nargs="?",
        default="fixes.jsonl",
        help="fix log file (default: fixes.jsonl)",
    )
    provenance.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object per fix instead of the table",
    )
    provenance.set_defaults(handler=cmd_provenance)

    retain = sub.add_parser(
        "retain",
        help="age out recordings/checkpoints under a retention policy",
    )
    retain.add_argument("directory", help="directory to scan")
    retain.add_argument(
        "--max-age-days",
        dest="max_age_days",
        type=float,
        default=None,
        help="delete artefacts older than this many days",
    )
    retain.add_argument(
        "--max-total-mb",
        dest="max_total_mb",
        type=float,
        default=None,
        help="keep newest artefacts until the total exceeds this size",
    )
    retain.add_argument(
        "--max-count",
        dest="max_count",
        type=int,
        default=None,
        help="keep at most this many artefacts (newest first)",
    )
    retain.add_argument(
        "--apply",
        action="store_true",
        help="actually delete; default is a dry run that only reports",
    )
    retain.set_defaults(handler=cmd_retain)

    serve = sub.add_parser(
        "serve",
        help="serve a sharded fleet of deployments behind TCP ingest",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="ingest TCP port (default: 0 = ephemeral)",
    )
    serve.add_argument(
        "--serve-metrics",
        dest="serve_metrics",
        metavar="PORT",
        type=int,
        default=None,
        help="also serve the fleet ops endpoint "
        "(/metrics, /healthz, /provenance/recent) on PORT",
    )
    serve.add_argument(
        "--registry",
        metavar="FILE",
        default=None,
        help="load the deployment registry from a dwatch-registry JSON "
        "file instead of generating a default fleet",
    )
    serve.add_argument(
        "--deployments",
        type=int,
        default=4,
        help="size of the generated default fleet (ignored with "
        "--registry; default: 4)",
    )
    serve.add_argument(
        "--environment",
        default="hall",
        choices=("library", "laboratory", "hall"),
        help="environment of the generated default fleet (default: hall)",
    )
    serve.add_argument("--seed", type=int, default=11)
    serve.add_argument(
        "--workers",
        default="thread",
        choices=("thread", "process"),
        help="shard isolation: in-process worker threads or one "
        "subprocess per deployment (default: thread)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        dest="checkpoint_dir",
        metavar="DIR",
        default=None,
        help="persist per-deployment checkpoints here (enables "
        "crash-restart resume)",
    )
    serve.add_argument(
        "--checkpoint-every",
        dest="checkpoint_every",
        type=int,
        default=0,
        help="checkpoint automatically every N emitted fixes "
        "(default: 0 = only explicit/drain checkpoints)",
    )
    serve.add_argument(
        "--hang-after",
        dest="hang_after",
        metavar="SECONDS",
        type=float,
        default=None,
        help="run a shard watchdog with this liveness deadline: a "
        "shard that stops making progress for SECONDS without dying "
        "is declared hung and recycled through the restart budget "
        "(default: no watchdog)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds then drain and exit "
        "(default: until interrupted)",
    )
    serve.add_argument(
        "--port-file",
        dest="port_file",
        metavar="FILE",
        default=None,
        help="write the bound ports as JSON to FILE once listening",
    )
    serve.set_defaults(handler=cmd_serve)
    return parser


def _run_handler(args: argparse.Namespace) -> int:
    """Dispatch to the subcommand, scoped to the requested backend.

    ``--backend`` selects the array backend for every batched spectral
    kernel the command runs.  An unknown name is a usage error (exit
    2); a known-but-unavailable one (library missing, probe failed)
    degrades to NumPy with a warning, mirroring the library's own
    fallback semantics.
    """
    backend_name = getattr(args, "backend", None)
    if backend_name is None:
        return args.handler(args)
    from repro.dsp.backend import BackendError, use_backend

    try:
        with use_backend(backend_name) as backend:
            if backend.name != backend_name.strip().lower():
                log.warning(
                    "requested backend unavailable; using fallback",
                    extra=fields(requested=backend_name, active=backend.name),
                )
            return args.handler(args)
    except BackendError as exc:
        raise UsageError(str(exc)) from exc


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Library errors (:class:`ReproError`, including bad-usage ones) are
    rendered on stderr with a non-zero exit code instead of escaping as
    tracebacks or bare ``SystemExit``.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(quiet=args.quiet)
    trace_file = getattr(args, "trace", None)
    metrics_file = getattr(args, "metrics", None)
    serve_port = getattr(args, "serve_metrics", None)
    obs_on = bool(trace_file or metrics_file) or serve_port is not None
    if obs_on:
        # --serve-metrics needs a live registry even without --trace or
        # --metrics: the /metrics route renders whatever flows into it.
        obs.configure(trace_file=trace_file, metrics_file=metrics_file)
    try:
        return _run_handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. ``repro stats | head``); exit
        # quietly like other CLIs.  Re-point stdout at devnull so the
        # interpreter's shutdown flush does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    finally:
        if obs_on:
            obs.shutdown()
            if trace_file:
                log.info("trace written", extra=fields(file=trace_file))
            if metrics_file:
                log.info(
                    "metrics written; inspect with `repro stats`",
                    extra=fields(file=metrics_file),
                )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
