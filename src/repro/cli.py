"""Command-line interface: ``python -m repro <command>``.

Three subcommands cover the tasks a user reaches for first:

* ``demo``      — calibrate, baseline and localize one target in a
  chosen environment, printing the likelihood heat map.
* ``coverage``  — print the deployment's coverage/deadzone map.
* ``experiment``— run one figure reproduction by name.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.constants import TABLE_GRID_CELL_M


ENVIRONMENTS = ("library", "laboratory", "hall", "table", "wifi-office")


def _build_scene(name: str, seed: int):
    from repro.sim.environments import (
        hall_scene,
        laboratory_scene,
        library_scene,
        table_scene,
    )
    from repro.wifi import wifi_office_scene

    makers = {
        "library": library_scene,
        "laboratory": laboratory_scene,
        "hall": hall_scene,
        "table": table_scene,
        "wifi-office": wifi_office_scene,
    }
    if name not in makers:
        raise SystemExit(f"unknown environment {name!r}; pick from {ENVIRONMENTS}")
    return makers[name](rng=seed)


def cmd_demo(args: argparse.Namespace) -> int:
    """Localize one target and show the evidence surface."""
    from repro.core.pipeline import DWatch
    from repro.geometry.point import Point
    from repro.sim.measurement import MeasurementSession
    from repro.sim.target import human_target
    from repro.viz import render_likelihood, render_scene

    scene = _build_scene(args.environment, args.seed)
    print("\n".join(render_scene(scene)))
    cell = TABLE_GRID_CELL_M if args.environment == "table" else 0.05
    dwatch = DWatch(scene, cell_size=cell)
    print("calibrating readers over the air...")
    dwatch.calibrate(rng=args.seed + 1)
    session = MeasurementSession(scene, rng=args.seed + 2)
    dwatch.collect_baseline([session.capture() for _ in range(3)])

    if args.x is not None and args.y is not None:
        position = Point(args.x, args.y)
    else:
        position = scene.room.center
    target = human_target(position)
    measurement = session.capture([target])
    evidence = dwatch.evidence(measurement)
    estimates = dwatch.localize(measurement)
    print("\nlikelihood surface (X = true position):")
    print(
        "\n".join(
            render_likelihood(dwatch.likelihood_map, evidence, truth=position)
        )
    )
    if estimates:
        estimate = estimates[0]
        error = target.localization_error(estimate.position)
        print(
            f"\nestimate ({estimate.position.x:.2f}, {estimate.position.y:.2f})"
            f"  true ({position.x:.2f}, {position.y:.2f})"
            f"  error {error * 100:.1f} cm"
        )
    else:
        print("\ntarget not localizable from here (deadzone)")
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    """Print the coverage/deadzone map of a deployment."""
    from repro.sim.coverage import analyze_coverage

    scene = _build_scene(args.environment, args.seed)
    coverage = analyze_coverage(scene, grid_spacing=args.spacing)
    print("\n".join(coverage.ascii_map()))
    print(
        f"\ncoverage {coverage.coverage_rate:.0%}  "
        f"deadzone {coverage.deadzone_rate:.0%}  "
        f"('#' localizable, '+' one reader, '.' deadzone)"
    )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one figure reproduction by its short name."""
    import repro.experiments as experiments

    runners: Dict[str, Callable] = {
        "fig03": lambda: experiments.run_fig03(rng=args.seed),
        "fig04": lambda: experiments.run_fig04(rng=args.seed),
        "fig09": lambda: experiments.run_fig09(trials=2, rng=args.seed),
        "fig10": lambda: experiments.run_fig10(trials=3, rng=args.seed),
        "fig12": lambda: experiments.run_fig12(rng=args.seed),
        "fig13": lambda: experiments.run_fig13(trials=6, rng=args.seed),
        "fig14": lambda: experiments.run_fig14(num_locations=12, rng=args.seed),
        "fig15": lambda: experiments.run_fig15(num_locations=8, rng=args.seed),
        "fig16": lambda: experiments.run_fig16(num_locations=10, rng=args.seed),
        "fig17": lambda: experiments.run_fig17(num_locations=10, rng=args.seed),
        "fig18": lambda: experiments.run_fig18(num_locations=8, rng=args.seed),
        "fig19": lambda: experiments.run_fig19(snapshots=4, rng=args.seed),
        "fig21": lambda: experiments.run_fig21(rng=args.seed),
        "latency": lambda: experiments.run_latency(fixes=8, rng=args.seed),
    }
    if args.figure not in runners:
        raise SystemExit(
            f"unknown figure {args.figure!r}; pick from {sorted(runners)}"
        )
    result = runners[args.figure]()
    print("\n".join(result.rows()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="D-Watch reproduction: demos, coverage maps, experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="localize one target end to end")
    demo.add_argument("--environment", default="hall", choices=ENVIRONMENTS)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--x", type=float, default=None)
    demo.add_argument("--y", type=float, default=None)
    demo.set_defaults(handler=cmd_demo)

    coverage = sub.add_parser("coverage", help="print the coverage map")
    coverage.add_argument("--environment", default="hall", choices=ENVIRONMENTS)
    coverage.add_argument("--seed", type=int, default=1)
    coverage.add_argument("--spacing", type=float, default=0.4)
    coverage.set_defaults(handler=cmd_coverage)

    experiment = sub.add_parser("experiment", help="run a figure reproduction")
    experiment.add_argument("figure")
    experiment.add_argument("--seed", type=int, default=1)
    experiment.set_defaults(handler=cmd_experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
