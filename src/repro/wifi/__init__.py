"""Wi-Fi extension: D-Watch on OFDM channel state information.

Section 9 of the paper: "D-Watch ... can be extended to work with other
RF technologies".  Wi-Fi is the natural first target — MIMO APs already
carry antenna arrays and expose per-subcarrier CSI.  This subpackage
provides the pieces that differ from the RFID stack:

* an OFDM **CSI model**: per-subcarrier complex channel matrices whose
  frequency-dependent phases encode path *delays* on top of the
  antenna-dimension angles;
* **subcarrier diversity**: using subcarriers as extra looks at the
  channel decorrelates coherent multipath without sacrificing array
  aperture (the trick Wi-Fi systems like SpotFi rely on);
* an **office scene preset** with APs at 5.18 GHz and unmodified,
  arbitrarily placed Wi-Fi transmitters standing in for tags.

Everything else — P-MUSIC, drop detection, the likelihood grid —
is reused verbatim from the core stack, which is the point.
"""

from repro.wifi.csi import CsiConfig, csi_matrix, csi_snapshots
from repro.wifi.estimator import WidebandPMusic
from repro.wifi.scene import wifi_office_scene, WIFI_CENTER_FREQUENCY_HZ

__all__ = [
    "CsiConfig",
    "csi_matrix",
    "csi_snapshots",
    "WidebandPMusic",
    "wifi_office_scene",
    "WIFI_CENTER_FREQUENCY_HZ",
]
