"""Wi-Fi deployment presets.

APs stand in for RFID readers, ambient Wi-Fi transmitters (IoT plugs,
printers, laptops) stand in for tags.  Geometry and the multipath
machinery are reused from the core stack — the only changes are the
carrier (5.18 GHz, channel 36) and the correspondingly tighter array.
"""

from __future__ import annotations

import math

from repro.constants import SPEED_OF_LIGHT
from repro.geometry.point import Point
from repro.geometry.shapes import Rectangle
from repro.rf.array import UniformLinearArray
from repro.rfid.reader import Reader
from repro.rfid.tag import Tag
from repro.sim.deployment import random_tag_positions
from repro.sim.environments import _scattered_reflectors
from repro.sim.scene import Scene
from repro.utils.rng import RngLike, ensure_rng

#: 802.11 channel 36 centre frequency.
WIFI_CENTER_FREQUENCY_HZ = 5.18e9

#: Wavelength at channel 36 (~5.8 cm).
WIFI_WAVELENGTH_M = SPEED_OF_LIGHT / WIFI_CENTER_FREQUENCY_HZ


def wifi_office_scene(
    rng: RngLike = None,
    num_transmitters: int = 12,
    num_antennas: int = 8,
    num_reflectors: int = 8,
) -> Scene:
    """An 8 m x 8 m office with two wall-mounted APs.

    Transmitter positions are unknown to the localizer, exactly like
    the RFID tags; the AP antenna arrays use half-wavelength spacing at
    5.18 GHz, so a full 8-element array spans only ~20 cm — easily
    hidden in an AP enclosure (the form-factor argument of ArrayTrack).
    """
    generator = ensure_rng(rng)
    room = Rectangle(0.0, 0.0, 8.0, 8.0)
    spacing = WIFI_WAVELENGTH_M / 2.0

    def ap(midpoint: Point, orientation: float, name: str) -> Reader:
        probe = UniformLinearArray(
            reference=midpoint,
            orientation=orientation,
            num_antennas=num_antennas,
            spacing_m=spacing,
            wavelength_m=WIFI_WAVELENGTH_M,
        )
        half_span = (probe.num_antennas - 1) * probe.spacing_m / 2.0
        array = UniformLinearArray(
            reference=midpoint - probe.axis * half_span,
            orientation=orientation,
            num_antennas=num_antennas,
            spacing_m=spacing,
            wavelength_m=WIFI_WAVELENGTH_M,
            name=f"array-{name}",
        )
        return Reader(
            array=array, name=f"ap-{name}", max_range_m=30.0, rng=generator
        )

    readers = [
        ap(Point(4.0, 0.1), 0.0, "south"),
        ap(Point(0.1, 4.0), math.pi / 2.0, "west"),
    ]
    transmitters = [
        Tag(position=p)
        for p in random_tag_positions(room, num_transmitters, generator)
    ]
    reflectors = _scattered_reflectors(
        room, num_reflectors, generator, plate_length=1.0, coefficient=0.7,
        prefix="cabinet",
    )
    return Scene(
        room=room,
        readers=readers,
        tags=transmitters,
        reflectors=reflectors,
        frequency_hz=WIFI_CENTER_FREQUENCY_HZ,
        name="wifi-office",
    )
