"""Wideband P-MUSIC: subcarrier diversity as extra channel looks.

RFID backscatter gives temporal snapshots of one *coherent* channel, so
the RFID stack decorrelates paths with spatial smoothing at the cost of
aperture.  OFDM CSI offers a better decorrelator for free: each path's
delay rotates its phase differently across subcarriers, so stacking
subcarriers as "snapshots" yields a covariance whose signal subspace
spans the individual path steering vectors at full aperture.  On top of
that covariance the estimator is plain P-MUSIC: normalized MUSIC for
angles, Bartlett for per-direction power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.dsp.bartlett import bartlett_power_spectrum
from repro.dsp.music import (
    eigendecompose,
    estimate_num_sources,
    music_spectrum_from_subspace,
)
from repro.dsp.peaks import find_spectrum_peaks
from repro.dsp.pmusic import normalize_peaks
from repro.dsp.spectrum import AngularSpectrum, SpectrumPeak
from repro.errors import EstimationError


@dataclass
class WidebandPMusic:
    """P-MUSIC over CSI reports of shape ``(M, K, N)``.

    Parameters
    ----------
    spacing_m, wavelength_m:
        Array geometry at the centre frequency (per-subcarrier
        wavelength deviations across a 40 MHz channel at 5 GHz are
        below 1 % and absorbed into the noise subspace).
    num_sources:
        Fixed model order; estimated from eigenvalues when ``None``.
    angle_grid:
        Scan grid; defaults to the shared 0.5-degree grid.
    """

    spacing_m: float
    wavelength_m: float
    num_sources: Optional[int] = None
    angle_grid: Optional[np.ndarray] = None
    source_threshold_ratio: float = 0.03

    def covariance(self, reports: np.ndarray) -> np.ndarray:
        """Antenna covariance with subcarriers and packets as looks."""
        x = self._flatten(reports)
        return x @ x.conj().T / x.shape[1]

    def spectrum(self, reports: np.ndarray) -> AngularSpectrum:
        """The P-MUSIC spectrum of a CSI report block."""
        r = self.covariance(reports)
        eigenvalues, eigenvectors = eigendecompose(r)
        p = self.num_sources
        if p is None:
            p = estimate_num_sources(
                eigenvalues,
                self.source_threshold_ratio,
                max_sources=r.shape[0] - 1,
            )
        un = eigenvectors[:, p:]
        music = music_spectrum_from_subspace(
            un, self.spacing_m, self.wavelength_m, self.angle_grid
        )
        normalized = normalize_peaks(music)
        power = bartlett_power_spectrum(
            self._flatten(reports),
            self.spacing_m,
            self.wavelength_m,
            normalized.angles,
        )
        return AngularSpectrum(
            normalized.angles.copy(), power.values * normalized.values
        )

    def estimate_paths(
        self, reports: np.ndarray, max_peaks: Optional[int] = None
    ) -> List[SpectrumPeak]:
        """Per-path (angle, power) estimates, strongest first."""
        peaks = find_spectrum_peaks(self.spectrum(reports))
        if max_peaks is not None:
            peaks = peaks[:max_peaks]
        return peaks

    def _flatten(self, reports: np.ndarray) -> np.ndarray:
        x = np.asarray(reports, dtype=complex)
        if x.ndim == 2:
            return x
        if x.ndim != 3:
            raise EstimationError("CSI reports must be (M, K) or (M, K, N)")
        m = x.shape[0]
        return x.reshape(m, -1)
