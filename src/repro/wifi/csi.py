"""OFDM channel state information for a multipath channel.

A Wi-Fi receiver reports one complex channel coefficient per (antenna,
subcarrier).  For the path set of a
:class:`~repro.rf.channel.MultipathChannel`, subcarrier ``k`` at
frequency ``f_k`` sees

    H[m, k] = sum_p  g_p * a_{f_k}(theta_p)_m * exp(-j 2 pi (f_k - f_c) tau_p)

where ``tau_p`` is the path's propagation delay.  The delay term is the
new information relative to narrowband RFID: paths at similar angles
but different lengths separate across frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.rf.array import steering_vector
from repro.rf.channel import MultipathChannel
from repro.rf.noise import awgn, noise_power_for_snr
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class CsiConfig:
    """OFDM sounding parameters.

    Defaults follow the classic Intel 5300 CSI tool: 30 reported
    subcarrier groups across a 40 MHz channel.
    """

    num_subcarriers: int = 30
    bandwidth_hz: float = 40e6

    def __post_init__(self) -> None:
        if self.num_subcarriers < 1:
            raise ConfigurationError("need at least one subcarrier")
        if self.bandwidth_hz <= 0.0:
            raise ConfigurationError("bandwidth must be positive")

    def subcarrier_offsets(self) -> np.ndarray:
        """Baseband frequency offset of each subcarrier (Hz)."""
        if self.num_subcarriers == 1:
            return np.zeros(1)
        return np.linspace(
            -self.bandwidth_hz / 2.0,
            self.bandwidth_hz / 2.0,
            self.num_subcarriers,
        )


def csi_matrix(
    channel: MultipathChannel,
    config: Optional[CsiConfig] = None,
    center_frequency_hz: Optional[float] = None,
) -> np.ndarray:
    """Noise-free CSI, shape ``(M, K)`` for M antennas and K subcarriers.

    The antenna-dimension steering uses each subcarrier's own
    wavelength (the array spacing is fixed in metres, so electrical
    spacing varies slightly across the band), and the per-path delay
    rotates across frequency.
    """
    config = config or CsiConfig()
    array = channel.array
    if center_frequency_hz is None:
        center_frequency_hz = SPEED_OF_LIGHT / array.wavelength_m
    offsets = config.subcarrier_offsets()
    csi = np.zeros((array.num_antennas, config.num_subcarriers), dtype=complex)
    for path in channel.paths:
        delay = path.length / SPEED_OF_LIGHT
        for k, offset in enumerate(offsets):
            frequency = center_frequency_hz + offset
            wavelength = SPEED_OF_LIGHT / frequency
            a = steering_vector(
                path.aoa, array.num_antennas, array.spacing_m, wavelength
            )
            rotation = np.exp(-1j * 2.0 * math.pi * offset * delay)
            csi[:, k] += path.gain * a * rotation
    return csi


def csi_snapshots(
    channel: MultipathChannel,
    num_packets: int,
    config: Optional[CsiConfig] = None,
    snr_db: float = 25.0,
    phase_offsets: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Noisy CSI reports over several packets, shape ``(M, K, N)``.

    Each packet re-measures the same channel with fresh receiver noise;
    ``phase_offsets`` model the AP's uncalibrated chains exactly as on
    the RFID reader.
    """
    if num_packets < 1:
        raise ConfigurationError("need at least one packet")
    config = config or CsiConfig()
    generator = ensure_rng(rng)
    clean = csi_matrix(channel, config)
    peak_power = float(np.max(np.abs(clean) ** 2)) if clean.size else 0.0
    noise_power = noise_power_for_snr(peak_power, snr_db)
    m, k = clean.shape
    reports = np.repeat(clean[:, :, None], num_packets, axis=2)
    reports = reports + awgn((m, k, num_packets), noise_power, generator)
    if phase_offsets is not None:
        offsets = np.asarray(phase_offsets, dtype=float)
        if offsets.shape != (m,):
            raise ConfigurationError(
                f"phase_offsets must have shape ({m},), got {offsets.shape}"
            )
        reports = np.exp(1j * offsets)[:, None, None] * reports
    return reports
