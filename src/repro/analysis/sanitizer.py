"""Runtime lock sanitizer: instrumented locks for the threaded layers.

The static concurrency rules (RL007-RL010 in ``tools/reprolint``) prove
lock *discipline* lexically; this module witnesses it *dynamically*.  A
:func:`sanitized_lock` is a drop-in ``threading.Lock`` replacement used
by every threaded runtime component (the bounded read queue, the
provenance ring, the metrics registry, the tracer, the ops server).
With the ``REPRO_DEBUG`` gate off — the default — the factory returns a
plain ``threading.Lock`` object, so production runs carry **zero**
instrumentation and are bit-identical to an unsanitized build: the same
contract :mod:`repro.analysis.contracts` makes.

With ``REPRO_DEBUG=1`` the factory returns a :class:`SanitizedLock`
that reports every acquisition to the process-wide
:class:`LockMonitor`, which maintains:

* the **acquisition graph** — a directed edge ``A -> B`` whenever a
  thread acquires ``B`` while holding ``A``.  A cycle in that graph is
  a lock-order inversion (two code paths disagree about ordering, the
  precondition of every deadlock) and is recorded the moment the
  closing edge appears — no actual deadlock needs to occur.
* **hold-time outliers** — acquisitions held longer than
  :attr:`LockMonitor.hold_warn_s` (a lock held across blocking work is
  the runtime twin of static rule RL009).
* **unguarded-access witnesses** — fed by :func:`probe_unguarded`, a
  lightweight attribute-access probe tests wrap around a shared object
  to catch reads/writes of guarded attributes while the guarding lock
  is *not* held by the accessing thread (the runtime twin of RL007).

:func:`report` renders everything as a deterministically-sorted
JSON-ready document; ``scripts/check.sh`` runs a stream under the
sanitizer and asserts the report is free of inversions and witnesses.

The wrapper implements the lock protocol ``threading.Condition``
expects (``acquire``/``release``/``locked`` plus ``_is_owned``), so
``Condition(sanitized_lock(...))`` works unchanged — ``wait()`` routes
its release/re-acquire pairs through the wrapper, which keeps hold-time
accounting honest across condition waits.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Set, Tuple, cast

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Default hold-time threshold (seconds) above which an acquisition is
#: recorded as an outlier.  Override per-process with
#: ``REPRO_SANITIZER_HOLD_MS``.
DEFAULT_HOLD_WARN_S = 0.05

#: Bound on every per-category record list so a long sanitized soak
#: cannot grow the monitor without limit.
MAX_RECORDS = 256


def sanitizer_enabled() -> bool:
    """Whether ``REPRO_DEBUG`` currently enables lock sanitizing."""
    return os.environ.get("REPRO_DEBUG", "").strip().lower() in _TRUTHY


def _hold_warn_s() -> float:
    raw = os.environ.get("REPRO_SANITIZER_HOLD_MS", "").strip()
    if not raw:
        return DEFAULT_HOLD_WARN_S
    try:
        return max(0.0, float(raw)) / 1e3
    except ValueError:
        return DEFAULT_HOLD_WARN_S


class LockMonitor:
    """Process-wide sink for every sanitized lock event.

    Thread-safety note: the monitor's own bookkeeping is guarded by a
    private plain ``threading.Lock`` (never a sanitized one — the
    monitor must not observe itself), and per-thread held-lock stacks
    live in a ``threading.local`` so the hot path never contends.
    """

    def __init__(self, hold_warn_s: Optional[float] = None) -> None:
        self.hold_warn_s = (
            _hold_warn_s() if hold_warn_s is None else hold_warn_s
        )
        self._lock = threading.Lock()
        self._held = threading.local()
        self._acquisitions: Dict[str, int] = {}
        self._hold_max_s: Dict[str, float] = {}
        self._hold_total_s: Dict[str, float] = {}
        self._edges: Dict[str, Set[str]] = {}
        self._inversions: List[Dict[str, str]] = []
        self._outliers: List[Dict[str, object]] = []
        self._witnesses: List[Dict[str, str]] = []

    # -- per-thread held stack ---------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return cast(List[str], stack)

    def held_names(self) -> Tuple[str, ...]:
        """Sanitized-lock names the *current thread* holds, outermost first."""
        return tuple(self._stack())

    # -- lock events ---------------------------------------------------

    def note_acquired(self, name: str) -> None:
        """Record one successful acquisition by the current thread."""
        stack = self._stack()
        held = list(stack)
        stack.append(name)
        with self._lock:
            self._acquisitions[name] = self._acquisitions.get(name, 0) + 1
            for outer in held:
                if outer == name:
                    continue
                targets = self._edges.setdefault(outer, set())
                if name not in targets:
                    targets.add(name)
                    self._check_inversion_locked(outer, name)

    def note_released(self, name: str, hold_s: float) -> None:
        """Record one release (with the measured hold time)."""
        stack = self._stack()
        if name in stack:
            # Remove the innermost matching entry; out-of-order release
            # of distinct locks is legal (``with a, b`` unwinds b, a).
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] == name:
                    del stack[index]
                    break
        with self._lock:
            self._hold_total_s[name] = (
                self._hold_total_s.get(name, 0.0) + hold_s
            )
            if hold_s > self._hold_max_s.get(name, 0.0):
                self._hold_max_s[name] = hold_s
            if (
                hold_s > self.hold_warn_s
                and len(self._outliers) < MAX_RECORDS
            ):
                self._outliers.append(
                    {
                        "lock": name,
                        "hold_ms": round(hold_s * 1e3, 3),
                        "thread": threading.current_thread().name,
                    }
                )

    def note_witness(self, owner: str, attribute: str, lock: str) -> None:
        """Record one unguarded access seen by :func:`probe_unguarded`."""
        with self._lock:
            if len(self._witnesses) < MAX_RECORDS:
                self._witnesses.append(
                    {
                        "owner": owner,
                        "attribute": attribute,
                        "lock": lock,
                        "thread": threading.current_thread().name,
                    }
                )

    def _check_inversion_locked(self, outer: str, inner: str) -> None:
        """Adding ``outer -> inner``: does a path ``inner => outer`` exist?

        Caller holds ``self._lock``.  The graph is tiny (one node per
        lock *name*), so a plain DFS is plenty.
        """
        seen: Set[str] = set()
        frontier = [inner]
        while frontier:
            node = frontier.pop()
            if node == outer:
                if len(self._inversions) < MAX_RECORDS:
                    self._inversions.append(
                        {
                            "first": f"{inner} -> {outer}",
                            "second": f"{outer} -> {inner}",
                            "thread": threading.current_thread().name,
                        }
                    )
                return
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._edges.get(node, ()))

    # -- reporting -----------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """The JSON-ready sanitizer report, deterministically sorted."""
        with self._lock:
            locks = {
                name: {
                    "acquisitions": self._acquisitions[name],
                    "hold_max_ms": round(
                        self._hold_max_s.get(name, 0.0) * 1e3, 3
                    ),
                    "hold_mean_ms": round(
                        self._hold_total_s.get(name, 0.0)
                        / self._acquisitions[name]
                        * 1e3,
                        3,
                    ),
                }
                for name in sorted(self._acquisitions)
            }
            edges = sorted(
                f"{source} -> {target}"
                for source, targets in self._edges.items()
                for target in targets
            )
            inversions = sorted(
                self._inversions, key=lambda r: (r["first"], r["second"])
            )
            outliers = sorted(
                self._outliers,
                key=lambda r: (str(r["lock"]), -float(cast(float, r["hold_ms"]))),
            )
            witnesses = sorted(
                self._witnesses,
                key=lambda r: (r["owner"], r["attribute"], r["thread"]),
            )
        return {
            "enabled": sanitizer_enabled(),
            "hold_warn_ms": round(self.hold_warn_s * 1e3, 3),
            "locks": locks,
            "edges": edges,
            "inversions": inversions,
            "hold_outliers": outliers,
            "witnesses": witnesses,
        }

    def reset(self) -> None:
        """Forget everything recorded so far (held stacks included)."""
        with self._lock:
            self._acquisitions.clear()
            self._hold_max_s.clear()
            self._hold_total_s.clear()
            self._edges.clear()
            self._inversions.clear()
            self._outliers.clear()
            self._witnesses.clear()
        # Thread-confined by construction (threading.local).
        self._held = threading.local()  # reprolint: lockfree


#: The process-wide monitor every sanitized lock reports to.
MONITOR = LockMonitor()


class SanitizedLock:
    """A ``threading.Lock`` wrapper that reports to a :class:`LockMonitor`.

    Non-reentrant, like the lock it wraps.  Implements the protocol
    ``threading.Condition`` relies on (``acquire``/``release`` plus
    ``_is_owned``), so it is a drop-in replacement wherever the library
    builds a condition around its lock.
    """

    __slots__ = ("name", "monitor", "_inner", "_owner", "_acquired_at")

    def __init__(
        self, name: str, monitor: Optional[LockMonitor] = None
    ) -> None:
        self.name = name
        self.monitor = monitor if monitor is not None else MONITOR
        self._inner = threading.Lock()
        # Guarded by _inner *semantically*: only the thread that holds
        # the inner lock ever writes these, which no lexical with-block
        # can express — hence the explicit exemptions.
        self._owner: Optional[int] = None  # reprolint: lockfree
        self._acquired_at = 0.0  # reprolint: lockfree

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._owner = threading.get_ident()
            self._acquired_at = time.perf_counter()
            self.monitor.note_acquired(self.name)
        return ok

    def release(self) -> None:
        hold_s = time.perf_counter() - self._acquired_at
        self._owner = None
        self._inner.release()
        self.monitor.note_released(self.name, hold_s)

    def locked(self) -> bool:
        return self._inner.locked()

    def _is_owned(self) -> bool:
        """``threading.Condition`` protocol hook (also used by the probe)."""
        return self._owner == threading.get_ident()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<SanitizedLock {self.name!r} {state}>"


def sanitized_lock(name: str, *, force: bool = False) -> threading.Lock:
    """A lock for a threaded component: instrumented only in debug mode.

    With ``REPRO_DEBUG`` unset this returns a plain ``threading.Lock``
    — the production path allocates nothing extra and observes nothing.
    With the gate on (or ``force=True``, used by tests) it returns a
    :class:`SanitizedLock` reporting to the process-wide monitor.  The
    return type is declared ``threading.Lock`` because the wrapper is a
    faithful duck-type of it (including the ``Condition`` protocol);
    callers never need to know which they got.
    """
    if force or sanitizer_enabled():
        return cast(threading.Lock, SanitizedLock(name))
    return threading.Lock()


class _ProbeExit:
    """Restores the probed object's original class on exit."""

    __slots__ = ("_target", "_original")

    def __init__(self, target: Any, original: type) -> None:
        self._target = target
        self._original = original

    def __enter__(self) -> Any:
        return self._target

    def __exit__(self, *exc_info: object) -> None:
        object.__setattr__(self._target, "__class__", self._original)


def probe_unguarded(
    target: Any,
    attributes: Tuple[str, ...],
    lock: Any,
    monitor: Optional[LockMonitor] = None,
) -> _ProbeExit:
    """Watch ``target`` for accesses to ``attributes`` without ``lock`` held.

    A test-side probe: wraps the object's class with one whose
    ``__getattribute__``/``__setattr__`` report a witness to the
    monitor whenever a watched attribute is touched while the guarding
    lock is not held *by the accessing thread*.  Requires ``lock`` to
    be a :class:`SanitizedLock` (only it knows its owner); a plain lock
    raises ``TypeError`` so a misconfigured test fails loudly instead
    of silently probing nothing.

    Use as a context manager::

        with probe_unguarded(queue, ("_items",), queue._lock):
            ... exercise the queue from several threads ...

    The probe itself is intentionally heavyweight (every attribute
    access takes a Python-level detour) and exists for tests only — it
    is never wired into production objects.
    """
    if not isinstance(lock, SanitizedLock):
        raise TypeError(
            "probe_unguarded needs a SanitizedLock (create the object "
            "under REPRO_DEBUG=1 or with force=True)"
        )
    sink = monitor if monitor is not None else MONITOR
    watched = frozenset(attributes)
    original = type(target)
    owner = original.__name__
    guard = lock

    def _note(name: str) -> None:
        if name in watched and not guard._is_owned():
            sink.note_witness(owner, name, guard.name)

    class _Probed(original):  # type: ignore
        def __getattribute__(self, name: str) -> Any:
            _note(name)
            return object.__getattribute__(self, name)

        def __setattr__(self, name: str, value: Any) -> None:
            _note(name)
            object.__setattr__(self, name, value)

    _Probed.__name__ = f"Probed{owner}"
    object.__setattr__(target, "__class__", _Probed)
    return _ProbeExit(target, original)


def report() -> Dict[str, Any]:
    """The process-wide monitor's report (see :meth:`LockMonitor.report`)."""
    return MONITOR.report()


def write_report(path: str) -> Dict[str, Any]:
    """Write the report as pretty JSON; returns the report dict."""
    document = report()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def reset() -> None:
    """Reset the process-wide monitor (between tests)."""
    MONITOR.reset()


__all__ = [
    "DEFAULT_HOLD_WARN_S",
    "LockMonitor",
    "MONITOR",
    "SanitizedLock",
    "probe_unguarded",
    "report",
    "reset",
    "sanitized_lock",
    "sanitizer_enabled",
    "write_report",
]
