"""Debug-mode runtime analysis: array shape/dtype/finiteness contracts.

The decorators in :mod:`repro.analysis.contracts` validate the arrays
flowing through the signal core when ``REPRO_DEBUG=1`` and are exact
no-ops otherwise — disabled runs execute the original, undecorated
function objects, so the production path stays bit-identical (the same
guarantee :mod:`repro.obs` makes for instrumentation).
"""

from repro.analysis.contracts import (
    check_shapes,
    contracts_enabled,
    ensure_finite,
)

__all__ = ["check_shapes", "contracts_enabled", "ensure_finite"]
