"""Debug-mode runtime analysis: array contracts and the lock sanitizer.

The decorators in :mod:`repro.analysis.contracts` validate the arrays
flowing through the signal core when ``REPRO_DEBUG=1`` and are exact
no-ops otherwise — disabled runs execute the original, undecorated
function objects, so the production path stays bit-identical (the same
guarantee :mod:`repro.obs` makes for instrumentation).

:mod:`repro.analysis.sanitizer` extends the same gate to concurrency:
:func:`sanitized_lock` hands the threaded runtime components plain
``threading.Lock`` objects in production and monitor-reporting wrappers
under ``REPRO_DEBUG=1``, recording the lock acquisition graph,
lock-order inversions, hold-time outliers and unguarded-access
witnesses.
"""

from repro.analysis.contracts import (
    check_shapes,
    contracts_enabled,
    ensure_finite,
)
from repro.analysis.sanitizer import (
    LockMonitor,
    SanitizedLock,
    probe_unguarded,
    sanitized_lock,
    sanitizer_enabled,
)

__all__ = [
    "LockMonitor",
    "SanitizedLock",
    "check_shapes",
    "contracts_enabled",
    "ensure_finite",
    "probe_unguarded",
    "sanitized_lock",
    "sanitizer_enabled",
]
