"""Array contracts for the signal core: shape, dtype and finiteness.

The MUSIC/P-MUSIC chain moves arrays whose shapes encode physics — a
``(M, N)`` snapshot matrix becomes a ``(M, M)`` Hermitian covariance
becomes a ``(M, M - P)`` noise subspace — and a silent shape or dtype
slip usually survives all the way to a wrong spectrum rather than a
crash.  This module provides two decorators that make those contracts
explicit and *checkable*:

* :func:`check_shapes` — declares a shape/dtype spec per argument (and
  optionally for the return value) in a tiny string language::

      @check_shapes(snapshots="M,N", returns="complex:M,M")
      def sample_covariance(snapshots): ...

  Dimension letters bind on first use and must agree everywhere they
  reappear in the same call; integer literals must match exactly; ``*``
  matches anything.  A ``complex:`` / ``float:`` prefix additionally
  pins the dtype kind.
* :func:`ensure_finite` — rejects NaN/Inf in any array argument or
  returned array.

Both are **debug-mode sanitizers**, enabled by ``REPRO_DEBUG=1`` (or
``true``/``yes``/``on``).  When the gate is off the decorators return
the original function object untouched, so the production call path is
the undecorated function — zero overhead and bit-identical results,
the same guarantee the :mod:`repro.obs` layer makes.  The gate is read
at decoration (import) time; set the environment variable before
importing :mod:`repro`.  Violations raise
:class:`repro.errors.ContractViolation`.
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar, Union, cast

import numpy as np

from repro.errors import ContractViolation

F = TypeVar("F", bound=Callable[..., Any])

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Special spec key naming the return value instead of a parameter.
RETURNS_KEY = "returns"

_DIM_RE = re.compile(r"^(?:[A-Za-z][A-Za-z0-9_]*|[0-9]+|\*)$")

_DTYPE_KINDS = {
    "complex": ("c",),
    "float": ("f",),
    "int": ("i", "u"),
}


def contracts_enabled() -> bool:
    """Whether ``REPRO_DEBUG`` currently enables the sanitizers."""
    return os.environ.get("REPRO_DEBUG", "").strip().lower() in _TRUTHY


class _Spec:
    """A parsed ``"dtype:dim,dim,..."`` contract string."""

    __slots__ = ("source", "kind", "dims")

    def __init__(self, source: str, kind: Optional[str], dims: Tuple[str, ...]) -> None:
        self.source = source
        self.kind = kind
        self.dims = dims


def _parse_spec(source: str, owner: str, name: str) -> _Spec:
    text = source.strip()
    kind: Optional[str] = None
    if ":" in text:
        prefix, _, text = text.partition(":")
        prefix = prefix.strip()
        if prefix not in _DTYPE_KINDS:
            raise ContractViolation(
                f"{owner}: spec for {name!r} has unknown dtype prefix {prefix!r} "
                f"(expected one of {sorted(_DTYPE_KINDS)})"
            )
        kind = prefix
    dims = tuple(token.strip() for token in text.split(","))
    for token in dims:
        if not _DIM_RE.match(token):
            raise ContractViolation(
                f"{owner}: spec for {name!r} has invalid dimension token {token!r} "
                f"(expected a name, an integer or '*')"
            )
    return _Spec(source, kind, dims)


def _check_value(
    owner: str,
    name: str,
    spec: _Spec,
    value: Any,
    bindings: Dict[str, int],
) -> None:
    array = np.asarray(value)
    if spec.kind is not None and array.dtype.kind not in _DTYPE_KINDS[spec.kind]:
        raise ContractViolation(
            f"{owner}: {name} expected {spec.kind} dtype per spec {spec.source!r}, "
            f"got dtype {array.dtype}"
        )
    if array.ndim != len(spec.dims):
        raise ContractViolation(
            f"{owner}: {name} expected {len(spec.dims)}-D array per spec "
            f"{spec.source!r}, got shape {array.shape}"
        )
    for token, actual in zip(spec.dims, array.shape):
        if token == "*":
            continue
        if token.isdigit():
            if actual != int(token):
                raise ContractViolation(
                    f"{owner}: {name} dimension must be {token} per spec "
                    f"{spec.source!r}, got shape {array.shape}"
                )
            continue
        bound = bindings.setdefault(token, actual)
        if bound != actual:
            raise ContractViolation(
                f"{owner}: {name} dimension {token!r} is {actual} but {token!r} "
                f"was already bound to {bound} in this call (spec {spec.source!r})"
            )


def check_shapes(
    returns: Optional[str] = None,
    *,
    force: bool = False,
    **param_specs: str,
) -> Callable[[F], F]:
    """Validate argument/return array shapes against a spec (debug only).

    Parameters are matched by name; ``returns=`` describes the return
    value.  ``None`` argument values are skipped (optional arrays).
    ``force=True`` activates the check regardless of ``REPRO_DEBUG``
    (used by the contract tests themselves).
    """

    def decorate(func: F) -> F:
        owner = getattr(func, "__qualname__", getattr(func, "__name__", "<function>"))
        specs = {
            name: _parse_spec(text, owner, name) for name, text in param_specs.items()
        }
        return_spec = (
            None if returns is None else _parse_spec(returns, owner, RETURNS_KEY)
        )
        signature = inspect.signature(func)
        for name in specs:
            if name not in signature.parameters:
                raise ContractViolation(
                    f"{owner}: check_shapes spec names unknown parameter {name!r}"
                )
        if not (force or contracts_enabled()):
            return func

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = signature.bind(*args, **kwargs)
            bindings: Dict[str, int] = {}
            for name, spec in specs.items():
                if name not in bound.arguments:
                    continue
                value = bound.arguments[name]
                if value is None:
                    continue
                _check_value(owner, f"argument {name!r}", spec, value, bindings)
            result = func(*args, **kwargs)
            if return_spec is not None:
                _check_value(owner, "return value", return_spec, result, bindings)
            return result

        return cast(F, wrapper)

    return decorate


def _iter_arrays(value: Any) -> List[np.ndarray[Any, Any]]:
    """Arrays reachable from ``value`` (directly or one level of tuple/list)."""
    if isinstance(value, np.ndarray):
        return [value]
    if isinstance(value, (tuple, list)):
        return [item for item in value if isinstance(item, np.ndarray)]
    return []


def ensure_finite(
    func: Optional[F] = None, *, force: bool = False
) -> Union[F, Callable[[F], F]]:
    """Reject NaN/Inf in array arguments and returns (debug only).

    Usable bare (``@ensure_finite``) or parameterised
    (``@ensure_finite(force=True)``).
    """

    def decorate(inner: F) -> F:
        if not (force or contracts_enabled()):
            return inner
        owner = getattr(inner, "__qualname__", getattr(inner, "__name__", "<function>"))

        @functools.wraps(inner)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            for index, value in enumerate(args):
                for array in _iter_arrays(value):
                    if array.dtype.kind in "fc" and not np.all(np.isfinite(array)):
                        raise ContractViolation(
                            f"{owner}: argument {index} contains non-finite values"
                        )
            for name, value in kwargs.items():
                for array in _iter_arrays(value):
                    if array.dtype.kind in "fc" and not np.all(np.isfinite(array)):
                        raise ContractViolation(
                            f"{owner}: argument {name!r} contains non-finite values"
                        )
            result = inner(*args, **kwargs)
            for array in _iter_arrays(result):
                if array.dtype.kind in "fc" and not np.all(np.isfinite(array)):
                    raise ContractViolation(
                        f"{owner}: return value contains non-finite values"
                    )
            return result

        return cast(F, wrapper)

    if func is not None:
        return decorate(func)
    return decorate


__all__ = ["check_shapes", "contracts_enabled", "ensure_finite"]
