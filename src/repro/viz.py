"""Terminal-friendly visualization (no plotting dependencies).

Renders the objects researchers keep wanting to look at — angular
spectra, likelihood heat maps, scene layouts — as ASCII, so examples
and debugging sessions work over SSH and in CI logs.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.likelihood import LikelihoodMap
from repro.dsp.spectrum import AngularSpectrum
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.sim.scene import Scene

#: Characters from faint to strong for heat rendering.
SHADES = " .:-=+*#%@"


def render_spectrum(
    spectrum: AngularSpectrum,
    width: int = 72,
    height: int = 12,
    markers: Optional[Sequence[float]] = None,
) -> List[str]:
    """ASCII line plot of an angular spectrum over [0, 180] degrees.

    ``markers`` are angles (radians) drawn as ``|`` on the axis row —
    handy for showing ground-truth path angles under a P-MUSIC plot.
    """
    if width < 10 or height < 3:
        raise ConfigurationError("canvas too small")
    grid = np.linspace(spectrum.angles[0], spectrum.angles[-1], width)
    values = np.interp(grid, spectrum.angles, spectrum.values)
    peak = values.max()
    if peak <= 0:
        levels = np.zeros(width, dtype=int)
    else:
        levels = np.round(values / peak * (height - 1)).astype(int)
    rows = [
        "".join("#" if level >= row_index and level > 0 else " "
                for level in levels)
        for row_index in range(height - 1, -1, -1)
    ]
    axis = [" "] * width
    for marker in markers or ():
        index = int(
            round(
                (marker - spectrum.angles[0])
                / (spectrum.angles[-1] - spectrum.angles[0])
                * (width - 1)
            )
        )
        if 0 <= index < width:
            axis[index] = "|"
    rows.append("".join(axis))
    rows.append(f"0{'deg':>{width // 2 - 1}}{'180':>{width // 2 - 3}}")
    return rows


def render_heatmap(
    values: np.ndarray,
    width: Optional[int] = None,
) -> List[str]:
    """ASCII heat map of a 2-D array (row 0 rendered at the bottom)."""
    grid = np.asarray(values, dtype=float)
    if grid.ndim != 2:
        raise ConfigurationError("heatmap needs a 2-D array")
    peak = grid.max()
    if peak <= 0:
        normalized = np.zeros_like(grid)
    else:
        normalized = grid / peak
    if width is not None and width < grid.shape[1]:
        # Downsample columns by striding.
        stride = int(math.ceil(grid.shape[1] / width))
        normalized = normalized[:, ::stride]
    rows = [
        "".join(
            SHADES[min(len(SHADES) - 1, int(v * (len(SHADES) - 1)))]
            for v in row
        )
        for row in normalized[::-1]
    ]
    return rows


def render_likelihood(
    likelihood_map: LikelihoodMap,
    evidence,
    truth: Optional[Point] = None,
    width: int = 60,
) -> List[str]:
    """Heat map of the Eq. 15 likelihood surface, with optional truth mark."""
    xs, ys, likelihood = likelihood_map.evaluate(evidence)
    rows = render_heatmap(likelihood, width=width)
    if truth is not None and likelihood.max() > 0:
        stride = max(1, int(math.ceil(len(xs) / width)))
        col = int((truth.x - xs[0]) / (xs[-1] - xs[0] + 1e-12) * (len(xs) - 1))
        col //= stride
        row_from_top = len(rows) - 1 - int(
            (truth.y - ys[0]) / (ys[-1] - ys[0] + 1e-12) * (len(ys) - 1)
        )
        if 0 <= row_from_top < len(rows) and 0 <= col < len(rows[0]):
            line = list(rows[row_from_top])
            line[col] = "X"
            rows[row_from_top] = "".join(line)
    return rows


def render_scene(scene: Scene, width: int = 60, height: int = 28) -> List[str]:
    """Top-down layout: R = reader array, t = tag, / = reflector."""
    room = scene.room
    canvas = [[" "] * width for _ in range(height)]

    def put(point: Point, mark: str) -> None:
        col = int((point.x - room.min_x) / room.width * (width - 1))
        row = int((room.max_y - point.y) / room.height * (height - 1))
        if 0 <= row < height and 0 <= col < width:
            canvas[row][col] = mark

    for reflector in scene.reflectors:
        steps = 12
        for i in range(steps + 1):
            put(reflector.plate.point_at(i / steps), "/")
    for tag in scene.tags:
        put(tag.position, "t")
    for reader in scene.readers:
        for element in reader.array.element_positions():
            put(element, "R")
    border = "+" + "-" * width + "+"
    rows = [border]
    rows.extend("|" + "".join(line) + "|" for line in canvas)
    rows.append(border)
    rows.append(f"{scene.name}: {room.width:.1f} m x {room.height:.1f} m, "
                f"R=arrays t=tags /=reflectors")
    return rows
