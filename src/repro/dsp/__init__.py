"""Array signal processing: covariance, smoothing, MUSIC, P-MUSIC."""

from repro.dsp.spectrum import (
    AngularSpectrum,
    SpectrumPeak,
    default_angle_grid,
    spectrum_from_samples,
)
from repro.dsp.covariance import (
    sample_covariance,
    is_hermitian,
    exchange_matrix,
    forward_backward_average,
)
from repro.dsp.smoothing import spatially_smoothed_covariance, default_subarray_size
from repro.dsp.peaks import find_spectrum_peaks, peak_regions
from repro.dsp.music import (
    MusicEstimator,
    eigendecompose,
    estimate_num_sources,
    mdl_num_sources,
    noise_subspace,
    music_spectrum_from_subspace,
)
from repro.dsp.bartlett import bartlett_power_spectrum, bartlett_power_at
from repro.dsp.pmusic import PMusicEstimator, normalize_peaks
from repro.dsp.batch import (
    BatchPMusicConfig,
    batched_eigendecompose,
    batched_estimate_num_sources,
    batched_pmusic_from_covariances,
    batched_pmusic_spectra,
    batched_sample_covariance,
    batched_smoothed_covariance,
    config_from_estimator,
)
from repro.dsp.doppler import (
    DopplerEstimate,
    estimate_doppler,
    phase_stream,
    speed_track,
    synthesize_moving_reflection,
)

__all__ = [
    "AngularSpectrum",
    "SpectrumPeak",
    "default_angle_grid",
    "spectrum_from_samples",
    "sample_covariance",
    "is_hermitian",
    "exchange_matrix",
    "forward_backward_average",
    "spatially_smoothed_covariance",
    "default_subarray_size",
    "find_spectrum_peaks",
    "peak_regions",
    "MusicEstimator",
    "eigendecompose",
    "estimate_num_sources",
    "mdl_num_sources",
    "noise_subspace",
    "music_spectrum_from_subspace",
    "bartlett_power_spectrum",
    "bartlett_power_at",
    "PMusicEstimator",
    "normalize_peaks",
    "BatchPMusicConfig",
    "batched_eigendecompose",
    "batched_estimate_num_sources",
    "batched_pmusic_from_covariances",
    "batched_pmusic_spectra",
    "batched_sample_covariance",
    "batched_smoothed_covariance",
    "config_from_estimator",
    "DopplerEstimate",
    "estimate_doppler",
    "phase_stream",
    "speed_track",
    "synthesize_moving_reflection",
]
