"""Doppler-shift estimation from backscatter snapshot streams.

Section 8 of the paper: "Doppler shift can be applied to estimate the
target's walking speed to further improve the location accuracy."  A
moving body modulates the paths it grazes; the phase of the reflected
component rotates at ``f_D = v_radial / lambda`` (for a backscatter
bounce the geometry doubles it).  This module estimates that rotation
from the per-snapshot phase stream of a (reader, tag) pair and converts
it to radial speed for the tracker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import EstimationError
from repro.utils.arrays import ArrayLike, ComplexArray, FloatArray
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class DopplerEstimate:
    """A Doppler reading from one snapshot stream."""

    frequency_hz: float
    radial_speed_mps: float
    coherence: float

    @property
    def reliable(self) -> bool:
        """Whether the stream rotated coherently enough to trust."""
        return self.coherence >= 0.5


def phase_stream(snapshots: ArrayLike, antenna: int = 0) -> FloatArray:
    """Per-snapshot carrier phase at one antenna (source-modulation free).

    Backscatter symbols are unit-modulus with random phase, so the raw
    per-snapshot phase is useless; the *pairwise conjugate product*
    between consecutive snapshots cancels the source phase only if the
    source is constant.  Instead the caller is expected to pass
    demodulated snapshots (the reader knows the RN16 preamble it
    acknowledged); here we approximate demodulation by removing each
    snapshot's array-median phase, which cancels any common source
    rotation while keeping the slower channel rotation.
    """
    x = np.asarray(snapshots, dtype=np.complex128)
    if x.ndim != 2:
        raise EstimationError("snapshots must be (M, N)")
    if not 0 <= antenna < x.shape[0]:
        raise EstimationError(f"antenna {antenna} outside array")
    reference = np.exp(1j * np.angle(np.mean(x, axis=0)))
    return np.angle(x[antenna, :] / reference)


def estimate_doppler(
    demodulated: ArrayLike,
    snapshot_interval_s: float,
    wavelength_m: float,
    backscatter: bool = True,
) -> DopplerEstimate:
    """Doppler estimate from a demodulated complex sample stream.

    Parameters
    ----------
    demodulated:
        Complex samples of one path component over time, shape ``(N,)``,
        with source modulation already removed.
    snapshot_interval_s:
        Time between consecutive samples (the reader's read period).
    wavelength_m:
        Carrier wavelength.
    backscatter:
        If true, the path length changes twice per metre of radial
        motion (out and back), halving the speed per Hz of shift.

    Returns
    -------
    DopplerEstimate
        Frequency (Hz, positive = target approaching), radial speed
        (m/s) and a 0-1 coherence score (resultant length of the
        per-step rotations).
    """
    z = np.asarray(demodulated, dtype=np.complex128).ravel()
    if z.size < 3:
        raise EstimationError("need at least three samples for Doppler")
    if snapshot_interval_s <= 0.0 or wavelength_m <= 0.0:
        raise EstimationError("interval and wavelength must be positive")
    steps = z[1:] * np.conj(z[:-1])
    magnitudes = np.abs(steps)
    live = steps[magnitudes > 1e-15]
    if live.size == 0:
        raise EstimationError("stream has no energy")
    resultant = np.mean(live / np.abs(live))
    step_phase = float(np.angle(resultant))
    coherence = float(np.abs(resultant))
    frequency = step_phase / (2.0 * math.pi * snapshot_interval_s)
    scale = 2.0 if backscatter else 1.0
    speed = frequency * wavelength_m / scale
    return DopplerEstimate(
        frequency_hz=frequency, radial_speed_mps=speed, coherence=coherence
    )


def synthesize_moving_reflection(
    radial_speed_mps: float,
    num_samples: int,
    snapshot_interval_s: float,
    wavelength_m: float,
    amplitude: float = 1.0,
    backscatter: bool = True,
    noise_std: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> ComplexArray:
    """Demodulated samples of a path reflecting off a moving body.

    The test-bench inverse of :func:`estimate_doppler`.
    """
    if num_samples < 1:
        raise EstimationError("need at least one sample")
    scale = 2.0 if backscatter else 1.0
    frequency = scale * radial_speed_mps / wavelength_m
    times = np.arange(num_samples) * snapshot_interval_s
    clean = amplitude * np.exp(1j * 2.0 * math.pi * frequency * times)
    if noise_std > 0.0:
        generator = ensure_rng(rng)
        clean = clean + noise_std * (
            generator.normal(size=num_samples)
            + 1j * generator.normal(size=num_samples)
        )
    return clean


def speed_track(
    streams: Sequence[ArrayLike],
    snapshot_interval_s: float,
    wavelength_m: float,
) -> Tuple[float, float]:
    """Fuse Doppler readings from several (reader, tag) streams.

    Different vantage points see different radial projections of one
    velocity; the *largest* coherent |radial speed| lower-bounds the
    target's true speed and is the quantity Section 8 proposes feeding
    back into tracking.  Returns ``(speed_mps, coherence)`` of the best
    stream.

    Raises
    ------
    EstimationError
        If no stream produced a reliable estimate.
    """
    best_speed, best_coherence = None, 0.0
    for stream in streams:
        try:
            estimate = estimate_doppler(
                stream, snapshot_interval_s, wavelength_m
            )
        except EstimationError:
            continue
        if estimate.reliable and (
            best_speed is None or abs(estimate.radial_speed_mps) > abs(best_speed)
        ):
            best_speed = estimate.radial_speed_mps
            best_coherence = estimate.coherence
    if best_speed is None:
        raise EstimationError("no stream yielded a reliable Doppler estimate")
    return best_speed, best_coherence
