"""Array covariance estimation (the ``R`` of the paper's Eq. 5)."""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import check_shapes, ensure_finite
from repro.errors import EstimationError
from repro.utils.arrays import ArrayLike, ComplexArray, FloatArray


@check_shapes(returns="complex:M,M", snapshots="M,N")
@ensure_finite
def sample_covariance(snapshots: ArrayLike) -> ComplexArray:
    """Sample covariance ``R = X X^H / N`` of array snapshots.

    Parameters
    ----------
    snapshots:
        Complex array of shape ``(M, N)``: ``M`` antennas, ``N``
        temporal snapshots.

    Returns
    -------
    numpy.ndarray
        Hermitian ``(M, M)`` covariance estimate.
    """
    x = np.asarray(snapshots, dtype=np.complex128)
    if x.ndim != 2:
        raise EstimationError(f"snapshots must be 2-D (M, N), got shape {x.shape}")
    m, n = x.shape
    if n < 1:
        raise EstimationError("need at least one snapshot")
    r = x @ x.conj().T / n
    # Enforce exact Hermitian symmetry despite floating-point drift; the
    # eigendecomposition downstream assumes it.
    return (r + r.conj().T) / 2.0


def is_hermitian(matrix: ArrayLike, tolerance: float = 1e-10) -> bool:
    """Whether ``matrix`` is Hermitian within ``tolerance``."""
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        return False
    return bool(np.allclose(arr, arr.conj().T, atol=tolerance))


def exchange_matrix(size: int) -> FloatArray:
    """The anti-identity ``J`` used by forward-backward averaging."""
    if size < 1:
        raise EstimationError("exchange matrix size must be positive")
    return np.fliplr(np.eye(size))


@check_shapes(returns="complex:M,M", covariance="M,M")
def forward_backward_average(covariance: ArrayLike) -> ComplexArray:
    """Forward-backward averaged covariance ``(R + J R* J) / 2``.

    Decorrelates one pair of coherent arrivals for free and is applied
    inside spatial smoothing.
    """
    r = np.asarray(covariance, dtype=np.complex128)
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise EstimationError("covariance must be square")
    j = exchange_matrix(r.shape[0])
    return (r + j @ r.conj() @ j) / 2.0
