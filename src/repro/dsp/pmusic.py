"""P-MUSIC: the paper's core algorithmic contribution (Section 4.2).

Classic MUSIC locates arrival angles precisely but its peak heights are
probability-like values with no linear relation to per-path power, so a
blocked path cannot be identified from the spectrum alone (Fig. 4).
P-MUSIC combines:

* the Bartlett align-and-sum *power* estimate ``PB(theta)`` (Eq. 13),
  which reads true per-direction power but has fat lobes, and
* the MUSIC pseudo-spectrum ``B(theta)`` with all peak amplitudes
  normalized to 1 by ``Nor(.)``, which retains only MUSIC's sharp
  angular localization,

into ``Omega(theta) = PB(theta) * Nor(B(theta))`` (Eq. 14): a spectrum
with MUSIC's resolution whose peak heights track per-path signal power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import obs
from repro.constants import DEFAULT_WAVELENGTH_M
from repro.dsp.bartlett import bartlett_power_spectrum
from repro.dsp.music import MusicEstimator
from repro.dsp.peaks import find_spectrum_peaks, peak_regions
from repro.dsp.spectrum import AngularSpectrum, SpectrumPeak
from repro.errors import EstimationError
from repro.utils.arrays import ArrayLike, FloatArray


def normalize_peaks(
    spectrum: AngularSpectrum,
    min_relative_height: float = 0.02,
    min_separation: float = 0.05,
) -> AngularSpectrum:
    """The paper's ``Nor(.)``: scale every spectral lobe to unit height.

    The angle axis is segmented into one region per detected peak (split
    at inter-peak minima) and each region is divided by its own maximum.
    Peaks end up at exactly 1 while the angular shape of each lobe is
    preserved, removing MUSIC's probability-valued amplitudes but
    keeping its angle information.
    """
    peaks = find_spectrum_peaks(spectrum, min_relative_height, min_separation)
    if not peaks:
        raise EstimationError("cannot normalize a spectrum with no peaks")
    obs.count("pmusic.peaks_found", len(peaks))
    values = spectrum.values.copy()
    for start, end in peak_regions(spectrum, peaks):
        region_max = values[start:end].max()
        if region_max > 0.0:
            values[start:end] = values[start:end] / region_max
    return AngularSpectrum(spectrum.angles.copy(), values)


@dataclass
class PMusicEstimator:
    """P-MUSIC estimator producing power-calibrated angular spectra.

    Parameters
    ----------
    spacing_m:
        Physical element spacing of the array.
    wavelength_m:
        Carrier wavelength.
    music:
        The underlying MUSIC estimator (constructed with matching
        geometry when omitted).
    peak_min_relative_height, peak_min_separation:
        Peak-detection knobs forwarded to the normalization function.
    """

    spacing_m: float
    wavelength_m: float = DEFAULT_WAVELENGTH_M
    music: Optional[MusicEstimator] = None
    peak_min_relative_height: float = 0.02
    peak_min_separation: float = 0.05
    angle_grid: Optional[FloatArray] = None

    def __post_init__(self) -> None:
        if self.music is None:
            self.music = MusicEstimator(
                spacing_m=self.spacing_m,
                wavelength_m=self.wavelength_m,
                angle_grid=self.angle_grid,
            )

    def spectrum(self, snapshots: ArrayLike) -> AngularSpectrum:
        """P-MUSIC spectrum ``Omega(theta)`` of the snapshots (Eq. 14)."""
        with obs.span("pmusic.fusion"):
            assert self.music is not None  # set by __post_init__
            music_spec = self.music.spectrum(snapshots)
            normalized = normalize_peaks(
                music_spec, self.peak_min_relative_height, self.peak_min_separation
            )
            power = bartlett_power_spectrum(
                snapshots, self.spacing_m, self.wavelength_m, normalized.angles
            )
            return AngularSpectrum(
                normalized.angles.copy(), power.values * normalized.values
            )

    def estimate_paths(
        self, snapshots: ArrayLike, max_peaks: Optional[int] = None
    ) -> List[SpectrumPeak]:
        """Per-path (angle, power) estimates as spectrum peaks."""
        peaks = find_spectrum_peaks(
            self.spectrum(snapshots),
            min_relative_height=self.peak_min_relative_height,
            min_separation=self.peak_min_separation,
        )
        if max_peaks is not None:
            peaks = peaks[:max_peaks]
        obs.count("pmusic.paths_estimated", len(peaks))
        return peaks
