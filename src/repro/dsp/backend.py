"""Array-API dispatch for the batched spectral kernels (ROADMAP item 2).

The batched P-MUSIC chain is a handful of dense primitives — GEMM,
Hermitian eigendecomposition, and contraction — applied to ``(N, M, M)``
stacks.  This module gives those primitives one dispatch point so the
same kernels can run on NumPy (the default and the only *exact*
backend), PyTorch, or CuPy without `repro.dsp.batch` knowing which
library is underneath.

Design rules, in order of precedence:

1. **NumPy is the ground truth.**  :class:`NumpyBackend` is a pure
   passthrough — same functions, same call shapes — so the batched ≡
   scalar bit-exactness contract of :mod:`repro.dsp.batch` is untouched
   when it is active (which it is by default).
2. **Optional backends are probed, never trusted.**  Like the verified
   fast-peak path in :mod:`repro.dsp.peaks`, a non-NumPy backend must
   first reproduce a reference workload (GEMM + ``eigh`` + Bartlett
   contraction) within tolerance on this machine.  An import failure or
   a probe mismatch permanently demotes the request to NumPy and bumps
   the ``dsp.backend.fallbacks`` counter — callers always get *a*
   working backend.
3. **ndarray in, ndarray out.**  Conversions live inside the backend;
   callers keep NumPy semantics and dtypes at the boundary, so spectra,
   peaks and the downstream detector never see foreign tensor types.

Resolution order for the default backend: explicit ``set_backend`` /
``use_backend`` call, else the ``REPRO_BACKEND`` environment variable,
else NumPy.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.analysis.sanitizer import sanitized_lock
from repro.utils.arrays import ComplexArray, FloatArray

__all__ = [
    "ArrayBackend",
    "BackendError",
    "NumpyBackend",
    "TorchBackend",
    "active_backend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
]


class BackendError(ValueError):
    """An unknown backend name was requested."""


class ArrayBackend:
    """The primitive kernels :mod:`repro.dsp.batch` dispatches through.

    The base class *is* the NumPy implementation; optional backends
    override the primitives and set ``exact = False`` (their results
    match NumPy only within floating-point tolerance, so the
    bit-exactness property tests pin the NumPy backend explicitly).
    """

    #: Dispatch name, as accepted by :func:`get_backend`.
    name: str = "numpy"
    #: Whether results are bit-identical to the scalar NumPy reference.
    exact: bool = True

    def matmul(self, a: ComplexArray, b: ComplexArray) -> ComplexArray:
        """Stacked matrix product with NumPy broadcasting semantics."""
        return np.matmul(a, b)

    def eigh(self, stack: ComplexArray) -> Tuple[FloatArray, ComplexArray]:
        """Ascending eigenvalues and eigenvectors of a Hermitian stack."""
        eigenvalues, eigenvectors = np.linalg.eigh(stack)
        return eigenvalues, eigenvectors

    def eigvalsh(self, stack: ComplexArray) -> FloatArray:
        """Ascending eigenvalues of a Hermitian stack."""
        return np.asarray(np.linalg.eigvalsh(stack))

    def einsum(self, subscripts: str, *operands: Any) -> Any:
        """``np.einsum`` with the backend's contraction kernels."""
        return np.einsum(subscripts, *operands)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} exact={self.exact}>"


class NumpyBackend(ArrayBackend):
    """The default (and only bit-exact) backend."""


class TorchBackend(ArrayBackend):
    """PyTorch CPU/GPU execution of the same primitives.

    Tensors are converted at the boundary: every primitive accepts and
    returns ``np.ndarray``.  Results agree with NumPy to floating-point
    tolerance, not bit-exactly — the import-time probe enforces the
    former and the ``exact`` flag declares the latter.
    """

    name = "torch"
    exact = False

    def __init__(self) -> None:
        import torch  # raises ImportError when absent; handled by get_backend

        self._torch = torch

    def _to(self, array: Any) -> Any:
        return self._torch.from_numpy(np.ascontiguousarray(array))

    def matmul(self, a: ComplexArray, b: ComplexArray) -> ComplexArray:
        result = self._torch.matmul(self._to(a), self._to(b))
        return np.asarray(result.numpy())

    def eigh(self, stack: ComplexArray) -> Tuple[FloatArray, ComplexArray]:
        eigenvalues, eigenvectors = self._torch.linalg.eigh(self._to(stack))
        return np.asarray(eigenvalues.numpy()), np.asarray(eigenvectors.numpy())

    def eigvalsh(self, stack: ComplexArray) -> FloatArray:
        values = self._torch.linalg.eigvalsh(self._to(stack))
        return np.asarray(values.numpy())

    def einsum(self, subscripts: str, *operands: Any) -> Any:
        tensors = [self._to(op) for op in operands]
        return np.asarray(self._torch.einsum(subscripts, *tensors).numpy())


class CupyBackend(ArrayBackend):
    """CuPy (GPU) execution of the same primitives."""

    name = "cupy"
    exact = False

    def __init__(self) -> None:
        import cupy  # raises ImportError when absent; handled by get_backend

        self._cupy = cupy

    def matmul(self, a: ComplexArray, b: ComplexArray) -> ComplexArray:
        cp = self._cupy
        return np.asarray(cp.asnumpy(cp.matmul(cp.asarray(a), cp.asarray(b))))

    def eigh(self, stack: ComplexArray) -> Tuple[FloatArray, ComplexArray]:
        cp = self._cupy
        eigenvalues, eigenvectors = cp.linalg.eigh(cp.asarray(stack))
        return (
            np.asarray(cp.asnumpy(eigenvalues)),
            np.asarray(cp.asnumpy(eigenvectors)),
        )

    def eigvalsh(self, stack: ComplexArray) -> FloatArray:
        cp = self._cupy
        return np.asarray(cp.asnumpy(cp.linalg.eigvalsh(cp.asarray(stack))))

    def einsum(self, subscripts: str, *operands: Any) -> Any:
        cp = self._cupy
        tensors = [cp.asarray(op) for op in operands]
        return np.asarray(cp.asnumpy(cp.einsum(subscripts, *tensors)))


_FACTORIES = {
    "numpy": NumpyBackend,
    "torch": TorchBackend,
    "cupy": CupyBackend,
}

_lock = sanitized_lock("dsp.backend")
_numpy_backend = NumpyBackend()
#: Probed-and-verified backends by name; a name mapped to ``None``
#: failed its probe (or its import) and permanently resolves to NumPy.
_verified: Dict[str, Optional[ArrayBackend]] = {"numpy": _numpy_backend}
#: The explicitly selected backend, if any (``set_backend`` /
#: ``use_backend``); ``None`` defers to ``REPRO_BACKEND`` or NumPy.
_selected: Optional[ArrayBackend] = None


def _probe(backend: ArrayBackend) -> bool:
    """Whether ``backend`` reproduces the NumPy reference workload.

    One deterministic Hermitian stack through the three primitives the
    batched chain uses.  Tolerances are loose enough for any sane BLAS
    (the *bit*-level contract only ever applies to NumPy) but tight
    enough that a broken conversion or a wrong-layout bug cannot pass.
    """
    # Fixed-seed construction, deliberately NOT an RngLike: the probe is
    # a deterministic self-test, not simulation randomness, and must not
    # consume entropy from (or depend on) any caller-supplied stream.
    rng = np.random.default_rng(20160915)  # reprolint: disable=RL001
    x = rng.normal(size=(3, 4, 16)) + 1j * rng.normal(size=(3, 4, 16))
    r = np.matmul(x, x.conj().transpose(0, 2, 1)) / 16.0
    r = 0.5 * (r + r.conj().transpose(0, 2, 1))
    a = rng.normal(size=(4, 7)) + 1j * rng.normal(size=(4, 7))
    try:
        product = backend.matmul(r, a)
        eigenvalues, eigenvectors = backend.eigh(r)
        plain_values = backend.eigvalsh(r)
        power = backend.einsum("mg,nmg->ng", a.conj(), np.matmul(r, a))
    # Deliberately broad: a third-party backend can raise anything here
    # (driver faults, dtype errors, missing device), and every failure
    # mode means the same thing — demote to NumPy.
    except Exception:  # noqa: BLE001  # reprolint: disable=RL005
        return False
    reference_w, reference_v = np.linalg.eigh(r)
    if not np.allclose(product, np.matmul(r, a), rtol=1e-9, atol=1e-12):
        return False
    if not np.allclose(eigenvalues, reference_w, rtol=1e-7, atol=1e-10):
        return False
    if not np.allclose(plain_values, reference_w, rtol=1e-7, atol=1e-10):
        return False
    # Eigenvectors are phase-ambiguous; compare the projectors instead.
    reconstructed = np.matmul(
        eigenvectors * eigenvalues[:, None, :],
        eigenvectors.conj().transpose(0, 2, 1),
    )
    if not np.allclose(reconstructed, r, rtol=1e-7, atol=1e-9):
        return False
    reference_power = np.einsum("mg,nmg->ng", a.conj(), np.matmul(r, a))
    return bool(
        np.allclose(power, reference_power, rtol=1e-9, atol=1e-12)
    )


def available_backends() -> Tuple[str, ...]:
    """Backend names :func:`get_backend` accepts on this machine.

    ``numpy`` is always present; optional names appear when their
    library imports *and* passes the verification probe.
    """
    names: List[str] = []
    for name in _FACTORIES:
        if _resolve(name, count_fallback=False).name == name:
            names.append(name)
    return tuple(names)


def _resolve(name: str, count_fallback: bool = True) -> ArrayBackend:
    """The verified backend for ``name``, demoting to NumPy on failure."""
    with _lock:
        if name in _verified:
            cached = _verified[name]
            if cached is not None:
                return cached
            demoted = True
        else:
            demoted = False
    if demoted:
        # A remembered demotion still counts: the metric tracks every
        # request that degraded, not just the probe that discovered it.
        if count_fallback:
            obs.count("dsp.backend.fallbacks", labels={"requested": name})
        return _numpy_backend
    try:
        backend: Optional[ArrayBackend] = _FACTORIES[name]()
    except ImportError:
        backend = None
    if backend is not None and not _probe(backend):
        backend = None
    with _lock:
        _verified[name] = backend
    if backend is None:
        if count_fallback:
            obs.count("dsp.backend.fallbacks", labels={"requested": name})
        return _numpy_backend
    return backend


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """The backend for ``name``, or the session default when ``None``.

    Unknown names raise :class:`BackendError`.  Known-but-unavailable
    backends (library missing, probe failed) demote to NumPy and bump
    ``dsp.backend.fallbacks`` — requesting ``torch`` on a NumPy-only
    machine degrades, it never crashes.
    """
    if name is None:
        with _lock:
            if _selected is not None:
                return _selected
        name = os.environ.get("REPRO_BACKEND", "numpy").strip().lower()
        if name not in _FACTORIES:
            obs.count("dsp.backend.fallbacks", labels={"requested": name})
            return _numpy_backend
        return _resolve(name)
    name = name.strip().lower()
    if name not in _FACTORIES:
        raise BackendError(
            f"unknown dsp backend {name!r}; "
            f"known backends: {', '.join(sorted(_FACTORIES))}"
        )
    return _resolve(name)


def active_backend() -> ArrayBackend:
    """The backend batched kernels dispatch through right now."""
    return get_backend(None)


def set_backend(name: Optional[str]) -> ArrayBackend:
    """Select the session default backend (``None`` reverts to implicit).

    Returns the backend that is actually active after selection, which
    is NumPy when the requested one is unavailable on this machine.
    """
    global _selected
    backend = None if name is None else get_backend(name)
    with _lock:
        _selected = backend
    return active_backend()


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[ArrayBackend]:
    """Scoped :func:`set_backend`, restoring the previous selection."""
    global _selected
    with _lock:
        previous = _selected
    backend = set_backend(name)
    try:
        yield backend
    finally:
        with _lock:
            _selected = previous
