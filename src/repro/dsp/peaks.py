"""Peak detection and peak-region segmentation for angular spectra."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.signal import find_peaks as _scipy_find_peaks

from repro.dsp.spectrum import AngularSpectrum, SpectrumPeak
from repro.errors import EstimationError


def find_spectrum_peaks(
    spectrum: AngularSpectrum,
    min_relative_height: float = 0.05,
    min_separation: float = 0.05,
) -> List[SpectrumPeak]:
    """Detect local maxima of an angular spectrum.

    Parameters
    ----------
    spectrum:
        The spectrum to analyse.
    min_relative_height:
        Minimum peak height as a fraction of the global maximum.
    min_separation:
        Minimum angular separation between reported peaks (radians).

    Returns
    -------
    list of SpectrumPeak
        Peaks sorted by descending value.
    """
    values = spectrum.values
    peak_value = float(values.max())
    if peak_value <= 0.0:
        return []
    grid_step = float(np.mean(np.diff(spectrum.angles)))
    distance = max(1, int(round(min_separation / grid_step)))
    indices, _ = _scipy_find_peaks(
        values, height=min_relative_height * peak_value, distance=distance
    )
    # Grid endpoints can hold genuine maxima (a path arriving near 0 or
    # pi); scipy never reports them, so check the boundaries explicitly.
    boundary_candidates = []
    if values[0] > values[1] and values[0] >= min_relative_height * peak_value:
        boundary_candidates.append(0)
    if values[-1] > values[-2] and values[-1] >= min_relative_height * peak_value:
        boundary_candidates.append(len(values) - 1)
    all_indices = sorted(set(indices.tolist()) | set(boundary_candidates))
    peaks = [
        SpectrumPeak(
            angle=float(spectrum.angles[i]), value=float(values[i]), index=int(i)
        )
        for i in all_indices
    ]
    return sorted(peaks, key=lambda p: p.value, reverse=True)


def peak_regions(
    spectrum: AngularSpectrum, peaks: List[SpectrumPeak]
) -> List[Tuple[int, int]]:
    """Partition the grid into one half-open region per peak.

    Region boundaries sit at the minima between adjacent peaks, so each
    grid point is attributed to the peak whose lobe it belongs to.  Used
    by P-MUSIC's normalization function to scale every lobe to unit
    height.
    """
    if not peaks:
        return []
    ordered = sorted(peaks, key=lambda p: p.index)
    boundaries = [0]
    for left, right in zip(ordered, ordered[1:]):
        between = spectrum.values[left.index : right.index + 1]
        boundaries.append(left.index + int(np.argmin(between)))
    boundaries.append(len(spectrum.values))
    regions = []
    for start, end in zip(boundaries, boundaries[1:]):
        if end <= start:
            raise EstimationError("degenerate peak region")
        regions.append((start, end))
    return regions
