"""Peak detection and peak-region segmentation for angular spectra."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy.signal import find_peaks as _scipy_find_peaks

from repro.dsp.spectrum import AngularSpectrum, SpectrumPeak
from repro.errors import EstimationError

try:  # pragma: no cover - exercised through _verified_fast_peaks below
    from scipy.signal._peak_finding_utils import (
        _local_maxima_1d,
        _select_by_peak_distance,
    )
except ImportError:  # pragma: no cover - older/newer scipy layout
    _local_maxima_1d = None
    _select_by_peak_distance = None


def _fast_peak_indices(
    values: np.ndarray, height: float, distance: int
) -> np.ndarray:
    """``find_peaks(values, height=..., distance=...)`` without the wrapper.

    Replays the exact condition sequence of :func:`scipy.signal.find_peaks`
    for the two conditions this module uses — local maxima, then the
    height filter (``peak_heights >= height``), then the distance
    filter — by calling the same compiled kernels the wrapper calls.
    The wrapper's argument unpacking/property bookkeeping costs more
    than the kernels themselves at our 361-point grids.
    """
    peaks, _, _ = _local_maxima_1d(values)
    peaks = peaks[values[peaks] >= height]
    keep = _select_by_peak_distance(peaks, values[peaks], float(distance))
    result: np.ndarray = peaks[keep]
    return result


def _verified_fast_peaks() -> bool:
    """Whether the private-kernel path matches ``find_peaks`` bit for bit.

    Checked once at import over vectors with plateaus, ties and edge
    runs; any mismatch (or a scipy that moved the private kernels)
    falls back to the public wrapper for every call.
    """
    if _local_maxima_1d is None or _select_by_peak_distance is None:
        return False
    probe = np.array(
        [0.0, 1.0, 0.5, 1.0, 1.0, 0.2, 3.0, 0.1, 0.3, 0.3, 0.1, 2.0, 2.5, 2.5]
    )
    try:
        for distance in (1, 2, 6):
            for height in (0.0, 0.2, 0.5, 1.0):
                reference, _ = _scipy_find_peaks(
                    probe, height=height, distance=distance
                )
                if not np.array_equal(
                    reference, _fast_peak_indices(probe, height, distance)
                ):
                    return False
    except (TypeError, ValueError):  # signature drift in the private API
        return False
    return True


_USE_FAST_PEAKS = _verified_fast_peaks()


def _find_peak_indices(
    values: np.ndarray, height: float, distance: int
) -> np.ndarray:
    """Interior peak indices, via the verified fast path when possible."""
    if (
        _USE_FAST_PEAKS
        and values.dtype == np.float64
        and values.flags.c_contiguous
    ):
        return _fast_peak_indices(values, height, distance)
    indices, _ = _scipy_find_peaks(values, height=height, distance=distance)
    return indices


def find_spectrum_peaks(
    spectrum: AngularSpectrum,
    min_relative_height: float = 0.05,
    min_separation: float = 0.05,
) -> List[SpectrumPeak]:
    """Detect local maxima of an angular spectrum.

    Parameters
    ----------
    spectrum:
        The spectrum to analyse.
    min_relative_height:
        Minimum peak height as a fraction of the global maximum.
    min_separation:
        Minimum angular separation between reported peaks (radians).

    Returns
    -------
    list of SpectrumPeak
        Peaks sorted by descending value.
    """
    return peaks_from_values(
        spectrum.angles, spectrum.values, min_relative_height, min_separation
    )


def peaks_from_values(
    angles: np.ndarray,
    values: np.ndarray,
    min_relative_height: float = 0.05,
    min_separation: float = 0.05,
    grid_step: float = 0.0,
) -> List[SpectrumPeak]:
    """:func:`find_spectrum_peaks` on a bare ``(angles, values)`` pair.

    The batched P-MUSIC normalizer calls this directly for every row of
    a spectrum stack — skipping per-row :class:`AngularSpectrum`
    construction (axis re-validation) and, via ``grid_step``, the
    repeated mean-spacing computation, both of which dominate at small
    grids.  Passing ``grid_step=0.0`` recomputes it exactly as
    :func:`find_spectrum_peaks` always has.
    """
    peak_value = float(values.max())
    if peak_value <= 0.0:
        return []
    if grid_step <= 0.0:
        grid_step = float(np.mean(np.diff(angles)))
    distance = max(1, int(round(min_separation / grid_step)))
    all_indices = candidate_peak_indices(
        values, min_relative_height * peak_value, distance
    )
    peaks = [
        SpectrumPeak(
            angle=float(angles[i]), value=float(values[i]), index=int(i)
        )
        for i in all_indices
    ]
    return sorted(peaks, key=lambda p: p.value, reverse=True)


def candidate_peak_indices(
    values: np.ndarray, height: float, distance: int
) -> List[int]:
    """Ascending peak indices: scipy's interior maxima plus boundaries.

    Grid endpoints can hold genuine maxima (a path arriving near 0 or
    pi); scipy never reports index 0 or the last index (its scan runs
    strictly inside the array), so the boundary checks below never
    duplicate an interior peak and a plain concatenation stays sorted
    and unique — the same set the historical
    ``sorted(set(scipy) | set(boundaries))`` produced.
    """
    indices = _find_peak_indices(values, height, distance)
    out: List[int] = []
    if values[0] > values[1] and values[0] >= height:
        out.append(0)
    out.extend(indices.tolist())
    last = len(values) - 1
    if values[last] > values[last - 1] and values[last] >= height:
        out.append(last)
    return out


def peak_regions(
    spectrum: AngularSpectrum, peaks: List[SpectrumPeak]
) -> List[Tuple[int, int]]:
    """Partition the grid into one half-open region per peak.

    Region boundaries sit at the minima between adjacent peaks, so each
    grid point is attributed to the peak whose lobe it belongs to.  Used
    by P-MUSIC's normalization function to scale every lobe to unit
    height.
    """
    return regions_from_values(spectrum.values, peaks)


def regions_from_values(
    values: np.ndarray, peaks: List[SpectrumPeak]
) -> List[Tuple[int, int]]:
    """:func:`peak_regions` on a bare values array (batched hot path)."""
    if not peaks:
        return []
    ordered = sorted(peaks, key=lambda p: p.index)
    boundaries = [0]
    for left, right in zip(ordered, ordered[1:]):
        between = values[left.index : right.index + 1]
        boundaries.append(left.index + int(np.argmin(between)))
    boundaries.append(len(values))
    regions = []
    for start, end in zip(boundaries, boundaries[1:]):
        if end <= start:
            raise EstimationError("degenerate peak region")
        regions.append((start, end))
    return regions


def region_starts_from_indices(
    values: np.ndarray, indices: List[int]
) -> Optional[np.ndarray]:
    """Region start offsets of :func:`peak_regions`, from ascending indices.

    Same boundary-at-the-minimum rule as :func:`regions_from_values`,
    returned as a start-offset array ready for ``np.maximum.reduceat``.
    Region ends are implicitly the next start (the last runs to
    ``values.size``, which always exceeds its start), so the scalar
    degenerate-region error reduces to a strictly-increasing check.
    ``None`` for an empty index list.
    """
    if not indices:
        return None
    starts = np.empty(len(indices), dtype=np.intp)
    starts[0] = 0
    for j in range(len(indices) - 1):
        left = indices[j]
        right = indices[j + 1]
        starts[j + 1] = left + int(values[left : right + 1].argmin())
    if len(indices) > 1 and not np.all(np.diff(starts) > 0):
        raise EstimationError("degenerate peak region")
    return starts
