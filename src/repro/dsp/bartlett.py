"""Bartlett (align-and-sum) power estimation — Eq. 12-13 of the paper.

Applying the conjugate steering weights ``exp(+j*omega(m, theta))`` to
the per-antenna samples makes the signal arriving from ``theta`` add
constructively (amplitude grows ``M``-fold) while signals from other
directions add with pseudo-random phases and average out.  The squared
magnitude of the aligned sum, scaled by ``1/M^2``, therefore estimates
the signal *power* arriving from ``theta``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.contracts import check_shapes
from repro.dsp.covariance import sample_covariance
from repro.dsp.spectrum import AngularSpectrum, default_angle_grid
from repro.errors import EstimationError
from repro.rf.array import cached_steering_matrix
from repro.utils.arrays import ArrayLike, FloatArray


@check_shapes(covariance="M,M", angle_grid="G")
def bartlett_spectrum_from_covariance(
    covariance: ArrayLike,
    spacing_m: float,
    wavelength_m: float,
    angle_grid: Optional[FloatArray] = None,
) -> AngularSpectrum:
    """Per-direction power ``a(theta)^H R a(theta) / M^2`` from ``R``.

    The covariance-domain form of Eq. 13, shared by the batch estimator
    below and by the streaming engine's incrementally maintained
    covariances (:mod:`repro.stream.covariance`).
    """
    r = np.asarray(covariance, dtype=np.complex128)
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise EstimationError("covariance must be a square (M, M) matrix")
    m = r.shape[0]
    grid = default_angle_grid() if angle_grid is None else np.asarray(angle_grid)
    a = cached_steering_matrix(grid, m, spacing_m, wavelength_m)  # (M, G)
    # GEMM for R a, then one contraction for sum_m conj(a) * (R a) —
    # the exact two-step form the batched kernel
    # (:func:`repro.dsp.batch.batched_bartlett_spectra`) stacks, so the
    # scalar/batched bit-equality contract holds per construction.
    # The quadratic form a^H R a of a Hermitian R is mathematically real;
    # np.real only strips round-off in the imaginary storage.
    product = r @ a  # (M, G)
    values = np.real(np.einsum("mg,mg->g", a.conj(), product)) / (m * m)  # reprolint: disable=RL003,RL011
    return AngularSpectrum(grid, np.clip(values, 0.0, None))


@check_shapes(snapshots="M,N", angle_grid="G")
def bartlett_power_spectrum(
    snapshots: ArrayLike,
    spacing_m: float,
    wavelength_m: float,
    angle_grid: Optional[FloatArray] = None,
) -> AngularSpectrum:
    """Per-direction power ``PB(theta)`` from raw snapshots (Eq. 13).

    The snapshot average of ``|sum_m x_m(t) e^{j omega(m, theta)}|^2 / M^2``
    equals ``a(theta)^H R a(theta) / M^2`` for the sample covariance
    ``R``, which is how it is computed here (one matrix product for the
    whole grid instead of a per-angle loop).
    """
    x = np.asarray(snapshots, dtype=np.complex128)
    if x.ndim != 2:
        raise EstimationError("snapshots must be 2-D (M, N)")
    return bartlett_spectrum_from_covariance(
        sample_covariance(x), spacing_m, wavelength_m, angle_grid
    )


def bartlett_power_at(
    snapshots: ArrayLike,
    theta: float,
    spacing_m: float,
    wavelength_m: float,
) -> float:
    """Bartlett power estimate for a single direction ``theta``."""
    spectrum = bartlett_power_spectrum(
        snapshots, spacing_m, wavelength_m, np.asarray([theta, theta + 1e-9])
    )
    return float(spectrum.values[0])
