"""The MUSIC AoA estimator (Schmidt 1986), as described in Section 2.2.

MUSIC eigendecomposes the array covariance, splits eigenvectors into a
signal and a noise subspace, and scans a steering vector over the angle
grid; orthogonality between steering vectors at true arrival angles and
the noise subspace produces sharp pseudo-spectrum peaks (Eq. 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.analysis.contracts import check_shapes, ensure_finite
from repro.constants import DEFAULT_WAVELENGTH_M, MAX_DOMINANT_PATHS
from repro.dsp.backend import ArrayBackend, get_backend
from repro.dsp.covariance import sample_covariance
from repro.dsp.peaks import find_spectrum_peaks
from repro.dsp.smoothing import default_subarray_size, spatially_smoothed_covariance
from repro.dsp.spectrum import AngularSpectrum, SpectrumPeak, default_angle_grid
from repro.errors import EstimationError
from repro.rf.array import cached_steering_matrix
from repro.utils.arrays import ArrayLike, ComplexArray, FloatArray


def sorted_eigh(
    matrices: ComplexArray, xp: Optional[ArrayBackend] = None
) -> Tuple[FloatArray, ComplexArray]:
    """Descending eigendecomposition of Hermitian matrices (stacked ok).

    The one place the eigh-then-sort sequence lives: the scalar
    reference (:func:`eigendecompose`) and the batched kernel
    (:func:`repro.dsp.batch.batched_eigendecompose`) both call it, so
    the two orderings cannot drift.  Accepts a single ``(L, L)`` matrix
    or an ``(N, L, L)`` stack; the reorder is a pure gather along the
    trailing axes, so per-item results are identical either way.

    ``xp`` picks the dispatch backend for the ``eigh`` itself; ``None``
    pins NumPy, which keeps every scalar caller on the bit-exact
    reference path regardless of the session's active backend.
    """
    backend = get_backend("numpy") if xp is None else xp
    eigenvalues, eigenvectors = backend.eigh(matrices)
    order = np.argsort(eigenvalues, axis=-1)[..., ::-1]
    values = np.take_along_axis(eigenvalues, order, axis=-1)
    vectors = np.take_along_axis(eigenvectors, order[..., None, :], axis=-1)
    # eigh of a Hermitian matrix returns mathematically real eigenvalues;
    # .real only strips the zero imaginary storage.
    return values.real, vectors  # reprolint: disable=RL003


@check_shapes(covariance="M,M")
@ensure_finite
def eigendecompose(covariance: ArrayLike) -> Tuple[FloatArray, ComplexArray]:
    """Eigenvalues (descending) and matching eigenvectors of ``R``."""
    r = np.asarray(covariance, dtype=np.complex128)
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise EstimationError("covariance must be a square matrix")
    return sorted_eigh(r)


def estimate_num_sources(
    eigenvalues: ArrayLike,
    threshold_ratio: float = 0.03,
    max_sources: Optional[int] = None,
) -> int:
    """Count signal eigenvalues by thresholding against the largest.

    The paper chooses ``P`` as the number of eigenvalues "larger than a
    threshold"; the default ratio marks everything within roughly 15 dB
    of the dominant eigenvalue as signal.
    """
    values = np.asarray(eigenvalues, dtype=np.float64)
    if values.size == 0:
        raise EstimationError("no eigenvalues supplied")
    if values.size == 1:
        # Without this guard a single-element array would count one
        # source and send noise_subspace into the baffling
        # "num_sources must be in (0, 1)" failure.
        raise EstimationError(
            "a single-element array leaves no noise subspace; "
            "MUSIC needs at least two antennas"
        )
    peak = values.max()
    if peak <= 0.0:
        return 0
    count = int(np.sum(values > threshold_ratio * peak))
    ceiling = values.size - 1 if max_sources is None else min(max_sources, values.size - 1)
    return max(1, min(count, ceiling))


def mdl_num_sources(eigenvalues: ArrayLike, num_snapshots: int) -> int:
    """Minimum-description-length source count (Wax & Kailath 1985).

    Provided as an alternative to plain thresholding; useful when the
    SNR is unknown.
    """
    lam = np.sort(np.asarray(eigenvalues, dtype=np.float64))[::-1]
    lam = np.clip(lam, 1e-18, None)
    m = lam.size
    if num_snapshots < 1:
        raise EstimationError("MDL requires at least one snapshot")
    best_k, best_score = 0, math.inf
    for k in range(m):
        tail = lam[k:]
        geometric = np.exp(np.mean(np.log(tail)))
        arithmetic = np.mean(tail)
        ratio = geometric / arithmetic
        score = -num_snapshots * (m - k) * math.log(max(ratio, 1e-18)) + 0.5 * k * (
            2 * m - k
        ) * math.log(num_snapshots)
        if score < best_score:
            best_k, best_score = k, score
    return max(1, min(best_k, m - 1))


@check_shapes(returns="complex:M,*", covariance="M,M")
def noise_subspace(covariance: ArrayLike, num_sources: int) -> ComplexArray:
    """The noise-subspace eigenvector matrix ``U_N``, shape ``(M, M - P)``."""
    eigenvalues, eigenvectors = eigendecompose(covariance)
    m = eigenvalues.size
    if not 0 < num_sources < m:
        raise EstimationError(
            f"num_sources must be in (0, {m}) to leave a noise subspace"
        )
    return eigenvectors[:, num_sources:]


@check_shapes(un="complex:M,*", angle_grid="G")
def music_spectrum_from_subspace(
    un: ComplexArray,
    spacing_m: float,
    wavelength_m: float,
    angle_grid: Optional[FloatArray] = None,
) -> AngularSpectrum:
    """MUSIC pseudo-spectrum ``1 / ||U_N^H a(theta)||^2`` over the grid."""
    grid = default_angle_grid() if angle_grid is None else np.asarray(angle_grid)
    m = un.shape[0]
    a = cached_steering_matrix(grid, m, spacing_m, wavelength_m)  # (M, G)
    projected = un.conj().T @ a  # (M - P, G)
    denom = np.sum(np.abs(projected) ** 2, axis=0)
    values = 1.0 / np.clip(denom, 1e-15, None)
    return AngularSpectrum(grid, values)


@dataclass
class MusicEstimator:
    """Configurable MUSIC front end operating on raw array snapshots.

    Parameters
    ----------
    spacing_m:
        Element spacing of the physical array.
    wavelength_m:
        Carrier wavelength.
    num_sources:
        Fixed model order ``P``; ``None`` selects it per call via
        eigenvalue thresholding (the paper's approach).
    subarray_size:
        Spatial-smoothing subarray length ``L``; ``None`` picks a
        default from the array size.  Set equal to ``M`` to disable
        smoothing (used by the ablation benchmark).
    angle_grid:
        Scan grid over ``[0, pi]``; defaults to 0.5 degree steps.
    forward_backward:
        Whether smoothing uses forward-backward averaging.
    """

    spacing_m: float
    wavelength_m: float = DEFAULT_WAVELENGTH_M
    num_sources: Optional[int] = None
    subarray_size: Optional[int] = None
    angle_grid: Optional[FloatArray] = None
    forward_backward: bool = True
    source_threshold_ratio: float = 0.03

    def _resolve_subarray(self, num_antennas: int) -> int:
        if self.subarray_size is not None:
            return self.subarray_size
        return default_subarray_size(num_antennas, MAX_DOMINANT_PATHS)

    def smoothed_covariance(self, snapshots: ArrayLike) -> ComplexArray:
        """The (possibly smoothed) covariance this estimator works on."""
        with obs.span("music.covariance"):
            x = np.asarray(snapshots, dtype=np.complex128)
            sub_len = self._resolve_subarray(x.shape[0])
            if sub_len >= x.shape[0]:
                return sample_covariance(x)
            return spatially_smoothed_covariance(x, sub_len, self.forward_backward)

    def noise_subspace(self, snapshots: ArrayLike) -> ComplexArray:
        """Noise subspace ``U_N`` for these snapshots."""
        covariance = self.smoothed_covariance(snapshots)
        with obs.span("music.eigendecomposition", size=covariance.shape[0]):
            eigenvalues, _ = eigendecompose(covariance)
            p = self.num_sources
            if p is None:
                p = estimate_num_sources(
                    eigenvalues,
                    self.source_threshold_ratio,
                    max_sources=covariance.shape[0] - 1,
                )
            obs.count("music.sources_detected", p)
            return noise_subspace(covariance, p)

    def spectrum(self, snapshots: ArrayLike) -> AngularSpectrum:
        """MUSIC pseudo-spectrum of the snapshots."""
        with obs.span("music.spectrum"):
            un = self.noise_subspace(snapshots)
            return music_spectrum_from_subspace(
                un, self.spacing_m, self.wavelength_m, self.angle_grid
            )

    def estimate_aoas(
        self, snapshots: ArrayLike, max_peaks: Optional[int] = None
    ) -> List[SpectrumPeak]:
        """Arrival angles as spectrum peaks, strongest first."""
        peaks = find_spectrum_peaks(self.spectrum(snapshots))
        if max_peaks is not None:
            peaks = peaks[:max_peaks]
        return peaks
