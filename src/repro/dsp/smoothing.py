"""Spatial smoothing for coherent multipath (Shan, Wax & Kailath 1985).

Backscatter multipaths all carry the same source signal, so the array
covariance is rank-1 and plain MUSIC collapses.  Averaging the
covariances of overlapping subarrays (optionally forward-backward)
restores the rank, at the cost of shrinking the effective aperture from
``M`` elements to the subarray length ``L``.  The paper cites exactly
this remedy at the end of Section 4.2.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import check_shapes, ensure_finite
from repro.dsp.covariance import forward_backward_average, sample_covariance
from repro.errors import EstimationError
from repro.utils.arrays import ArrayLike, ComplexArray


@check_shapes(returns="complex:L,L", snapshots="M,N")
@ensure_finite
def spatially_smoothed_covariance(
    snapshots: ArrayLike,
    subarray_size: int,
    forward_backward: bool = True,
) -> ComplexArray:
    """Spatially smoothed covariance from raw snapshots.

    Parameters
    ----------
    snapshots:
        Complex array of shape ``(M, N)``.
    subarray_size:
        Subarray length ``L`` (``2 <= L <= M``).  ``M - L + 1`` forward
        subarrays are averaged; with ``forward_backward=True`` their
        reflected conjugates are averaged in as well, decorrelating up
        to ``2 * (M - L + 1)`` coherent arrivals.
    forward_backward:
        Whether to apply forward-backward averaging (recommended).

    Returns
    -------
    numpy.ndarray
        Hermitian ``(L, L)`` smoothed covariance.
    """
    x = np.asarray(snapshots, dtype=np.complex128)
    if x.ndim != 2:
        raise EstimationError("snapshots must be 2-D (M, N)")
    m = x.shape[0]
    if not 2 <= subarray_size <= m:
        raise EstimationError(
            f"subarray size must be in [2, {m}], got {subarray_size}"
        )
    num_subarrays = m - subarray_size + 1
    accum = np.zeros((subarray_size, subarray_size), dtype=np.complex128)
    for start in range(num_subarrays):
        block = x[start : start + subarray_size, :]
        accum += sample_covariance(block)
    smoothed = accum / num_subarrays
    if forward_backward:
        smoothed = forward_backward_average(smoothed)
    return smoothed


def default_subarray_size(num_antennas: int, max_paths: int = 5) -> int:
    """A subarray length balancing aperture against decorrelation.

    The subarray must keep at least ``max_paths + 1`` elements so the
    noise subspace is non-empty, while leaving enough subarrays
    (``M - L + 1``) to decorrelate the coherent paths.  For the paper's
    8-element array with up to 5 dominant paths this yields ``L = 6``.
    """
    if num_antennas < 3:
        raise EstimationError("spatial smoothing needs at least three antennas")
    # Keep L as large as possible subject to a non-trivial subarray count
    # and a usable noise subspace.
    largest_useful = num_antennas - 2  # at least 3 subarrays with FB averaging
    l = min(max_paths + 1, largest_useful)
    return max(l, 3)
