"""Angular spectra: the shared result type of every AoA estimator."""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.errors import EstimationError
from repro.utils.arrays import FloatArray


@lru_cache(maxsize=8)
def _memoized_angle_grid(num_points: int) -> FloatArray:
    grid = np.linspace(0.0, math.pi, num_points)
    grid.setflags(write=False)
    return grid


def default_angle_grid(num_points: int = 361) -> FloatArray:
    """The scan grid ``[0, pi]`` used by MUSIC and P-MUSIC searches.

    Memoized: repeated calls return the *same* read-only array object,
    so identity/fingerprint-keyed caches downstream (the steering-matrix
    cache, the likelihood interpolation tables) hit instead of
    re-deriving.  Copy before mutating.
    """
    if num_points < 2:
        raise EstimationError("an angle grid needs at least two points")
    return _memoized_angle_grid(num_points)


@dataclass(frozen=True)
class SpectrumPeak:
    """One detected peak of an angular spectrum."""

    angle: float
    value: float
    index: int


@dataclass
class AngularSpectrum:
    """A sampled function of arrival angle over ``[0, pi]``.

    Wraps the ``(angles, values)`` pair produced by MUSIC, Bartlett and
    P-MUSIC, with interpolation and comparison helpers used by the
    change detector.
    """

    angles: FloatArray
    values: FloatArray

    def __post_init__(self) -> None:
        self.angles = np.asarray(self.angles, dtype=np.float64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.angles.ndim != 1 or self.angles.shape != self.values.shape:
            raise EstimationError("angles and values must be equal-length 1-D arrays")
        if self.angles.size < 2:
            raise EstimationError("a spectrum needs at least two samples")
        if np.any(np.diff(self.angles) <= 0):
            raise EstimationError("spectrum angles must be strictly increasing")

    def value_at(self, angle: float) -> float:
        """Linearly-interpolated spectrum value at ``angle``."""
        return float(np.interp(angle, self.angles, self.values))

    def max_in_window(self, angle: float, window: float) -> float:
        """Maximum value within ``angle +/- window``.

        The robust way to read a peak's power: sharp lobes jitter by a
        fraction of a degree between finite-snapshot captures, so a
        point read at the nominal angle measures the jitter, not the
        power.
        """
        mask = np.abs(self.angles - angle) <= window
        if not np.any(mask):
            return self.value_at(angle)
        return float(self.values[mask].max())

    def normalized(self) -> "AngularSpectrum":
        """The spectrum scaled so its maximum is 1 (for plotting/compare)."""
        peak = self.values.max()
        if peak <= 0.0:
            raise EstimationError("cannot normalize an all-zero spectrum")
        return AngularSpectrum(self.angles.copy(), self.values / peak)

    def dominant_angle(self) -> float:
        """Angle of the global maximum."""
        return float(self.angles[int(np.argmax(self.values))])

    def subtract(self, other: "AngularSpectrum") -> "AngularSpectrum":
        """Pointwise difference ``self - other`` (other is resampled).

        This is the raw ingredient of the paper's ``delta Omega`` drop
        spectra; the change detector clips it to positive drops.
        """
        resampled = np.interp(self.angles, other.angles, other.values)
        return AngularSpectrum(self.angles.copy(), self.values - resampled)

    def drop_relative_to(self, baseline: "AngularSpectrum") -> "AngularSpectrum":
        """Positive power drop of ``self`` below ``baseline``.

        Values are ``max(baseline - self, 0)`` so a peak that *rose* is
        not treated as a blocking event.
        """
        resampled = np.interp(self.angles, baseline.angles, baseline.values)
        return AngularSpectrum(
            self.angles.copy(), np.clip(resampled - self.values, 0.0, None)
        )


def spectrum_from_samples(
    angles: Sequence[float], values: Sequence[float]
) -> AngularSpectrum:
    """Convenience constructor from plain sequences."""
    return AngularSpectrum(np.asarray(angles, np.float64), np.asarray(values, np.float64))


def spectrum_from_validated(
    angles: FloatArray, values: FloatArray
) -> AngularSpectrum:
    """:class:`AngularSpectrum` without axis re-validation.

    For batch hot paths that construct many spectra against one
    already-validated axis (the memoized scan grid, or a copy of it):
    the caller guarantees ``angles`` is a strictly increasing 1-D
    float64 array and ``values`` a float64 array of the same shape.
    The result is indistinguishable from the checked constructor.
    """
    spectrum = object.__new__(AngularSpectrum)
    spectrum.angles = angles
    spectrum.values = values
    return spectrum
