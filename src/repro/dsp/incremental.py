"""Incremental spectral recomputation for the streaming hot path.

The stream's per-(reader, tag) covariance changes by *one* rank-1 fold
per window (:class:`repro.stream.covariance.EwCovariance`), yet the
baseline spectral path pays a full ``eigh`` + GEMM recompute every
time.  This module supplies the two pieces that avoid that:

1. **A revision-keyed spectra cache** (:class:`SpectraCache`).  The
   covariance bank stamps a monotonic revision per pair; "same revision
   plus same config fingerprint" implies a bit-identical covariance and
   configuration, so the cached spectrum can be served without
   recomputing anything (counted in ``dsp.incremental.skipped``).
2. **A rank-1 eigen-update** (:func:`scaled_rank_one_eigh`).  When a
   window folds exactly one snapshot column, the new covariance is
   ``scale * R + gain * x x^H`` and the previous eigendecomposition can
   be moved to the new one by solving the secular equation — O(M^2)
   arithmetic plus bounded bisection instead of an O(M^3) ``eigh``.

The eigen-update is *approximate* (floating-point secular roots), so it
is always guarded by an exactness gate: the caller reconstructs the
updated matrix from the proposed factors and compares it against the
true covariance (:func:`reconstruction_drift`); past the tolerance the
pair falls back to a full ``eigh``, counted in
``dsp.incremental.fallbacks``.  Successful updates are counted in
``dsp.incremental.updates``.  The default streaming configuration folds
multi-column windows (not rank-1 steps), so the update never engages
there and the stream output stays byte-identical with the feature
enabled — the gate exists for the single-sweep configurations where it
does engage.

Spatial smoothing with ``L < M`` maps a rank-1 covariance fold onto a
sum of per-block terms, which is no longer rank-1 in the decomposed
domain — so the eigen-update only applies to configurations whose
subarray length reaches the full aperture (:func:`rank_one_eligible`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dsp.backend import get_backend
from repro.dsp.bartlett import bartlett_spectrum_from_covariance
from repro.dsp.batch import BatchPMusicConfig
from repro.dsp.music import estimate_num_sources, music_spectrum_from_subspace
from repro.dsp.pmusic import normalize_peaks
from repro.dsp.spectrum import AngularSpectrum
from repro.errors import EstimationError
from repro.utils.arrays import ArrayLike, ComplexArray, FloatArray

__all__ = [
    "DEFAULT_DRIFT_TOLERANCE",
    "CacheEntry",
    "EigenState",
    "SpectraCache",
    "config_fingerprint",
    "eigen_state_from_covariance",
    "pmusic_spectrum_from_eigh",
    "rank_one_eligible",
    "reconstruction_drift",
    "scaled_rank_one_eigh",
]

#: Relative Frobenius drift between the reconstructed and the true
#: covariance above which an incremental update is rejected.  Secular
#: bisection lands around 1e-13 for well-separated spectra; 1e-8 leaves
#: room for a few hundred chained updates while still catching any
#: numerically degenerate case long before it could move a spectrum
#: peak.
DEFAULT_DRIFT_TOLERANCE = 1e-8

#: Iteration cap of the safeguarded-Newton secular solve.  Newton on
#: the monotone secular function converges quadratically (single-digit
#: iteration counts in practice); the cap only matters when every step
#: degenerates to its bisection fallback, and even then the exactness
#: gate downstream rejects an unconverged root.
_SECULAR_ITERATIONS = 60

#: Relative thresholds under which the update deflates (a vanishing
#: update component or a near-degenerate eigenvalue pair).  Deflated
#: cases are *correct* to handle specially in a full implementation;
#: here they simply reject the update — the full ``eigh`` fallback is
#: cheap and exact, and the gate counts how often it happens.
_DEFLATION_RATIO = 1e-12
_GAP_RATIO = 1e-9


def config_fingerprint(config: BatchPMusicConfig) -> Tuple[object, ...]:
    """A hashable identity of everything that shapes a P-MUSIC spectrum.

    Two configs with equal fingerprints produce bit-identical spectra
    from bit-identical covariances, which is what licenses serving a
    cached spectrum.  The angle grid (an ndarray, unhashable) enters as
    a SHA-1 of its raw bytes.
    """
    grid_tag: Optional[str] = None
    if config.angle_grid is not None:
        grid = np.ascontiguousarray(
            np.asarray(config.angle_grid, dtype=np.float64)
        )
        grid_tag = hashlib.sha1(grid.tobytes()).hexdigest()
    return (
        float(config.spacing_m),
        float(config.wavelength_m),
        config.num_sources,
        config.subarray_size,
        bool(config.forward_backward),
        float(config.source_threshold_ratio),
        float(config.peak_min_relative_height),
        float(config.peak_min_separation),
        grid_tag,
    )


def rank_one_eligible(config: BatchPMusicConfig, num_antennas: int) -> bool:
    """Whether a single-column fold stays rank-1 through smoothing."""
    try:
        sub_len = config.resolve_subarray(num_antennas)
    except EstimationError:
        return False
    return sub_len >= num_antennas


@dataclass
class EigenState:
    """Ascending eigendecomposition of one pair's smoothed covariance."""

    revision: int
    values: FloatArray
    vectors: ComplexArray


@dataclass
class CacheEntry:
    """One pair's cached spectrum, pinned to a covariance revision."""

    revision: int
    fingerprint: Tuple[object, ...]
    spectrum: AngularSpectrum
    eigen: Optional[EigenState] = None


class SpectraCache:
    """Per-(reader, tag) spectra memo keyed by covariance revision.

    The monotonic revision contract of
    :class:`repro.stream.covariance.EwCovariance` (a revision number is
    never associated with two different accumulator states) is what
    makes a hit safe: matching revision and config fingerprint imply
    the cached spectrum is exactly what a recompute would produce.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], CacheEntry] = {}

    def get(self, key: Tuple[str, str]) -> Optional[CacheEntry]:
        """The raw entry for a pair, whatever its revision."""
        return self._entries.get(key)

    def lookup(
        self,
        key: Tuple[str, str],
        revision: int,
        fingerprint: Tuple[object, ...],
    ) -> Optional[CacheEntry]:
        """The entry for a pair iff it matches revision and config."""
        entry = self._entries.get(key)
        if (
            entry is not None
            and entry.revision == revision
            and entry.fingerprint == fingerprint
        ):
            return entry
        return None

    def store(self, key: Tuple[str, str], entry: CacheEntry) -> None:
        """Install (or replace) a pair's entry."""
        self._entries[key] = entry

    def __len__(self) -> int:
        return len(self._entries)


def eigen_state_from_covariance(
    covariance: ArrayLike, revision: int
) -> EigenState:
    """Seed state: a full (exact) eigendecomposition of the covariance.

    Pinned to the NumPy backend — the seed is the trust anchor every
    later incremental step drifts away from, so it must match what the
    full spectral path would compute.
    """
    r = np.asarray(covariance, dtype=np.complex128)
    smoothed = (r + r.conj().T) / 2.0
    values, vectors = get_backend("numpy").eigh(smoothed)
    return EigenState(revision=revision, values=values.real, vectors=vectors)


def _secular_roots(d: FloatArray, zeta2: FloatArray, rho: float) -> FloatArray:
    """Roots of ``1 + rho * sum(zeta2 / (d - lam)) = 0``, all at once.

    For ``rho > 0`` the secular function is strictly increasing on each
    open interval ``(d_k, d_{k+1})`` (and ``(d_{n-1}, d_{n-1} + rho *
    sum(zeta2))`` for the last root), running from -inf to +inf, so
    every interval brackets exactly one root.  All n roots advance
    together — one ``(n, n)`` broadcast evaluates every iterate — with
    a Newton step where it stays inside its bracket and a bisection
    step where it does not (or where a pole made the evaluation
    non-finite).  Monotonicity keeps the brackets valid, Newton makes
    convergence quadratic, and the iteration stops as soon as no root
    moved by more than a few ulps.
    """
    n = d.size
    total = rho * float(np.sum(zeta2))
    lo = d.astype(np.float64, copy=True)
    hi = np.empty(n, dtype=np.float64)
    hi[:-1] = d[1:]
    hi[-1] = d[-1] + total
    poles = d[:, None]
    weights = zeta2[:, None]
    lam = 0.5 * (lo + hi)
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        for _ in range(_SECULAR_ITERATIONS):
            diff = poles - lam[None, :]
            terms = weights / diff
            f = 1.0 + rho * np.sum(terms, axis=0)
            # A nan/inf evaluation (bracket collapsed onto a pole)
            # classifies as "not positive" and parks that side, exactly
            # as a scalar bisection would.
            positive = f > 0.0
            hi = np.where(positive, lam, hi)
            lo = np.where(positive, lo, lam)
            # f' = rho * sum(zeta2 / (d - lam)^2) > 0 everywhere, so
            # the Newton step is always defined; it is replaced by the
            # midpoint whenever it leaves the (updated) bracket.
            step = f / (rho * np.sum(terms / diff, axis=0))
            proposal = lam - step
            # Non-strict bounds: a converged root sits exactly on the
            # bracket edge it last updated, and must be allowed to stay
            # there (a strict test would bisect it away again).  A
            # proposal landing on an original pole endpoint just makes
            # the next evaluation non-finite, which parks the bracket.
            inside = (proposal >= lo) & (proposal <= hi)
            proposal = np.where(inside, proposal, 0.5 * (lo + hi))
            if bool(
                np.all(
                    np.abs(proposal - lam)
                    <= 4e-16 * np.abs(lam) + 1e-300
                )
            ):
                lam = proposal
                break
            lam = proposal
    return lam


def scaled_rank_one_eigh(
    values: FloatArray,
    vectors: ComplexArray,
    scale: float,
    gain: float,
    column: ComplexArray,
) -> Optional[Tuple[FloatArray, ComplexArray]]:
    """Eigendecomposition of ``scale * V diag(values) V^H + gain * x x^H``.

    The exponentially-weighted covariance recurrence is exactly this
    shape (:attr:`repro.stream.covariance.EwCovariance.last_fold`), so
    one secular-equation solve moves a pair's eigendecomposition across
    a window instead of a fresh ``eigh``.

    Parameters
    ----------
    values, vectors:
        Previous eigendecomposition, eigenvalues *ascending* (the
        ``eigh`` convention), eigenvector columns matching.
    scale, gain:
        The fold coefficients; both must be positive.
    column:
        The folded snapshot column ``x``.

    Returns
    -------
    ``(values, vectors)`` ascending, or ``None`` when the update is
    numerically unsafe (deflation: a vanishing update component or a
    near-degenerate eigenvalue pair) and the caller must fall back to a
    full eigendecomposition.  The result is approximate either way —
    callers gate it with :func:`reconstruction_drift`.
    """
    d = scale * np.asarray(values, dtype=np.float64)
    v = np.asarray(vectors, dtype=np.complex128)
    x = np.asarray(column, dtype=np.complex128)
    n = d.size
    if n < 2 or scale <= 0.0 or gain <= 0.0:
        return None
    if v.shape != (n, n) or x.shape != (n,):
        return None
    # Rotate the update into the eigenbasis: the inner problem is
    # diag(d) + gain * z z^H, and with Phi = diag(z / |z|) it reduces
    # to the *real* rank-1 form diag(d) + gain * zeta zeta^T whose
    # eigenpairs the secular equation delivers.
    z = v.conj().T @ x
    zeta = np.abs(z)
    zeta2 = zeta * zeta
    znorm2 = float(np.sum(zeta2))
    if not np.isfinite(znorm2) or znorm2 <= 0.0:
        return None
    if bool(np.any(zeta2 < _DEFLATION_RATIO * znorm2)):
        return None
    span = max(float(d[-1] - d[0]), gain * znorm2)
    if not np.isfinite(span) or span <= 0.0:
        return None
    if bool(np.any(np.diff(d) < _GAP_RATIO * span)):
        return None
    roots = _secular_roots(d, zeta2, gain)
    # Interlacing (d_k < lam_k < d_{k+1}) makes every denominator
    # non-zero in exact arithmetic; a collision after rounding means
    # the bracket collapsed onto a pole, which the gap check should
    # have caught — treat it as deflation.
    denominators = d[:, None] - roots[None, :]
    if bool(np.any(denominators == 0.0)):
        return None
    u = zeta[:, None] / denominators
    norms = np.sqrt(np.sum(u * u, axis=0))
    if not bool(np.all(np.isfinite(norms))) or bool(np.any(norms == 0.0)):
        return None
    u /= norms
    phases = np.where(zeta > 0.0, z / np.where(zeta > 0.0, zeta, 1.0), 1.0)
    new_vectors = v @ (phases[:, None] * u)
    return roots, np.asarray(new_vectors, dtype=np.complex128)


def reconstruction_drift(
    values: FloatArray, vectors: ComplexArray, reference: ComplexArray
) -> float:
    """Relative Frobenius error of ``V diag(w) V^H`` against ``reference``.

    The exactness gate of the incremental path: the true covariance is
    always available in O(M^2) (the bank maintains it exactly), so the
    proposed factors are checked against it and rejected past the
    tolerance — drift can never accumulate silently.
    """
    rebuilt = (vectors * values) @ vectors.conj().T
    norm = float(np.linalg.norm(reference))
    return float(np.linalg.norm(rebuilt - reference)) / max(norm, 1e-300)


def pmusic_spectrum_from_eigh(
    covariance: ComplexArray,
    values_descending: FloatArray,
    vectors_descending: ComplexArray,
    config: BatchPMusicConfig,
) -> AngularSpectrum:
    """P-MUSIC spectrum from a precomputed smoothed eigendecomposition.

    Mirrors :func:`repro.stream.covariance.pmusic_spectrum_from_covariance`
    stage for stage with the eigendecomposition replaced by the supplied
    (incrementally updated) factors; only valid for configurations where
    smoothing is the identity (:func:`rank_one_eligible`), because those
    are the only ones whose decomposed matrix the rank-1 update tracks.
    """
    m = covariance.shape[0]
    p = (
        config.num_sources
        if config.num_sources is not None
        else estimate_num_sources(
            values_descending,
            config.source_threshold_ratio,
            max_sources=m - 1,
        )
    )
    if not 0 < p < m:
        raise EstimationError(
            f"num_sources must be in (0, {m}) to leave a noise subspace"
        )
    un = vectors_descending[:, p:]
    music_spec = music_spectrum_from_subspace(
        un, config.spacing_m, config.wavelength_m, config.angle_grid
    )
    normalized = normalize_peaks(
        music_spec, config.peak_min_relative_height, config.peak_min_separation
    )
    power = bartlett_spectrum_from_covariance(
        covariance, config.spacing_m, config.wavelength_m, normalized.angles
    )
    return AngularSpectrum(
        normalized.angles.copy(), power.values * normalized.values
    )
