"""Batched spectral kernels: N P-MUSIC problems as one stacked pass.

Every fix runs the Section 4.2 chain (covariance → smoothing →
eigendecomposition → MUSIC → ``Nor(·)`` → Bartlett → P-MUSIC,
Eqs. 8/13/14) for each of the ~100 (reader, tag) pairs.  Each problem
is tiny — an 8×8 ``eigh``, a handful of small matmuls — so the scalar
path's cost is dominated by Python/NumPy dispatch, not arithmetic.

This module restates every stage over an ``(N, M, S)`` snapshot stack
(or an ``(N, M, M)`` covariance stack for the streaming engine): one
stacked matmul for the covariances, one batched Hermitian ``eigh``,
one masked projection for all noise subspaces, and one stacked
GEMM-plus-contraction for all Bartlett powers.  Peak detection stays
per-item (scipy), but the per-lobe ``Nor(·)`` division is applied as a
single fused ``(N, G)`` operation.

Every dense primitive (GEMM, ``eigh``/``eigvalsh``, contraction)
dispatches through :mod:`repro.dsp.backend`: NumPy — the default — is
an exact passthrough, while ``torch``/``cupy`` run the same call
shapes on their own kernels (tolerance-level agreement, enforced by
the backend's verification probe).  The ``batch.*`` spans carry the
dispatching backend's name so a profile always says which library
produced it.

**Equivalence contract.** Every kernel reproduces the scalar reference
(:class:`repro.dsp.pmusic.PMusicEstimator`,
:func:`repro.stream.covariance.pmusic_spectrum_from_covariance`)
*bit for bit*: stacked BLAS/LAPACK calls process each item with the
same kernels as the scalar calls, masked reductions prepend exact
zeros (``0.0 + x == x``), and every elementwise op is applied in the
scalar order.  ``tests/test_dsp_batch.py`` and
``tests/test_property_batch.py`` pin this with exact equality, and the
scalar estimators remain the readable reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.constants import MAX_DOMINANT_PATHS
from repro.dsp.backend import ArrayBackend, active_backend
from repro.dsp.music import sorted_eigh
from repro.dsp.peaks import candidate_peak_indices, region_starts_from_indices
from repro.dsp.pmusic import PMusicEstimator
from repro.dsp.smoothing import default_subarray_size
from repro.dsp.spectrum import (
    AngularSpectrum,
    default_angle_grid,
    spectrum_from_validated,
)
from repro.errors import EstimationError
from repro.rf.array import cached_steering_matrix
from repro.utils.arrays import ArrayLike, ComplexArray, FloatArray, IntArray


@dataclass(frozen=True)
class BatchPMusicConfig:
    """Everything the batched kernels need to mirror one scalar estimator.

    Mirrors the union of :class:`repro.dsp.pmusic.PMusicEstimator` and
    its inner :class:`repro.dsp.music.MusicEstimator` knobs; build one
    with :func:`config_from_estimator` to guarantee the fields match.
    """

    spacing_m: float
    wavelength_m: float
    num_sources: Optional[int] = None
    subarray_size: Optional[int] = None
    forward_backward: bool = True
    source_threshold_ratio: float = 0.03
    peak_min_relative_height: float = 0.02
    peak_min_separation: float = 0.05
    angle_grid: Optional[FloatArray] = None

    def grid(self) -> FloatArray:
        """The scan grid this configuration evaluates on."""
        if self.angle_grid is None:
            return default_angle_grid()
        return np.asarray(self.angle_grid, dtype=np.float64)

    def resolve_subarray(self, num_antennas: int) -> int:
        """Subarray length ``L``, defaulted exactly like the scalar path."""
        if self.subarray_size is not None:
            return self.subarray_size
        return default_subarray_size(num_antennas, MAX_DOMINANT_PATHS)


def config_from_estimator(estimator: PMusicEstimator) -> BatchPMusicConfig:
    """Extract a :class:`BatchPMusicConfig` from a scalar estimator."""
    music = estimator.music
    assert music is not None  # set by PMusicEstimator.__post_init__
    return BatchPMusicConfig(
        spacing_m=estimator.spacing_m,
        wavelength_m=estimator.wavelength_m,
        num_sources=music.num_sources,
        subarray_size=music.subarray_size,
        forward_backward=music.forward_backward,
        source_threshold_ratio=music.source_threshold_ratio,
        peak_min_relative_height=estimator.peak_min_relative_height,
        peak_min_separation=estimator.peak_min_separation,
        angle_grid=music.angle_grid if music.angle_grid is not None else estimator.angle_grid,
    )


def _as_stack(arrays: ArrayLike, kind: str) -> ComplexArray:
    stack = np.asarray(arrays, dtype=np.complex128)
    if stack.ndim != 3:
        raise EstimationError(f"{kind} stack must be 3-D, got shape {stack.shape}")
    return stack


def batched_sample_covariance(
    snapshots: ArrayLike, xp: Optional[ArrayBackend] = None
) -> ComplexArray:
    """Stacked ``R_i = X_i X_i^H / N`` over an ``(N, M, S)`` snapshot stack.

    Bit-identical to mapping :func:`repro.dsp.covariance.sample_covariance`
    over the stack: the stacked matmul runs the same GEMM per item, and
    the Hermitian symmetrization is the same elementwise expression.
    """
    xp = active_backend() if xp is None else xp
    x = _as_stack(snapshots, "snapshot")
    if x.shape[2] < 1:
        raise EstimationError("need at least one snapshot")
    r = xp.matmul(x, x.conj().transpose(0, 2, 1)) / x.shape[2]
    return (r + r.conj().transpose(0, 2, 1)) / 2.0


def _batched_forward_backward(
    covariances: ComplexArray, xp: Optional[ArrayBackend] = None
) -> ComplexArray:
    xp = active_backend() if xp is None else xp
    length = covariances.shape[1]
    j = np.fliplr(np.eye(length))
    return (covariances + xp.matmul(xp.matmul(j, covariances.conj()), j)) / 2.0


def batched_smoothed_covariance(
    snapshots: ArrayLike,
    subarray_size: int,
    forward_backward: bool = True,
    xp: Optional[ArrayBackend] = None,
) -> ComplexArray:
    """Stacked spatial smoothing over an ``(N, M, S)`` snapshot stack.

    Accumulates the per-subarray sample covariances in the scalar loop
    order so the floating-point sum matches
    :func:`repro.dsp.smoothing.spatially_smoothed_covariance` exactly.
    """
    xp = active_backend() if xp is None else xp
    x = _as_stack(snapshots, "snapshot")
    m = x.shape[1]
    if not 2 <= subarray_size <= m:
        raise EstimationError(
            f"subarray size must be in [2, {m}], got {subarray_size}"
        )
    num_subarrays = m - subarray_size + 1
    accum = np.zeros(
        (x.shape[0], subarray_size, subarray_size), dtype=np.complex128
    )
    for start in range(num_subarrays):
        accum += batched_sample_covariance(
            x[:, start : start + subarray_size, :], xp=xp
        )
    smoothed = accum / num_subarrays
    if forward_backward:
        smoothed = _batched_forward_backward(smoothed, xp=xp)
    return smoothed


def batched_smoothed_from_full(
    covariances: ArrayLike,
    subarray_size: int,
    forward_backward: bool = True,
    xp: Optional[ArrayBackend] = None,
) -> ComplexArray:
    """Stacked covariance-domain smoothing over an ``(N, M, M)`` stack.

    The batched twin of
    :func:`repro.stream.covariance.smoothed_covariance_from_full`:
    averages the Hermitian-symmetrized ``(L, L)`` diagonal blocks in the
    same order.
    """
    xp = active_backend() if xp is None else xp
    r = _as_stack(covariances, "covariance")
    m = r.shape[1]
    if r.shape[2] != m:
        raise EstimationError("covariances must be square (N, M, M)")
    if not 2 <= subarray_size <= m:
        raise EstimationError(
            f"subarray size must be in [2, {m}], got {subarray_size}"
        )
    num_subarrays = m - subarray_size + 1
    accum = np.zeros(
        (r.shape[0], subarray_size, subarray_size), dtype=np.complex128
    )
    for start in range(num_subarrays):
        block = r[:, start : start + subarray_size, start : start + subarray_size]
        accum += (block + block.conj().transpose(0, 2, 1)) / 2.0
    smoothed = accum / num_subarrays
    if forward_backward:
        smoothed = _batched_forward_backward(smoothed, xp=xp)
    return smoothed


def batched_eigendecompose(
    covariances: ArrayLike, xp: Optional[ArrayBackend] = None
) -> Tuple[FloatArray, ComplexArray]:
    """Descending eigenvalues/vectors of an ``(N, L, L)`` Hermitian stack.

    One LAPACK call per item either way — batching removes only the
    Python dispatch.  The eigh-then-sort sequence itself is
    :func:`repro.dsp.music.sorted_eigh`, shared with the scalar
    reference so the two orderings cannot drift.
    """
    xp = active_backend() if xp is None else xp
    r = _as_stack(covariances, "covariance")
    if r.shape[1] != r.shape[2]:
        raise EstimationError("covariances must be square (N, L, L)")
    return sorted_eigh(r, xp=xp)


def batched_estimate_num_sources(
    eigenvalues: ArrayLike,
    threshold_ratio: float = 0.03,
    max_sources: Optional[int] = None,
) -> IntArray:
    """Vectorized :func:`repro.dsp.music.estimate_num_sources` over rows.

    Applies the identical threshold/clamp arithmetic per row, including
    the ``M == 1`` guard that the scalar function raises up front.
    """
    values = np.asarray(eigenvalues, dtype=np.float64)
    if values.ndim != 2 or values.shape[1] == 0:
        raise EstimationError("no eigenvalues supplied")
    if values.shape[1] == 1:
        raise EstimationError(
            "a single-element array leaves no noise subspace; "
            "MUSIC needs at least two antennas"
        )
    size = values.shape[1]
    peak = values.max(axis=1)
    count = np.sum(values > threshold_ratio * peak[:, None], axis=1)
    ceiling = size - 1 if max_sources is None else min(max_sources, size - 1)
    result = np.maximum(1, np.minimum(count, ceiling))
    result[peak <= 0.0] = 0
    return result.astype(np.int64)


def batched_music_spectra(
    eigenvectors: ComplexArray,
    num_sources: IntArray,
    spacing_m: float,
    wavelength_m: float,
    angle_grid: FloatArray,
    xp: Optional[ArrayBackend] = None,
) -> FloatArray:
    """All N MUSIC pseudo-spectra from a descending eigenvector stack.

    Items are grouped by their source count ``P`` and each group runs
    one stacked matmul whose per-item shape — ``(L - P, L) @ (L, G)``,
    with the same memory layout — matches the scalar
    ``un.conj().T @ a`` exactly, so BLAS dispatches the identical
    kernel and every spectrum equals
    :func:`repro.dsp.music.music_spectrum_from_subspace` bit for bit.
    (Projecting all ``L`` rows once and masking the signal rows is
    faster still, but small-row GEMMs can take a different BLAS path
    than the full square product, which breaks bit-equality.)
    """
    xp = active_backend() if xp is None else xp
    vectors = _as_stack(eigenvectors, "eigenvector")
    length = vectors.shape[1]
    p = np.asarray(num_sources, dtype=np.int64)
    if np.any((p <= 0) | (p >= length)):
        bad = int(p[np.argmax((p <= 0) | (p >= length))])
        raise EstimationError(
            f"num_sources must be in (0, {length}) to leave a noise subspace"
            f" (got {bad})"
        )
    a = cached_steering_matrix(angle_grid, length, spacing_m, wavelength_m)
    result = np.empty((vectors.shape[0], a.shape[1]), dtype=np.float64)
    for count in np.unique(p):
        idx = np.nonzero(p == count)[0]
        un_t = vectors[idx][:, :, count:].conj().transpose(0, 2, 1)
        projected = xp.matmul(un_t, a)  # (K, L - P, G)
        denom = np.sum(np.abs(projected) ** 2, axis=1)
        result[idx] = 1.0 / np.clip(denom, 1e-15, None)
    return result


def batched_bartlett_spectra(
    covariances: ArrayLike,
    spacing_m: float,
    wavelength_m: float,
    angle_grid: FloatArray,
    xp: Optional[ArrayBackend] = None,
) -> FloatArray:
    """All N Bartlett power spectra ``a^H R_i a / M^2`` (Eq. 13).

    Split into a stacked GEMM (``R_i a``, the flops) and one
    two-operand contraction (``sum_m conj(a) * (R_i a)``): the GEMM's
    per-item shape ``(M, M) @ (M, G)`` matches the scalar ``r @ a``
    call exactly, and the contraction sums the same ``M`` products in
    the same order as the scalar ``"mg,mg->g"`` einsum — so each row
    is bit-identical to
    :func:`repro.dsp.bartlett.bartlett_spectrum_from_covariance`,
    which is written as the same two steps.  (The historical
    three-operand ``"mg,nmk,kg->ng"`` einsum computed identical values
    through einsum's own loop nest at roughly 3x the cost of letting
    BLAS do the inner product.)
    """
    xp = active_backend() if xp is None else xp
    r = _as_stack(covariances, "covariance")
    m = r.shape[1]
    if r.shape[2] != m:
        raise EstimationError("covariances must be square (N, M, M)")
    a = cached_steering_matrix(angle_grid, m, spacing_m, wavelength_m)
    product = xp.matmul(r, a)  # (N, M, G)
    # The quadratic form a^H R a of a Hermitian R is mathematically real;
    # np.real only strips round-off in the imaginary storage.
    values = np.real(xp.einsum("mg,nmg->ng", a.conj(), product)) / (m * m)  # reprolint: disable=RL003
    return np.clip(values, 0.0, None)


def batched_normalize_peaks(
    music_values: FloatArray,
    angle_grid: FloatArray,
    min_relative_height: float = 0.02,
    min_separation: float = 0.05,
) -> FloatArray:
    """Per-lobe ``Nor(·)`` over all N spectra as one fused division.

    Peak detection and lobe segmentation stay per item (scipy), but the
    per-lobe maxima are collected into an ``(N, G)`` divisor array and
    applied in a single elementwise division — the same scalar value
    divides the same slice, so every quotient matches
    :func:`repro.dsp.pmusic.normalize_peaks` bit for bit.  Items are
    scanned in order and the first failure raises, exactly like the
    scalar per-pair loop.
    """
    values = np.asarray(music_values, dtype=np.float64)
    if values.ndim != 2:
        raise EstimationError("music spectra must be a 2-D (N, G) stack")
    grid = np.asarray(angle_grid, dtype=np.float64)
    divisors = _batched_nor_divisors(
        values, grid, min_relative_height, min_separation
    )
    return values / divisors


def _batched_nor_divisors(
    music_values: FloatArray,
    angle_grid: FloatArray,
    min_relative_height: float,
    min_separation: float,
) -> FloatArray:
    """The ``(N, G)`` per-lobe divisor stack behind ``Nor(·)``.

    Mirrors :func:`repro.dsp.pmusic.normalize_peaks` region by region:
    each grid point's divisor is its lobe's maximum (1.0 where the lobe
    maximum is non-positive, matching the scalar guard).  Raises on the
    first item with no detectable peaks, in item order, with the scalar
    error message.
    """
    divisors = np.empty_like(music_values)
    grid_step = float(np.mean(np.diff(angle_grid)))
    distance = max(1, int(round(min_separation / grid_step)))
    size = music_values.shape[1]
    # One vectorized pass for the per-row peak heights: max is exact
    # (no rounding), so each entry equals the scalar row.max().
    peak_values = music_values.max(axis=1)
    total_peaks = 0
    for i in range(music_values.shape[0]):
        row = music_values[i]
        peak_value = peak_values[i]
        indices = (
            candidate_peak_indices(
                row, min_relative_height * peak_value, distance
            )
            if peak_value > 0.0
            else []
        )
        starts = region_starts_from_indices(row, indices)
        if starts is None:
            raise EstimationError("cannot normalize a spectrum with no peaks")
        total_peaks += len(indices)
        # Exact per-region maxima (max involves no rounding, so the
        # reduceat fill matches the scalar per-slice loop bit for bit);
        # a non-positive lobe maximum keeps the scalar guard's 1.0.
        region_max = np.maximum.reduceat(row, starts)
        if region_max.size == 1:
            divisors[i] = region_max[0] if region_max[0] > 0.0 else 1.0
            continue
        lengths = np.diff(np.append(starts, size))
        divisors[i] = np.repeat(
            np.where(region_max > 0.0, region_max, 1.0), lengths
        )
    # One aggregated count event: same counter total as the scalar
    # per-spectrum emissions, and nothing is double-counted when a
    # failed batch is replayed by the scalar fallback (the scalar loop
    # then emits its own events).
    obs.count("pmusic.peaks_found", total_peaks)
    return divisors


def batched_pmusic_spectra(
    snapshots: ArrayLike,
    config: BatchPMusicConfig,
) -> List[AngularSpectrum]:
    """All N P-MUSIC spectra ``Omega_i(theta)`` from a snapshot stack.

    The batched twin of
    :meth:`repro.dsp.pmusic.PMusicEstimator.spectrum` (Eq. 14): MUSIC
    over the smoothed covariances, ``Nor(·)``, times Bartlett power
    from the *unsmoothed* sample covariances.
    """
    x = _as_stack(snapshots, "snapshot")
    n, m = x.shape[0], x.shape[1]
    if n == 0:
        return []
    grid = config.grid()
    xp = active_backend()
    with obs.span("batch.pmusic", batch=n, size=m, backend=xp.name):
        with obs.span("batch.covariance", backend=xp.name):
            full = batched_sample_covariance(x, xp=xp)
            sub_len = config.resolve_subarray(m)
            if sub_len >= m:
                smoothed = full
            else:
                smoothed = batched_smoothed_covariance(
                    x, sub_len, config.forward_backward, xp=xp
                )
        music_values = _batched_music_values(smoothed, config, grid, xp)
        with obs.span("batch.bartlett", backend=xp.name):
            power = batched_bartlett_spectra(
                full, config.spacing_m, config.wavelength_m, grid, xp=xp
            )
        return _finish_pmusic(music_values, power, grid, config)


def batched_pmusic_from_covariances(
    covariances: ArrayLike,
    config: BatchPMusicConfig,
) -> List[AngularSpectrum]:
    """All N P-MUSIC spectra straight from an ``(N, M, M)`` covariance stack.

    The batched twin of
    :func:`repro.stream.covariance.pmusic_spectrum_from_covariance`,
    mirroring its exact call sequence: ``eigvalsh`` for source counting,
    a separate ``eigh`` inside the noise-subspace step, and Bartlett
    power from the *raw* (unsymmetrized) covariances.
    """
    r = _as_stack(covariances, "covariance")
    n, m = r.shape[0], r.shape[1]
    if r.shape[2] != m:
        raise EstimationError("covariances must be square (N, M, M)")
    if n == 0:
        return []
    grid = config.grid()
    xp = active_backend()
    with obs.span(
        "batch.pmusic", batch=n, size=m, domain="covariance", backend=xp.name
    ):
        with obs.span("batch.covariance", backend=xp.name):
            sub_len = config.resolve_subarray(m)
            if sub_len >= m:
                smoothed = (r + r.conj().transpose(0, 2, 1)) / 2.0
            else:
                smoothed = batched_smoothed_from_full(
                    r, sub_len, config.forward_backward, xp=xp
                )
        music_values = _batched_music_values_covariance_domain(
            smoothed, config, grid, xp
        )
        with obs.span("batch.bartlett", backend=xp.name):
            power = batched_bartlett_spectra(
                r, config.spacing_m, config.wavelength_m, grid, xp=xp
            )
        return _finish_pmusic(music_values, power, grid, config)


def _batched_music_values(
    smoothed: ComplexArray,
    config: BatchPMusicConfig,
    grid: FloatArray,
    xp: ArrayBackend,
) -> FloatArray:
    """MUSIC spectra of a smoothed stack, snapshot-domain call sequence.

    Mirrors :meth:`repro.dsp.music.MusicEstimator.noise_subspace`: one
    ``eigh`` provides both the source-count eigenvalues and the
    subspace eigenvectors.
    """
    with obs.span(
        "batch.eigendecomposition", size=smoothed.shape[1], backend=xp.name
    ):
        eigenvalues, eigenvectors = batched_eigendecompose(smoothed, xp=xp)
        p = _resolve_num_sources(eigenvalues, config, smoothed.shape[1])
        obs.count("music.sources_detected", int(p.sum()))
    with obs.span("batch.spectrum", backend=xp.name):
        return batched_music_spectra(
            eigenvectors, p, config.spacing_m, config.wavelength_m, grid, xp=xp
        )


def _batched_music_values_covariance_domain(
    smoothed: ComplexArray,
    config: BatchPMusicConfig,
    grid: FloatArray,
    xp: ArrayBackend,
) -> FloatArray:
    """MUSIC spectra of a smoothed stack, covariance-domain call sequence.

    :func:`repro.stream.covariance.pmusic_spectrum_from_covariance`
    counts sources from ``eigvalsh`` (no vectors) and then runs a
    separate ``eigh`` inside ``noise_subspace``; the two can disagree
    in the last bits, so both are reproduced here.
    """
    with obs.span(
        "batch.eigendecomposition", size=smoothed.shape[1], backend=xp.name
    ):
        count_values = xp.eigvalsh(smoothed)[:, ::-1]
        p = _resolve_num_sources(count_values, config, smoothed.shape[1])
        _, eigenvectors = batched_eigendecompose(smoothed, xp=xp)
    with obs.span("batch.spectrum", backend=xp.name):
        return batched_music_spectra(
            eigenvectors, p, config.spacing_m, config.wavelength_m, grid, xp=xp
        )


def _resolve_num_sources(
    eigenvalues: FloatArray, config: BatchPMusicConfig, length: int
) -> IntArray:
    if config.num_sources is not None:
        return np.full(eigenvalues.shape[0], config.num_sources, dtype=np.int64)
    return batched_estimate_num_sources(
        eigenvalues, config.source_threshold_ratio, max_sources=length - 1
    )


def _finish_pmusic(
    music_values: FloatArray,
    power: FloatArray,
    grid: FloatArray,
    config: BatchPMusicConfig,
) -> List[AngularSpectrum]:
    with obs.span("batch.normalize"):
        divisors = _batched_nor_divisors(
            music_values,
            grid,
            config.peak_min_relative_height,
            config.peak_min_separation,
        )
        omega = power * (music_values / divisors)
    # The shared scan grid is already validated (strictly increasing
    # float64), so the per-item constructor can skip re-validation —
    # at hall-scene batch sizes that check is a measurable slice of
    # the whole normalize stage.  Every spectrum of the batch shares
    # ONE read-only axis object (the memoized default grid when the
    # config has none): baseline and online spectra then satisfy the
    # detector's ``angles is grid`` identity fast path instead of an
    # elementwise comparison per pair, and nothing can mutate the axis
    # under a sibling spectrum.
    if grid.flags.writeable:
        grid = grid.copy()
        grid.setflags(write=False)
    return [
        spectrum_from_validated(grid, omega[i])
        for i in range(omega.shape[0])
    ]
