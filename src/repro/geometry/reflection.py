"""Specular reflection via the image method.

Reflectors (book shelves, laptop lids, metal plates, walls) are modelled
as finite line segments ("plates") with an amplitude reflection
coefficient.  A single-bounce path from a source to a receiver off a
plate exists iff the segment from the source's *mirror image* to the
receiver crosses the plate; the crossing point is the specular
reflection point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.segment import Segment


def mirror_point(point: Point, plate: Segment) -> Point:
    """Mirror ``point`` across the infinite line containing ``plate``."""
    direction = plate.direction()
    rel = point - plate.start
    along = direction * rel.dot(direction)
    perpendicular = rel - along
    return point - perpendicular * 2.0


def specular_reflection_point(
    source: Point, receiver: Point, plate: Segment
) -> Optional[Point]:
    """The point on ``plate`` where a specular bounce from ``source`` to
    ``receiver`` occurs, or ``None`` when no single-bounce path exists.

    The bounce must be a genuine reflection: source and receiver must lie
    on the *same* side of the plate's line (a crossing of the line means
    transmission, not reflection), and the image ray must hit the finite
    plate segment.
    """
    direction = plate.direction()
    normal = direction.perpendicular()
    side_source = (source - plate.start).dot(normal)
    side_receiver = (receiver - plate.start).dot(normal)
    if side_source * side_receiver <= 0.0:
        return None
    image = mirror_point(source, plate)
    return Segment(image, receiver).intersection(plate)


@dataclass(frozen=True)
class Reflector:
    """A finite reflecting plate with an amplitude reflection coefficient.

    Parameters
    ----------
    plate:
        The segment occupied by the reflecting surface.
    coefficient:
        Amplitude reflection coefficient magnitude in ``(0, 1]``.  Metal
        plates are close to 1; book shelves noticeably lower.
    phase_shift:
        Phase added on reflection (radians).  A perfect conductor flips
        the field, i.e. ``pi``.
    name:
        Optional label used in scene descriptions and debug output.
    """

    plate: Segment
    coefficient: float = 0.7
    phase_shift: float = 3.141592653589793
    name: str = field(default="reflector")

    def __post_init__(self) -> None:
        if not 0.0 < self.coefficient <= 1.0:
            raise GeometryError(
                f"reflection coefficient must be in (0, 1], got {self.coefficient}"
            )
        if self.plate.length() <= 0.0:
            raise GeometryError("reflector plate must have positive length")

    def bounce(self, source: Point, receiver: Point) -> Optional[Point]:
        """Specular reflection point for a source/receiver pair, if any."""
        return specular_reflection_point(source, receiver, self.plate)
