"""2-D computational geometry used by the propagation simulator.

Everything D-Watch detects reduces to geometry: a propagation path is a
polyline from a tag (possibly via a reflector) to a reader antenna, and a
target "blocks" a path when its body circle intersects one of the
polyline's segments.
"""

from repro.geometry.point import Point, distance, bearing
from repro.geometry.segment import Segment
from repro.geometry.shapes import Circle, Rectangle
from repro.geometry.reflection import Reflector, mirror_point, specular_reflection_point
from repro.geometry.blocking import (
    segment_intersects_circle,
    path_blocked_by,
    blocking_targets,
    first_blocked_leg,
)

__all__ = [
    "Point",
    "distance",
    "bearing",
    "Segment",
    "Circle",
    "Rectangle",
    "Reflector",
    "mirror_point",
    "specular_reflection_point",
    "segment_intersects_circle",
    "path_blocked_by",
    "blocking_targets",
    "first_blocked_leg",
]
