"""Simple closed shapes: target bodies (circles) and room bounds (rectangles)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class Circle:
    """A disc modelling a target's horizontal cross-section."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0.0:
            raise GeometryError(f"circle radius must be positive, got {self.radius}")

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside or on the circle."""
        return self.center.distance_to(point) <= self.radius

    def distance_to(self, point: Point) -> float:
        """Distance from ``point`` to the circle *boundary* (0 inside).

        This is the paper's extended-target error metric: an estimate
        anywhere within the target body counts as zero error, otherwise
        the error is the gap to the body's edge.
        """
        return max(0.0, self.center.distance_to(point) - self.radius)


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangle, used for room footprints and tables."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x >= self.max_x or self.min_y >= self.max_y:
            raise GeometryError("rectangle must have positive width and height")

    @property
    def width(self) -> float:
        """Extent along x (metres)."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y (metres)."""
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        """The rectangle's centroid."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point, margin: float = 0.0) -> bool:
        """Whether ``point`` lies inside, shrunk inward by ``margin``."""
        return (
            self.min_x + margin <= point.x <= self.max_x - margin
            and self.min_y + margin <= point.y <= self.max_y - margin
        )

    def walls(self) -> List[Segment]:
        """The four boundary walls as segments (counter-clockwise)."""
        a = Point(self.min_x, self.min_y)
        b = Point(self.max_x, self.min_y)
        c = Point(self.max_x, self.max_y)
        d = Point(self.min_x, self.max_y)
        return [Segment(a, b), Segment(b, c), Segment(c, d), Segment(d, a)]

    def clamp(self, point: Point) -> Point:
        """The nearest point inside the rectangle."""
        return Point(
            min(self.max_x, max(self.min_x, point.x)),
            min(self.max_y, max(self.min_y, point.y)),
        )
