"""Line segments: the building block of propagation polylines."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import GeometryError
from repro.geometry.point import Point


@dataclass(frozen=True)
class Segment:
    """A directed line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    def direction(self) -> Point:
        """Unit vector from ``start`` towards ``end``.

        Raises
        ------
        GeometryError
            If the segment is degenerate (zero length).
        """
        delta = self.end - self.start
        if delta.norm() == 0.0:
            raise GeometryError("degenerate segment has no direction")
        return delta.normalized()

    def point_at(self, t: float) -> Point:
        """The point ``start + t * (end - start)``; ``t`` in [0, 1] stays on the segment."""
        return self.start + (self.end - self.start) * t

    def midpoint(self) -> Point:
        """The segment's midpoint."""
        return self.point_at(0.5)

    def project_parameter(self, point: Point) -> float:
        """Parameter ``t`` of the orthogonal projection of ``point`` (unclamped)."""
        delta = self.end - self.start
        denom = delta.dot(delta)
        if denom == 0.0:
            raise GeometryError("cannot project onto a degenerate segment")
        return (point - self.start).dot(delta) / denom

    def closest_point(self, point: Point) -> Point:
        """The point on the segment closest to ``point``."""
        delta = self.end - self.start
        denom = delta.dot(delta)
        if denom == 0.0:
            return self.start
        t = min(1.0, max(0.0, (point - self.start).dot(delta) / denom))
        return self.point_at(t)

    def distance_to_point(self, point: Point) -> float:
        """Shortest distance from ``point`` to the segment."""
        return self.closest_point(point).distance_to(point)

    def intersection(self, other: "Segment") -> Optional[Point]:
        """Intersection point with another segment, or ``None``.

        Collinear overlapping segments return ``None``: the propagation
        simulator only ever needs transversal crossings (a ray hitting a
        reflector plate), and an overlap has no unique crossing point.
        """
        p, r = self.start, self.end - self.start
        q, s = other.start, other.end - other.start
        denom = r.cross(s)
        if abs(denom) < 1e-15:
            return None
        qp = q - p
        t = qp.cross(s) / denom
        u = qp.cross(r) / denom
        if -1e-12 <= t <= 1.0 + 1e-12 and -1e-12 <= u <= 1.0 + 1e-12:
            return self.point_at(min(1.0, max(0.0, t)))
        return None

    def angle(self) -> float:
        """Orientation of the segment in ``(-pi, pi]`` radians."""
        return math.atan2(self.end.y - self.start.y, self.end.x - self.start.x)
