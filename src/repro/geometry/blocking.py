"""Path-blocking predicates.

A D-Watch "path" is a polyline of segments (tag -> antenna, or
tag -> reflector -> antenna).  A target blocks the path when its body
circle intersects any of the polyline's segments; the power of that path
then drops, which is the event P-MUSIC detects.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.geometry.segment import Segment
from repro.geometry.shapes import Circle


def segment_intersects_circle(segment: Segment, circle: Circle) -> bool:
    """Whether ``segment`` passes through (or touches) ``circle``."""
    return segment.distance_to_point(circle.center) <= circle.radius


def path_blocked_by(path: Sequence[Segment], target: Circle) -> bool:
    """Whether ``target`` blocks any leg of the propagation polyline.

    Endpoints sitting exactly on the circle boundary count as blocked;
    physically the body is grazing the path and shadows it partially,
    and the conservative choice keeps the detector's recall high.
    """
    return any(segment_intersects_circle(seg, target) for seg in path)


def blocking_targets(
    path: Sequence[Segment], targets: Iterable[Circle]
) -> List[int]:
    """Indices of the targets that block ``path`` (possibly empty)."""
    return [
        index
        for index, target in enumerate(targets)
        if path_blocked_by(path, target)
    ]


def first_blocked_leg(path: Sequence[Segment], target: Circle) -> int:
    """Index of the first leg of ``path`` blocked by ``target``, or -1.

    For a reflected path, leg 0 is tag->reflector and leg 1 is
    reflector->antenna.  Blocking leg 0 produces the paper's "wrong
    angle" case (Section 4.3): the AoA peak that drops points at the
    reflector, not at the target.
    """
    for index, seg in enumerate(path):
        if segment_intersects_circle(seg, target):
            return index
    return -1
