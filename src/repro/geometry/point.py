"""Immutable 2-D points with the vector arithmetic the simulator needs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple


@dataclass(frozen=True)
class Point:
    """A point (or free vector) in the 2-D monitoring plane, in metres."""

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise ValueError(f"point coordinates must be finite, got ({self.x}, {self.y})")

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def dot(self, other: "Point") -> float:
        """Scalar (dot) product with another point treated as a vector."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the 2-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length when treated as a vector from the origin."""
        return math.hypot(self.x, self.y)

    def normalized(self) -> "Point":
        """Unit vector in the same direction.

        Raises
        ------
        ValueError
            If this is the zero vector.
        """
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Point(self.x / n, self.y / n)

    def perpendicular(self) -> "Point":
        """The vector rotated +90 degrees (counter-clockwise)."""
        return Point(-self.y, self.x)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def angle_to(self, other: "Point") -> float:
        """Bearing of ``other`` as seen from this point, in ``(-pi, pi]``."""
        return math.atan2(other.y - self.y, other.x - self.x)

    def rotated(self, angle: float, about: Optional["Point"] = None) -> "Point":
        """This point rotated by ``angle`` radians about ``about`` (default origin)."""
        pivot = about if about is not None else Point(0.0, 0.0)
        dx, dy = self.x - pivot.x, self.y - pivot.y
        c, s = math.cos(angle), math.sin(angle)
        return Point(pivot.x + c * dx - s * dy, pivot.y + s * dx + c * dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Plain ``(x, y)`` tuple, convenient for numpy interop."""
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def bearing(origin: Point, target: Point) -> float:
    """Bearing of ``target`` from ``origin`` in ``(-pi, pi]`` radians."""
    return origin.angle_to(target)
