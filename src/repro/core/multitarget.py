"""Multi-target localization (Section 6.7).

Sparsely placed targets block *disjoint* subsets of paths, so each
target owns a cluster of blocking events no other target explains.
With only two readers, per-target consensus alone is not enough: two
true targets at (a, b) and (c, d) also produce phantom intersections at
(a, d) and (c, b) — the classic two-sensor ghost problem — and a ghost
can hoard both targets' event clusters.  What kills ghosts is *joint*
explanation: the target set that explains the largest total event
weight, counting every event once, is the real one, because a ghost
consumes two targets' clusters while leaving their remaining events
orphaned.

The solver therefore builds one candidate pool (likelihood modes plus
cross-reader ray intersections), then searches small candidate subsets
for the maximum-coverage assignment under a per-target parsimony
penalty and a pairwise separation constraint.  Targets closer than the
separation limit share their clusters and merge — the paper's 20 cm
failure mode.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro import obs
from repro.core.detector import AngleEvidence
from repro.core.likelihood import LocationEstimate
from repro.core.localizer import DWatchLocalizer
from repro.utils.angles import deg2rad


@dataclass
class MultiTargetLocalizer:
    """Joint maximum-coverage multi-target localizer.

    Parameters
    ----------
    localizer:
        Supplies the likelihood map, consistency tolerance and
        minimum-reader rule (shared with single-target operation).
    max_targets:
        Upper bound on reported targets.
    explain_tolerance:
        Events within this angle (radians) of a target's per-reader
        angle count as explained by it.
    min_separation:
        Reported targets must be at least this far apart (metres); the
        merge distance for close targets.
    min_marginal_weight:
        Parsimony penalty: a target enters the solution only if it
        adds at least this much uniquely explained event weight.
    pool_size:
        Number of strongest candidates entering the subset search.
    """

    localizer: DWatchLocalizer
    max_targets: int = 3
    explain_tolerance: float = deg2rad(8.0)
    min_separation: float = 0.2
    min_marginal_weight: float = 0.8
    pool_size: int = 14

    def localize(self, evidence: Sequence[AngleEvidence]) -> List[LocationEstimate]:
        """Locate up to ``max_targets`` targets, strongest first."""
        active = [item for item in evidence if item.has_detection]
        if not active:
            return []
        with obs.span("multitarget.solve", max_targets=self.max_targets) as sp:
            candidates = self._candidate_pool(evidence)
            sp.set(candidates=len(candidates))
            obs.gauge("multitarget.pool_size", len(candidates))
            if not candidates:
                return []
            results = self._assign(evidence, candidates)
            sp.set(targets=len(results))
            obs.count("multitarget.targets_found", len(results))
            return results

    def _assign(
        self,
        evidence: Sequence[AngleEvidence],
        candidates: List[LocationEstimate],
    ) -> List[LocationEstimate]:
        """The maximum-coverage subset search over the candidate pool."""
        explains = [
            self._explained_events(candidate, evidence) for candidate in candidates
        ]
        event_weights = self._event_weights(evidence)

        order = sorted(
            range(len(candidates)),
            key=lambda i: sum(event_weights[e] for e in explains[i]),
            reverse=True,
        )[: self.pool_size]

        best_subset: Tuple[int, ...] = ()
        best_score = 0.0
        for size in range(1, self.max_targets + 1):
            for subset in itertools.combinations(order, size):
                if not self._well_separated(subset, candidates):
                    continue
                union: set = set()
                feasible = True
                score = 0.0
                for index in subset:
                    marginal = sum(
                        event_weights[e]
                        for e in explains[index]
                        if e not in union
                    )
                    if marginal < self.min_marginal_weight:
                        feasible = False
                        break
                    union |= explains[index]
                    # As in single-target consensus, the kernel
                    # likelihood separates exact intersections from
                    # ghosts that merely collect heavy events.
                    score += marginal * (0.05 + candidates[index].likelihood)
                if not feasible:
                    continue
                score -= self.min_marginal_weight * 0.05 * size
                if score > best_score:
                    best_subset, best_score = subset, score

        lmap = self.localizer.likelihood_map
        results = [
            lmap.estimate_at(candidates[index].position, evidence, refine=True)
            for index in best_subset
        ]
        results.sort(key=lambda estimate: estimate.likelihood, reverse=True)
        return results

    def _candidate_pool(
        self, evidence: Sequence[AngleEvidence]
    ) -> List[LocationEstimate]:
        """Likelihood modes plus every cross-reader ray intersection,
        screened by the single-target consensus rule."""
        lmap = self.localizer.likelihood_map
        pool = lmap.top_modes(
            evidence, max_modes=4 * self.max_targets, min_separation=0.25
        )
        covered = [candidate.position for candidate in pool]
        for crossing in lmap.ray_intersections(evidence):
            if any(crossing.distance_to(p) < 0.1 for p in covered):
                continue
            covered.append(crossing)
            pool.append(lmap.estimate_at(crossing, evidence))
        screened = []
        for candidate in pool:
            readers, _ = self.localizer._support(candidate, evidence)
            if readers >= self.localizer.min_readers:
                screened.append(candidate)
        return screened

    def _event_weights(
        self, evidence: Sequence[AngleEvidence]
    ) -> Dict[Tuple[str, int], float]:
        """Weight of every event, keyed by (reader, event index)."""
        return {
            (item.reader_name, index): event.weight
            for item in evidence
            for index, event in enumerate(item.events)
        }

    def _explained_events(
        self,
        candidate: LocationEstimate,
        evidence: Sequence[AngleEvidence],
    ) -> FrozenSet[Tuple[str, int]]:
        """Event ids within the explain tolerance of the candidate."""
        explained = set()
        for item in evidence:
            angle = candidate.per_reader_angles.get(item.reader_name)
            if angle is None:
                continue
            for index, event in enumerate(item.events):
                if abs(event.angle - angle) <= self.explain_tolerance:
                    explained.add((item.reader_name, index))
        return frozenset(explained)

    def _well_separated(
        self,
        subset: Sequence[int],
        candidates: List[LocationEstimate],
    ) -> bool:
        for i, a in enumerate(subset):
            for b in subset[i + 1 :]:
                distance = candidates[a].position.distance_to(
                    candidates[b].position
                )
                if distance < self.min_separation:
                    return False
        return True
