"""The D-Watch facade: calibrate, baseline, localize (Section 4.4).

The four workflow steps map to four methods:

1. **Data collection** — the caller captures measurements (simulated
   via :class:`~repro.sim.measurement.MeasurementSession`, or rebuilt
   from LLRP reports in a physical deployment).
2. **Pre-processing** — :meth:`DWatch.calibrate` estimates each
   reader's phase offsets over the air; a once-per-power-cycle task.
3. **Target angle estimation** — :meth:`DWatch.collect_baseline` and
   the internal evidence computation compare P-MUSIC spectra.
4. **Target localization** — :meth:`DWatch.localize` runs the
   likelihood grid with outlier rejection, single- or multi-target.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from typing import Sequence


from repro import obs
from repro.calibration.offsets import PhaseOffsets
from repro.calibration.wireless import (
    WirelessCalibrator,
    observation_from_snapshots,
)
from repro.constants import ROOM_GRID_CELL_M
from repro.core.baseline import SpectrumSet, compute_spectra
from repro.core.detector import AngleEvidence, DropDetector
from repro.core.likelihood import LikelihoodMap, LocationEstimate
from repro.core.localizer import DWatchLocalizer
from repro.core.multitarget import MultiTargetLocalizer
from repro.errors import CalibrationError, LocalizationError
from repro.sim.measurement import Measurement, MeasurementConfig, MeasurementSession
from repro.sim.scene import Scene
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.angles import deg2rad


def calibrate_readers(
    scene: Scene,
    num_snapshots: int = 60,
    snr_db: float = 25.0,
    tags_per_reader: int = 6,
    rng: RngLike = None,
) -> Dict[str, PhaseOffsets]:
    """Wireless phase calibration for every reader in a scene.

    Tag locations are used *here and only here* (the paper's footnote
    2): each reader takes its ``tags_per_reader`` nearest tags — the
    ones whose LoS dominates — computes their known direct-path angles,
    and solves Eq. 11 for its offset vector.
    """
    generator = ensure_rng(rng)
    with obs.span("pipeline.calibrate", readers=len(scene.readers)):
        session = MeasurementSession(
            scene,
            MeasurementConfig(num_snapshots=num_snapshots, snr_db=snr_db),
            rng=generator,
        )
        capture = session.capture()
        result: Dict[str, PhaseOffsets] = {}
        for reader in scene.readers:
            in_range = scene.tags_in_range(reader)
            if not in_range:
                raise CalibrationError(
                    f"reader {reader.name!r} hears no tags; cannot calibrate"
                )
            nearest = sorted(
                in_range,
                key=lambda tag: reader.array.centroid.distance_to(tag.position),
            )[:tags_per_reader]
            with obs.span(
                "calibration.reader", reader=reader.name, tags=len(nearest)
            ):
                observations = []
                for tag in nearest:
                    snapshots = capture.matrix(reader.name, tag.epc)
                    los_angle = reader.array.angle_to(tag.position)
                    observations.append(
                        observation_from_snapshots(snapshots, los_angle)
                    )
                calibrator = WirelessCalibrator(
                    spacing_m=reader.array.spacing_m,
                    wavelength_m=reader.array.wavelength_m,
                )
                result[reader.name] = calibrator.estimate(
                    observations, rng=generator
                )
    return result


@dataclass
class DWatch:
    """The end-to-end D-Watch system over one deployment scene.

    Parameters
    ----------
    scene:
        The deployment (room, readers, tags, reflectors).  Tag
        *positions* inside the scene are used only by
        :meth:`calibrate`; localization runs purely on spectra.
    cell_size:
        Likelihood grid cell (5 cm rooms / 2 cm table, per footnote 3).
    detector:
        Drop detector; defaults mirror the paper's setup.
    consistency_tolerance:
        Angular agreement (radians) between a blocked angle and a
        candidate position.  Defaults by deployment scale: 6 degrees in
        rooms, 3 degrees on sub-4 m deployments where the same angular
        slack would span tens of centimetres of the monitored area.
    backend:
        Array backend name for the batched spectral kernels
        (:mod:`repro.dsp.backend`), scoped to this pipeline's spectra
        computations.  ``None`` (default) defers to the process-wide
        selection (``set_backend`` / ``REPRO_BACKEND`` / NumPy); an
        unavailable backend degrades to NumPy, an unknown name raises
        :class:`~repro.dsp.backend.BackendError` at first use.
    """

    scene: Scene
    cell_size: float = ROOM_GRID_CELL_M
    detector: Optional[DropDetector] = None
    consistency_tolerance: Optional[float] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        self.readers = {reader.name: reader for reader in self.scene.readers}
        self.detector = self.detector or DropDetector()
        self.likelihood_map = LikelihoodMap(
            room=self.scene.room, readers=self.readers, cell_size=self.cell_size
        )
        if self.consistency_tolerance is None:
            room = self.scene.room
            diagonal = math.hypot(room.width, room.height)
            self.consistency_tolerance = deg2rad(
                6.0 if diagonal > 4.0 else 3.0
            )
        self.localizer = DWatchLocalizer(
            likelihood_map=self.likelihood_map,
            consistency_tolerance=self.consistency_tolerance,
        )
        self.multi_localizer = MultiTargetLocalizer(
            localizer=self.localizer,
            explain_tolerance=self.consistency_tolerance + deg2rad(1.0),
        )
        self.calibration: Dict[str, PhaseOffsets] = {}
        self.baseline: Optional[List[SpectrumSet]] = None

    def calibrate(self, rng: RngLike = None, **kwargs) -> Dict[str, PhaseOffsets]:
        """Run wireless phase calibration and store the offsets."""
        self.calibration = calibrate_readers(self.scene, rng=rng, **kwargs)
        return self.calibration

    def set_calibration(self, calibration: Dict[str, PhaseOffsets]) -> None:
        """Install externally computed offsets (e.g. wired ground truth)."""
        self.calibration = dict(calibration)

    def collect_baseline(
        self, measurements: "Measurement | Sequence[Measurement]"
    ) -> List[SpectrumSet]:
        """Compute and store the empty-area baseline spectra (Step 1).

        Passing several consecutive empty-area captures (2-3 suffice and
        still "take a few seconds", per the paper) enables the peak
        stability screen: spectrally unstable baseline peaks are excluded
        from monitoring instead of raining false blocking events.

        Raises
        ------
        CalibrationError
            If called before calibration; uncalibrated spectra are
            systematically wrong and would poison every later fix.
        """
        self._require_calibration()
        if isinstance(measurements, Measurement):
            measurements = [measurements]
        if not measurements:
            raise LocalizationError("at least one baseline capture is required")
        with obs.span("pipeline.baseline", captures=len(measurements)):
            with self._backend_scope():
                self.baseline = [
                    compute_spectra(m, self.readers, self.calibration)
                    for m in measurements
                ]
        return self.baseline

    def evidence(self, measurement: Measurement) -> List[AngleEvidence]:
        """Per-reader blocking evidence of an online capture (Step 3)."""
        if self.baseline is None:
            raise LocalizationError("collect_baseline() must run before localization")
        with obs.span("pipeline.evidence"):
            with self._backend_scope():
                online = compute_spectra(
                    measurement, self.readers, self.calibration
                )
            return self.evidence_from_spectra(online)

    def evidence_from_spectra(
        self, online: SpectrumSet, missing: str = "error"
    ) -> List[AngleEvidence]:
        """Blocking evidence from already-computed online spectra.

        The spectra-domain entry point of Step 3, for callers that do
        not hold raw snapshots — the streaming engine maintains
        incremental covariances and derives its spectra from those.
        ``missing`` is the absent-reader policy forwarded to
        :meth:`DropDetector.evidence`: the streaming engine passes
        ``"skip"`` so a reader outage degrades the fix instead of
        crashing the loop.
        """
        if self.baseline is None:
            raise LocalizationError("collect_baseline() must run before localization")
        return self.detector.evidence(self.baseline, online, missing=missing)

    def localize(
        self, measurement: Measurement, max_targets: int = 1
    ) -> List[LocationEstimate]:
        """Locate the target(s) present in an online capture (Step 4).

        Returns an empty list when nothing blocks any path (the target
        is absent or inside a global deadzone).
        """
        with obs.span("pipeline.localize", max_targets=max_targets) as sp:
            obs.count("pipeline.fixes")
            evidence = self.evidence(measurement)
            return self._finish_localize(evidence, max_targets, sp)

    def localize_from_evidence(
        self, evidence: List[AngleEvidence], max_targets: int = 1
    ) -> List[LocationEstimate]:
        """Step 4 alone, over externally computed evidence.

        Shares the grid search, outlier rejection and outcome
        accounting with :meth:`localize`; used by the streaming engine,
        whose evidence comes from :meth:`evidence_from_spectra`.
        """
        with obs.span("pipeline.localize", max_targets=max_targets) as sp:
            obs.count("pipeline.fixes")
            return self._finish_localize(evidence, max_targets, sp)

    def _finish_localize(
        self, evidence: List[AngleEvidence], max_targets: int, sp
    ) -> List[LocationEstimate]:
        if not any(item.has_detection for item in evidence):
            obs.count("pipeline.empty_fixes")
            sp.set(outcome="empty")
            return []
        try:
            if max_targets <= 1:
                estimates = [self.localizer.localize(evidence)]
            else:
                self.multi_localizer.max_targets = max_targets
                estimates = self.multi_localizer.localize(evidence)
        except LocalizationError:
            # Too few readers saw the target: an uncovered location,
            # counted against the coverage rate rather than accuracy.
            obs.count("pipeline.uncovered_fixes")
            sp.set(outcome="uncovered")
            return []
        sp.set(outcome="ok", targets=len(estimates))
        return estimates

    def _backend_scope(self):
        """Context scoping spectra computations to :attr:`backend`."""
        if self.backend is None:
            return nullcontext()
        from repro.dsp.backend import use_backend

        return use_backend(self.backend)

    def _require_calibration(self) -> None:
        if not self.calibration:
            raise CalibrationError(
                "readers are uncalibrated; run calibrate() or set_calibration()"
            )
