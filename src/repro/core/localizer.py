"""Single-target localization with wrong-angle outlier rejection.

Section 4.3: a target that blocks a reflected path *before* the bounce
produces a drop at the reflector's angle, not the target's.  Since one
target cannot block two paths of the same reader at truly different
angles, a reader reporting several blocked angles has at most one
correct one.  The correct angles from different readers agree on a
nearby position while wrong ones point at scattered, often out-of-room
spots — so after the likelihood pick, events inconsistent with the
estimate are discarded and the position is re-estimated from the
survivors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import obs
from repro.core.detector import AngleEvidence, _evidence_from_events
from repro.core.likelihood import LikelihoodMap, LocationEstimate
from repro.errors import LocalizationError
from repro.utils.angles import deg2rad


@dataclass
class DWatchLocalizer:
    """Maximum-likelihood single-target localizer.

    Parameters
    ----------
    likelihood_map:
        The grid evaluator (room, readers, cell size).
    consistency_tolerance:
        Angular agreement (radians) required between a reader's blocked
        angle and the angle under which the reader sees the final
        estimate; events outside it are treated as wrong-angle outliers.
    outlier_rounds:
        Maximum reject-and-re-estimate iterations.
    min_readers:
        Minimum readers with blocking evidence.  A single bearing
        cannot fix a position (the likelihood is a ridge along the
        ray), so the paper triangulates "at least two non-collinear
        readers"; locations seen by fewer count as uncovered.
    """

    likelihood_map: LikelihoodMap
    consistency_tolerance: float = deg2rad(6.0)
    outlier_rounds: int = 2
    min_readers: int = 2
    #: Polish the final fix with Gauss-Newton bearing triangulation
    #: over the consistent events; converges below grid resolution.
    refine_by_triangulation: bool = True
    #: A reader counts towards consensus only if it contributes at
    #: least one consistent event with a drop this deep.  A genuine
    #: body shadow collapses its path deeply (relative drop >= 0.9, or >= 0.7 when grazing the Fresnel zone)
    #: whatever the path's stability confidence, while the cross-term
    #: artifacts of the coherent Bartlett reading produce shallow
    #: 0.5-0.7 drops; a ghost assembled purely from artifacts should
    #: read as "uncovered".
    support_min_event_drop: float = 0.7
    #: ...and at least this much stability confidence, so a lobe that
    #: collapses on its own between empty captures cannot vouch alone.
    support_min_event_confidence: float = 0.3

    def localize(self, evidence: Sequence[AngleEvidence]) -> LocationEstimate:
        """Locate one target, rejecting wrong-angle outliers.

        Raises
        ------
        LocalizationError
            If fewer than ``min_readers`` readers produced blocking
            evidence (the position is not identifiable).
        """
        current = list(evidence)
        detecting = sum(1 for item in current if item.has_detection)
        if detecting < self.min_readers:
            raise LocalizationError(
                f"only {detecting} reader(s) saw the target; "
                f"{self.min_readers} needed for triangulation"
            )
        with obs.span("localizer.solve", readers=detecting) as sp:
            estimate = self._consensus_estimate(current)
            rounds = 0
            for _ in range(self.outlier_rounds):
                filtered = self._reject_outliers(current, estimate)
                rejected = _event_count(current) - _event_count(filtered)
                if rejected == 0:
                    break
                if not any(e.has_detection for e in filtered):
                    break
                obs.count("localizer.outliers_rejected", rejected)
                rounds += 1
                current = filtered
                estimate = self._consensus_estimate(current)
            obs.count("localizer.outlier_rounds", rounds)
            sp.set(outlier_rounds=rounds)
            if self.refine_by_triangulation:
                estimate = self._triangulate(current, estimate)
            return estimate

    def _triangulate(
        self,
        evidence: Sequence[AngleEvidence],
        estimate: LocationEstimate,
    ) -> LocationEstimate:
        """Gauss-Newton polish over the consistent bearings.

        The refined point is accepted only when it stays near the
        consensus pick and inside the room — the polish is for the last
        centimetres, never for jumping modes.
        """
        from repro.core.triangulate import bearings_from_evidence, triangulate
        from repro.errors import EstimationError

        with obs.span("localizer.triangulate"):
            bearings = bearings_from_evidence(
                evidence,
                self.likelihood_map.readers,
                estimate,
                self.consistency_tolerance,
            )
            distinct_readers = {
                id(bearing.array) for bearing in bearings
            }
            if len(bearings) < 2 or len(distinct_readers) < 2:
                return estimate
            try:
                refined = triangulate(bearings, estimate.position)
            except EstimationError:
                return estimate
            room = self.likelihood_map.room
            if not room.contains(refined.position, margin=-1e-9):
                return estimate
            if refined.position.distance_to(estimate.position) > 0.5:
                return estimate
            return self.likelihood_map.estimate_at(refined.position, evidence)

    def _consensus_estimate(
        self, evidence: Sequence[AngleEvidence]
    ) -> LocationEstimate:
        """Pick the likelihood mode agreed upon by the most readers.

        This is the paper's Section 4.3 argument operationalised: the
        correct per-reader angles intersect at one close-by position
        while wrong-angle (pre-bounce) detections scatter, so among the
        strongest likelihood modes the one *supported* by the largest
        number of readers — having an event within tolerance of the
        angle under which that reader sees the mode — is the target.
        Ties break on likelihood.
        """
        with obs.span("localizer.consensus") as sp:
            candidates = self.likelihood_map.top_modes(
                evidence, max_modes=12, min_separation=0.35
            )
            # Add every cross-reader ray intersection: the true triangulated
            # position is guaranteed to be among these even when wrong-angle
            # ghost modes dominate the likelihood surface.
            covered = [c.position for c in candidates]
            for crossing in self.likelihood_map.ray_intersections(evidence):
                if any(crossing.distance_to(p) < 0.15 for p in covered):
                    continue
                covered.append(crossing)
                candidates.append(
                    self.likelihood_map.estimate_at(crossing, evidence)
                )
            sp.set(candidates=len(candidates))
            if not candidates:
                return self.likelihood_map.best_estimate(evidence)
            best_mode, best_key = None, None
            for mode in candidates:
                readers, weight = self._support(mode, evidence)
                # Readers (consensus breadth) dominate; ties break on the
                # product of explained event weight and the kernel
                # likelihood — a ghost may collect slightly heavier events,
                # but its kernels never align as exactly as the true
                # intersection's, which the likelihood factor exposes.
                key = (readers, weight * (0.05 + mode.likelihood))
                if best_key is None or key > best_key:
                    best_mode, best_key = mode, key
            if best_key[0] < self.min_readers:
                raise LocalizationError(
                    "no candidate position is corroborated by "
                    f"{self.min_readers} readers; location not identifiable"
                )
            return self.likelihood_map.estimate_at(
                best_mode.position, evidence, refine=True
            )

    def _support(
        self, estimate: LocationEstimate, evidence: Sequence[AngleEvidence]
    ) -> "tuple[int, float]":
        """Consensus support of an estimate.

        Returns ``(readers, weight)``: the number of readers with at
        least one consistent event, and the summed relative drops of
        every consistent event.  A true target position is corroborated
        by many individual tag paths (several tags' rays graze the same
        body), while a wrong-angle ghost typically rests on one event
        per reader — the event weight separates the tie.
        """
        readers = 0
        weight = 0.0
        for item in evidence:
            angle = estimate.per_reader_angles.get(item.reader_name)
            if angle is None or not item.has_detection:
                continue
            consistent = [
                event
                for event in item.events
                if abs(event.angle - angle) <= self.consistency_tolerance
            ]
            if consistent:
                if any(
                    event.relative_drop >= self.support_min_event_drop
                    and event.confidence >= self.support_min_event_confidence
                    for event in consistent
                ):
                    readers += 1
                weight += sum(event.weight for event in consistent)
        return readers, weight

    def _reject_outliers(
        self,
        evidence: Sequence[AngleEvidence],
        estimate: LocationEstimate,
    ) -> List[AngleEvidence]:
        """Drop events whose angle disagrees with the estimate.

        A reader keeps its closest-agreeing event; only genuinely
        inconsistent extra events (the wrong-angle reflections) are
        removed.  When a reader's *every* event disagrees with the
        estimate, the decision depends on redundancy: with enough other
        agreeing readers the whole reader is dropped (its one detection
        is a wrong-angle reflection), otherwise its best event is kept
        because it may be an essential vantage point.
        """
        agreeing_readers = 0
        for item in evidence:
            seen_angle = estimate.per_reader_angles.get(item.reader_name)
            if seen_angle is None or not item.has_detection:
                continue
            if any(
                abs(event.angle - seen_angle) <= self.consistency_tolerance
                for event in item.events
            ):
                agreeing_readers += 1

        result: List[AngleEvidence] = []
        for item in evidence:
            if not item.has_detection:
                result.append(item)
                continue
            seen_angle = estimate.per_reader_angles.get(item.reader_name)
            if seen_angle is None:
                result.append(item)
                continue
            consistent = [
                event
                for event in item.events
                if abs(event.angle - seen_angle) <= self.consistency_tolerance
            ]
            if not consistent:
                if agreeing_readers >= self.min_readers:
                    # Redundant coverage: this reader's detections are
                    # wrong-angle reflections; discard them outright.
                    result.append(
                        _evidence_from_events(item.reader_name, [], item.drop.angles)
                    )
                    continue
                best = min(item.events, key=lambda e: abs(e.angle - seen_angle))
                consistent = [best]
            result.append(
                _evidence_from_events(
                    item.reader_name, consistent, item.drop.angles
                )
            )
        return result


def _event_count(evidence: Sequence[AngleEvidence]) -> int:
    return sum(len(item.events) for item in evidence)
