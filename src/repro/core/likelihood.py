"""Likelihood-grid localization (Eq. 15) with hill-climbing refinement.

For a candidate position ``O``, each reader contributes the evidence at
the angle under which it would see ``O``; the paper combines readers
multiplicatively: ``L(O) = prod_i delta Omega_i(theta_i(O))``.  The
monitoring area is scanned on a grid (5 cm for rooms, 2 cm for the
table) and the best cell is refined by hill climbing.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.constants import ROOM_GRID_CELL_M
from repro.core.detector import AngleEvidence
from repro.errors import LocalizationError
from repro.geometry.point import Point
from repro.geometry.shapes import Rectangle
from repro.rfid.reader import Reader
from repro.utils.angles import TWO_PI


#: Per-reader constants consumed by :func:`_fast_likelihood_at`: array
#: centroid x/y, orientation, the drop spectrum's first/last axis and
#: value samples, and its axis/values unpacked to plain float lists.
_ReaderContext = Tuple[
    float, float, float, float, float, float, float, List[float], List[float]
]


@dataclass(frozen=True)
class _InterpTable:
    """Precomputed ``np.interp`` geometry for one reader's grid angles.

    ``np.interp(theta, xp, fp)`` over the (static) grid angles does a
    per-cell binary search every fix.  Everything except the ``fp``
    gathers depends only on ``theta`` and the spectrum's angle axis
    ``xp`` — both fixed for the map's lifetime — so the bin indices,
    in-bin offsets and boundary masks are computed once; a fix reduces
    to two gathers and a fused multiply-add, bit-identical to
    ``np.interp`` (same slope expression, same boundary semantics).
    """

    xp: np.ndarray  #: the angle axis the table was built against
    j: np.ndarray  #: left bin index per cell, clipped to [0, G - 2]
    j1: np.ndarray  #: ``j + 1``, precomputed for the right-edge gather
    dx: np.ndarray  #: ``theta - xp[j]`` per cell
    dxp: np.ndarray  #: ``xp[j + 1] - xp[j]`` per cell
    lo: np.ndarray  #: indices of cells with ``theta < xp[0]``
    hi: np.ndarray  #: indices of cells with ``theta >= xp[-1]``


@dataclass(frozen=True)
class LocationEstimate:
    """A localization result with its supporting evidence."""

    position: Point
    likelihood: float
    per_reader_angles: Dict[str, float] = field(default_factory=dict)

    @property
    def num_readers(self) -> int:
        """How many readers' evidence entered the likelihood product."""
        return len(self.per_reader_angles)

    @property
    def normalized_likelihood(self) -> float:
        """The likelihood renormalized over its contributing readers.

        The geometric mean of the per-reader factors of Eq. 15:
        ``L(O) ** (1 / n)`` for ``n`` contributing readers.  The raw
        product shrinks with every extra factor, so fixes computed over
        different surviving subsets (a quarantined reader, a deadzone)
        are not comparable; the geometric mean is, which is what the
        streaming engine's confidence stamp uses.
        """
        if not self.per_reader_angles:
            return 0.0
        return float(self.likelihood ** (1.0 / len(self.per_reader_angles)))


@dataclass
class LikelihoodMap:
    """Grid evaluation of the Eq. 15 likelihood over a room.

    Parameters
    ----------
    room:
        The monitoring-area footprint to scan.
    readers:
        Reader objects by name; their arrays define ``theta_i(O)``.
    cell_size:
        Grid cell edge (metres).
    floor:
        Small evidence floor ``epsilon`` added to every factor so a
        reader that saw nothing (deadzone for that vantage point) does
        not zero out the whole product; it merely contributes no
        discrimination.
    """

    room: Rectangle
    readers: Mapping[str, Reader]
    cell_size: float = ROOM_GRID_CELL_M
    floor: float = 0.02

    def __post_init__(self) -> None:
        if self.cell_size <= 0.0:
            raise LocalizationError("grid cell size must be positive")
        if not self.readers:
            raise LocalizationError("likelihood map needs at least one reader")
        # The grid and each reader's angle-to-cell map are static for
        # the map's lifetime; caching them keeps the per-fix cost at
        # "one interp per active reader" instead of recomputing
        # trigonometry over tens of thousands of cells.
        self._grid_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._angle_cache: Dict[str, np.ndarray] = {}
        self._interp_cache: Dict[str, _InterpTable] = {}
        # Single-entry point-evaluator context cache.  One fix probes
        # the same evidence hundreds of times (hill climbs, candidate
        # scoring); the context's float unpacking is paid once per
        # evidence set.  Validity is object identity of the evidence
        # items and their drop-value arrays — the stored strong
        # references keep those ids stable.
        self._context_cache: Optional[
            Tuple[List[Tuple[AngleEvidence, np.ndarray]], List[_ReaderContext]]
        ] = None
        # Point-likelihood memo tied to the cached context: hill climbs
        # from nearby modes probe overlapping lattice points, and the
        # evaluator is a pure function of (x, y) once the context and
        # floor are fixed.  Reset whenever the context is rebuilt.
        self._point_memo: Dict[Tuple[float, float], float] = {}

    def grid_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(xs, ys)`` axes of the evaluation grid."""
        if self._grid_cache is None:
            xs = np.arange(
                self.room.min_x, self.room.max_x + 1e-9, self.cell_size
            )
            ys = np.arange(
                self.room.min_y, self.room.max_y + 1e-9, self.cell_size
            )
            self._grid_cache = (xs, ys)
        return self._grid_cache

    def _angles_for(self, reader_name: str) -> np.ndarray:
        """Cached ``theta_i(O)`` over the whole grid for one reader."""
        if reader_name not in self._angle_cache:
            xs, ys = self.grid_points()
            grid_x, grid_y = np.meshgrid(xs, ys)
            self._angle_cache[reader_name] = _angles_to_grid(
                self._reader_for(reader_name), grid_x, grid_y
            )
        return self._angle_cache[reader_name]

    def _table_for(self, reader_name: str, xp: np.ndarray) -> _InterpTable:
        """Cached interpolation table of one reader against axis ``xp``.

        Keyed on the axis *content*: drop spectra are rebuilt every fix
        but always sample the same angle grid, so the table survives;
        an axis change (different grid in a test) rebuilds it.
        """
        entry = self._interp_cache.get(reader_name)
        if entry is not None and np.array_equal(entry.xp, xp):
            return entry
        theta = self._angles_for(reader_name).ravel()
        axis = xp.copy()
        j = np.clip(
            np.searchsorted(axis, theta, side="right") - 1, 0, axis.size - 2
        )
        entry = _InterpTable(
            xp=axis,
            j=j,
            j1=j + 1,
            dx=theta - axis[j],
            dxp=axis[j + 1] - axis[j],
            # Index arrays, not boolean masks: the boundary cells are a
            # handful, and flat-index assignment skips the full-grid
            # mask scan every fix would otherwise pay.
            lo=np.flatnonzero(theta < axis[0]),
            hi=np.flatnonzero(theta >= axis[-1]),
        )
        self._interp_cache[reader_name] = entry
        return entry

    def evaluate(
        self, evidence: Sequence[AngleEvidence]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Likelihood over the grid: ``(xs, ys, L)`` with L shaped (len(ys), len(xs)).

        Readers without any detection are skipped entirely — they carry
        no angle information, and multiplying their flat floor in would
        only rescale the surface.
        """
        active = [e for e in evidence if e.has_detection]
        xs, ys = self.grid_points()
        likelihood = np.ones((ys.size, xs.size), dtype=float)
        if not active:
            return xs, ys, np.zeros_like(likelihood)
        with obs.span(
            "grid.evaluate", cells=int(likelihood.size), readers=len(active)
        ):
            for item in active:
                theta = self._angles_for(item.reader_name)
                # Precomputed-table equivalent of
                # np.interp(theta.ravel(), item.drop.angles, item.drop.values):
                # same slope expression and boundary semantics, so the
                # factors are bit-identical while the per-fix work drops
                # to two gathers and a fused multiply-add.
                table = self._table_for(item.reader_name, item.drop.angles)
                fp = item.drop.values
                left = fp[table.j]
                factor = (fp[table.j1] - left) / table.dxp * table.dx + left
                factor[table.hi] = fp[-1]
                factor[table.lo] = fp[0]
                # In-place floor add: same values as `floor + factor`,
                # one fewer full-grid temporary.
                factor += self.floor
                likelihood *= factor.reshape(theta.shape)
            obs.count("grid.cells_evaluated", likelihood.size * len(active))
        return xs, ys, likelihood

    def best_estimate(
        self, evidence: Sequence[AngleEvidence], refine: bool = True
    ) -> LocationEstimate:
        """The maximum-likelihood position, hill-climbed off the grid.

        Raises
        ------
        LocalizationError
            If no reader produced any detection (target in a global
            deadzone or no target present).
        """
        active = [e for e in evidence if e.has_detection]
        if not active:
            raise LocalizationError("no blocking evidence: nothing to localize")
        with obs.span("grid.search"):
            xs, ys, likelihood = self.evaluate(evidence)
            flat_index = int(np.argmax(likelihood))
            iy, ix = np.unravel_index(flat_index, likelihood.shape)
            best = Point(float(xs[ix]), float(ys[iy]))
            best_value = float(likelihood[iy, ix])
            if refine:
                best, best_value = self._hill_climb(best, best_value, active)
        angles = {
            item.reader_name: self._reader_for(item.reader_name).array.angle_to(best)
            for item in active
        }
        return LocationEstimate(
            position=best, likelihood=best_value, per_reader_angles=angles
        )

    def top_modes(
        self,
        evidence: Sequence[AngleEvidence],
        max_modes: int = 5,
        min_separation: float = 0.5,
        refine: bool = True,
    ) -> List[LocationEstimate]:
        """The strongest local maxima of the likelihood surface.

        Candidate target positions for consensus scoring: the grid is
        scanned once, maxima are peeled off greedily with a spatial
        exclusion radius, and each survivor is hill-climbed.
        """
        active = [e for e in evidence if e.has_detection]
        if not active:
            return []
        with obs.span("grid.modes", max_modes=max_modes):
            return self._peel_modes(
                evidence, active, max_modes, min_separation, refine
            )

    def _peel_modes(
        self,
        evidence: Sequence[AngleEvidence],
        active: List[AngleEvidence],
        max_modes: int,
        min_separation: float,
        refine: bool,
    ) -> List[LocationEstimate]:
        xs, ys, likelihood = self.evaluate(evidence)
        working = likelihood.copy()
        # Suppression only ever zeroes cells within min_separation of a
        # mode, so the distance test runs on the bounding-box window of
        # each candidate instead of the whole grid.  One cell of
        # padding absorbs the subtraction round-off at the rim, keeping
        # the selected cells identical to the full-grid mask.
        radius = min_separation + self.cell_size
        threshold = min_separation**2
        modes: List[LocationEstimate] = []
        for _ in range(max_modes):
            flat_index = int(np.argmax(working))
            iy, ix = np.unravel_index(flat_index, working.shape)
            value = float(working[iy, ix])
            if value <= 0.0:
                break
            candidate = Point(float(xs[ix]), float(ys[iy]))
            if refine:
                candidate, value = self._hill_climb(candidate, value, active)
            angles = {
                item.reader_name: self._reader_for(item.reader_name).array.angle_to(
                    candidate
                )
                for item in active
            }
            modes.append(
                LocationEstimate(
                    position=candidate, likelihood=value, per_reader_angles=angles
                )
            )
            ix0 = int(np.searchsorted(xs, candidate.x - radius, side="left"))
            ix1 = int(np.searchsorted(xs, candidate.x + radius, side="right"))
            iy0 = int(np.searchsorted(ys, candidate.y - radius, side="left"))
            iy1 = int(np.searchsorted(ys, candidate.y + radius, side="right"))
            suppress = (xs[ix0:ix1] - candidate.x) ** 2 + (
                ys[iy0:iy1, None] - candidate.y
            ) ** 2 < threshold
            working[iy0:iy1, ix0:ix1][suppress] = 0.0
        return modes

    def estimate_at(
        self,
        position: Point,
        evidence: Sequence[AngleEvidence],
        refine: bool = False,
    ) -> LocationEstimate:
        """Build a :class:`LocationEstimate` for an explicit candidate.

        Used by the consensus localizer to score candidate positions
        that do not come from the grid scan (e.g. event-ray
        intersections).
        """
        active = [e for e in evidence if e.has_detection]
        value = self.likelihood_at(position, evidence)
        if refine and active:
            position, value = self._hill_climb(position, value, active)
        angles = {
            item.reader_name: self._reader_for(item.reader_name).array.angle_to(
                position
            )
            for item in active
        }
        return LocationEstimate(
            position=position, likelihood=value, per_reader_angles=angles
        )

    #: Bearing quantum (radians) for ray deduplication.  Far below the
    #: 0.5-degree spectrum grid that blocked angles snap to, so only
    #: genuinely identical rays merge — several tags confirming the
    #: same blocked path produce events at the *same* grid angle, and
    #: each duplicate ray used to re-cross every other ray in the O(n^2)
    #: loop without ever adding a new candidate (identical crossings are
    #: discarded by the consensus coverage check anyway).
    _RAY_BEARING_QUANTUM = 1e-6

    #: Upper bound on rays entering the pairwise crossing loop; beyond
    #: this the O(n^2) cost outweighs any candidate a further (mostly
    #: redundant) ray could contribute.
    _MAX_RAYS = 64

    def ray_intersections(
        self, evidence: Sequence[AngleEvidence], min_range: float = 0.3
    ) -> List[Point]:
        """In-room intersections of blocked-angle rays across readers.

        Every pair of events from two different readers defines (up to
        four) ray crossings — a ULA angle maps to two mirror bearings
        about the array axis, and only crossings inside the room at a
        sensible range survive.  These are exactly the triangulation
        candidates of the paper's Section 4.3, and they guarantee the
        true position enters the consensus scoring even when ghost
        modes dominate the likelihood surface.

        Rays are deduplicated by (reader, quantized bearing) and capped
        at ``_MAX_RAYS`` before the pairwise loop; see the class
        attributes for why neither changes the candidate set.
        """
        rays: List[Tuple[str, Point, Point]] = []  # (reader, origin, direction)
        seen: set = set()
        for item in evidence:
            if not item.has_detection:
                continue
            reader = self._reader_for(item.reader_name)
            origin = reader.array.centroid
            for event in item.events:
                for sign in (1.0, -1.0):
                    bearing = reader.array.orientation + sign * event.angle
                    key = (
                        item.reader_name,
                        round(bearing / self._RAY_BEARING_QUANTUM),
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    direction = Point(math.cos(bearing), math.sin(bearing))
                    probe = origin + direction * min_range
                    if self.room.contains(probe):
                        rays.append((item.reader_name, origin, direction))
        if len(rays) > self._MAX_RAYS:
            obs.count("grid.rays_capped", len(rays) - self._MAX_RAYS)
            rays = rays[: self._MAX_RAYS]
        intersections: List[Point] = []
        for i, (name_a, origin_a, dir_a) in enumerate(rays):
            for name_b, origin_b, dir_b in rays[i + 1 :]:
                if name_a == name_b:
                    continue
                crossing = _ray_crossing(
                    origin_a, dir_a, origin_b, dir_b, min_range
                )
                if crossing is not None and self.room.contains(crossing):
                    intersections.append(crossing)
        return intersections

    def likelihood_at(
        self, position: Point, evidence: Sequence[AngleEvidence]
    ) -> float:
        """Point evaluation of the Eq. 15 product.

        Runs on the cached-context scalar evaluator — bit-identical to
        the original per-reader ``angle_to``/``value_at`` chain (see
        :func:`_fast_likelihood_at`) with the array unpacking amortised
        across the many point probes of one fix.
        """
        context = self._context_for(evidence)
        if not context:
            return 0.0
        return _fast_likelihood_at(position.x, position.y, context, self.floor)

    def _context_for(
        self, evidence: Sequence[AngleEvidence]
    ) -> List[_ReaderContext]:
        """The (cached) fast-evaluator context of an evidence set."""
        active = [e for e in evidence if e.has_detection]
        cached = self._context_cache
        if cached is not None:
            refs, context = cached
            if len(refs) == len(active) and all(
                ref is item and values is item.drop.values
                for (ref, values), item in zip(refs, active)
            ):
                return context
        context = self._point_context(evidence)
        self._context_cache = (
            [(item, item.drop.values) for item in active],
            context,
        )
        self._point_memo = {}
        return context

    def _point_context(
        self, evidence: Sequence[AngleEvidence]
    ) -> List[_ReaderContext]:
        """Per-reader constants for the fast point evaluator.

        One entry per detecting reader, in evidence order (the order
        :meth:`likelihood_at` multiplies factors in): array centroid,
        orientation, and the drop spectrum's axis/values unpacked to
        plain floats so the per-candidate cost is pure scalar math.
        """
        context = []
        for item in evidence:
            if not item.has_detection:
                continue
            reader = self._reader_for(item.reader_name)
            centroid = reader.array.centroid
            xp = item.drop.angles
            fp = item.drop.values
            context.append(
                (
                    centroid.x,
                    centroid.y,
                    reader.array.orientation,
                    float(xp[0]),
                    float(xp[-1]),
                    float(fp[0]),
                    float(fp[-1]),
                    xp.tolist(),
                    fp.tolist(),
                )
            )
        return context

    def _hill_climb(
        self,
        start: Point,
        start_value: float,
        evidence: Sequence[AngleEvidence],
        max_iterations: int = 64,
    ) -> Tuple[Point, float]:
        """Greedy coordinate refinement with a shrinking step.

        Runs on :func:`_fast_likelihood_at` — a scalar-math replica of
        :meth:`likelihood_at` (same atan2/wrap/interp bit patterns) —
        because the greedy update is inherently sequential: each
        accepted candidate changes the next probe, so the 8 directions
        cannot be batched, only made cheap.
        """
        context = self._context_for(evidence)
        floor = self.floor
        room = self.room
        min_x, max_x = room.min_x, room.max_x
        min_y, max_y = room.min_y, room.max_y
        current_x, current_y = start.x, start.y
        current_value = start_value
        step = self.cell_size
        steps = 0
        # Memoized pure-point evaluations: successive iterations (and
        # climbs from other modes converging to the same attractor)
        # re-probe overlapping points.
        memo = self._point_memo
        memo_get = memo.get
        for _ in range(max_iterations):
            steps += 1
            improved = False
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1), (1, 1), (-1, -1), (1, -1), (-1, 1)):
                candidate_x = min(max_x, max(min_x, current_x + dx * step))
                candidate_y = min(max_y, max(min_y, current_y + dy * step))
                point_key = (candidate_x, candidate_y)
                value = memo_get(point_key)
                if value is None:
                    value = _fast_likelihood_at(
                        candidate_x, candidate_y, context, floor
                    )
                    memo[point_key] = value
                if value > current_value:
                    current_x, current_y = candidate_x, candidate_y
                    current_value = value
                    improved = True
            if not improved:
                step /= 2.0
                if step < self.cell_size / 8.0:
                    break
        obs.count("grid.hill_climb_steps", steps)
        return Point(current_x, current_y), current_value

    def _reader_for(self, name: str) -> Reader:
        try:
            return self.readers[name]
        except KeyError as exc:
            raise LocalizationError(f"evidence references unknown reader {name!r}") from exc


def _fast_likelihood_at(
    x: float,
    y: float,
    context: Sequence[_ReaderContext],
    floor: float,
    # Default-bound locals: global/attribute lookups are a measurable
    # fraction of this function at thousands of calls per fix.
    _atan2: Callable[[float, float], float] = math.atan2,
    _pi: float = math.pi,
    _two_pi: float = TWO_PI,
    _bisect: Callable[[List[float], float], int] = bisect_right,
) -> float:
    """Scalar-math replica of :meth:`LikelihoodMap.likelihood_at`.

    Reproduces, bit for bit, ``abs(wrap_to_pi(atan2(...) - orientation))``
    (``math.atan2`` and Python ``%`` match the scalar paths of
    :meth:`Point.angle_to` / :func:`repro.utils.angles.wrap_to_pi`
    exactly — note ``np.arctan2`` would *not*) followed by
    ``np.interp``'s slope expression and boundary rules, without any
    NumPy dispatch.  The hill climb calls this thousands of times per
    fix.
    """
    value = 1.0
    for cx, cy, orientation, xp_first, xp_last, fp_first, fp_last, xs, fs in context:
        bearing = _atan2(y - cy, x - cx)
        wrapped = (bearing - orientation + _pi) % _two_pi - _pi
        if wrapped == -_pi:
            wrapped = _pi
        theta = abs(wrapped)
        if theta >= xp_last:
            factor = fp_last
        elif theta < xp_first:
            factor = fp_first
        else:
            k = _bisect(xs, theta) - 1
            x0 = xs[k]
            f0 = fs[k]
            factor = (fs[k + 1] - f0) / (xs[k + 1] - x0) * (theta - x0) + f0
        value *= floor + factor
    return value


def _ray_crossing(
    origin_a: Point,
    dir_a: Point,
    origin_b: Point,
    dir_b: Point,
    min_range: float,
) -> Optional[Point]:
    """Intersection of two forward rays, or ``None``.

    Crossings closer than ``min_range`` to either origin are rejected:
    they correspond to near-degenerate geometry where a small angle
    error moves the fix by metres.
    """
    denom = dir_a.cross(dir_b)
    if abs(denom) < 1e-9:
        return None
    delta = origin_b - origin_a
    t = delta.cross(dir_b) / denom
    s = delta.cross(dir_a) / denom
    if t < min_range or s < min_range:
        return None
    return origin_a + dir_a * t


def _angles_to_grid(reader: Reader, grid_x: np.ndarray, grid_y: np.ndarray) -> np.ndarray:
    """Vectorized ``theta_i(O)`` for every grid point."""
    centroid = reader.array.centroid
    bearing = np.arctan2(grid_y - centroid.y, grid_x - centroid.x)
    relative = bearing - reader.array.orientation
    wrapped = np.mod(relative + math.pi, 2.0 * math.pi) - math.pi
    return np.abs(wrapped)
