"""Likelihood-grid localization (Eq. 15) with hill-climbing refinement.

For a candidate position ``O``, each reader contributes the evidence at
the angle under which it would see ``O``; the paper combines readers
multiplicatively: ``L(O) = prod_i delta Omega_i(theta_i(O))``.  The
monitoring area is scanned on a grid (5 cm for rooms, 2 cm for the
table) and the best cell is refined by hill climbing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.constants import ROOM_GRID_CELL_M
from repro.core.detector import AngleEvidence
from repro.errors import LocalizationError
from repro.geometry.point import Point
from repro.geometry.shapes import Rectangle
from repro.rfid.reader import Reader


@dataclass(frozen=True)
class LocationEstimate:
    """A localization result with its supporting evidence."""

    position: Point
    likelihood: float
    per_reader_angles: Dict[str, float] = field(default_factory=dict)

    @property
    def num_readers(self) -> int:
        """How many readers' evidence entered the likelihood product."""
        return len(self.per_reader_angles)

    @property
    def normalized_likelihood(self) -> float:
        """The likelihood renormalized over its contributing readers.

        The geometric mean of the per-reader factors of Eq. 15:
        ``L(O) ** (1 / n)`` for ``n`` contributing readers.  The raw
        product shrinks with every extra factor, so fixes computed over
        different surviving subsets (a quarantined reader, a deadzone)
        are not comparable; the geometric mean is, which is what the
        streaming engine's confidence stamp uses.
        """
        if not self.per_reader_angles:
            return 0.0
        return float(self.likelihood ** (1.0 / len(self.per_reader_angles)))


@dataclass
class LikelihoodMap:
    """Grid evaluation of the Eq. 15 likelihood over a room.

    Parameters
    ----------
    room:
        The monitoring-area footprint to scan.
    readers:
        Reader objects by name; their arrays define ``theta_i(O)``.
    cell_size:
        Grid cell edge (metres).
    floor:
        Small evidence floor ``epsilon`` added to every factor so a
        reader that saw nothing (deadzone for that vantage point) does
        not zero out the whole product; it merely contributes no
        discrimination.
    """

    room: Rectangle
    readers: Mapping[str, Reader]
    cell_size: float = ROOM_GRID_CELL_M
    floor: float = 0.02

    def __post_init__(self) -> None:
        if self.cell_size <= 0.0:
            raise LocalizationError("grid cell size must be positive")
        if not self.readers:
            raise LocalizationError("likelihood map needs at least one reader")
        # The grid and each reader's angle-to-cell map are static for
        # the map's lifetime; caching them keeps the per-fix cost at
        # "one interp per active reader" instead of recomputing
        # trigonometry over tens of thousands of cells.
        self._grid_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._angle_cache: Dict[str, np.ndarray] = {}

    def grid_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(xs, ys)`` axes of the evaluation grid."""
        if self._grid_cache is None:
            xs = np.arange(
                self.room.min_x, self.room.max_x + 1e-9, self.cell_size
            )
            ys = np.arange(
                self.room.min_y, self.room.max_y + 1e-9, self.cell_size
            )
            self._grid_cache = (xs, ys)
        return self._grid_cache

    def _angles_for(self, reader_name: str) -> np.ndarray:
        """Cached ``theta_i(O)`` over the whole grid for one reader."""
        if reader_name not in self._angle_cache:
            xs, ys = self.grid_points()
            grid_x, grid_y = np.meshgrid(xs, ys)
            self._angle_cache[reader_name] = _angles_to_grid(
                self._reader_for(reader_name), grid_x, grid_y
            )
        return self._angle_cache[reader_name]

    def evaluate(
        self, evidence: Sequence[AngleEvidence]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Likelihood over the grid: ``(xs, ys, L)`` with L shaped (len(ys), len(xs)).

        Readers without any detection are skipped entirely — they carry
        no angle information, and multiplying their flat floor in would
        only rescale the surface.
        """
        active = [e for e in evidence if e.has_detection]
        xs, ys = self.grid_points()
        likelihood = np.ones((ys.size, xs.size), dtype=float)
        if not active:
            return xs, ys, np.zeros_like(likelihood)
        with obs.span(
            "grid.evaluate", cells=int(likelihood.size), readers=len(active)
        ):
            for item in active:
                theta = self._angles_for(item.reader_name)
                factor = np.interp(
                    theta.ravel(), item.drop.angles, item.drop.values
                )
                likelihood *= self.floor + factor.reshape(theta.shape)
            obs.count("grid.cells_evaluated", likelihood.size * len(active))
        return xs, ys, likelihood

    def best_estimate(
        self, evidence: Sequence[AngleEvidence], refine: bool = True
    ) -> LocationEstimate:
        """The maximum-likelihood position, hill-climbed off the grid.

        Raises
        ------
        LocalizationError
            If no reader produced any detection (target in a global
            deadzone or no target present).
        """
        active = [e for e in evidence if e.has_detection]
        if not active:
            raise LocalizationError("no blocking evidence: nothing to localize")
        with obs.span("grid.search"):
            xs, ys, likelihood = self.evaluate(evidence)
            flat_index = int(np.argmax(likelihood))
            iy, ix = np.unravel_index(flat_index, likelihood.shape)
            best = Point(float(xs[ix]), float(ys[iy]))
            best_value = float(likelihood[iy, ix])
            if refine:
                best, best_value = self._hill_climb(best, best_value, active)
        angles = {
            item.reader_name: self._reader_for(item.reader_name).array.angle_to(best)
            for item in active
        }
        return LocationEstimate(
            position=best, likelihood=best_value, per_reader_angles=angles
        )

    def top_modes(
        self,
        evidence: Sequence[AngleEvidence],
        max_modes: int = 5,
        min_separation: float = 0.5,
        refine: bool = True,
    ) -> List[LocationEstimate]:
        """The strongest local maxima of the likelihood surface.

        Candidate target positions for consensus scoring: the grid is
        scanned once, maxima are peeled off greedily with a spatial
        exclusion radius, and each survivor is hill-climbed.
        """
        active = [e for e in evidence if e.has_detection]
        if not active:
            return []
        with obs.span("grid.modes", max_modes=max_modes):
            return self._peel_modes(
                evidence, active, max_modes, min_separation, refine
            )

    def _peel_modes(
        self,
        evidence: Sequence[AngleEvidence],
        active: List[AngleEvidence],
        max_modes: int,
        min_separation: float,
        refine: bool,
    ) -> List[LocationEstimate]:
        xs, ys, likelihood = self.evaluate(evidence)
        working = likelihood.copy()
        grid_x, grid_y = np.meshgrid(xs, ys)
        modes: List[LocationEstimate] = []
        for _ in range(max_modes):
            flat_index = int(np.argmax(working))
            iy, ix = np.unravel_index(flat_index, working.shape)
            value = float(working[iy, ix])
            if value <= 0.0:
                break
            candidate = Point(float(xs[ix]), float(ys[iy]))
            if refine:
                candidate, value = self._hill_climb(candidate, value, active)
            angles = {
                item.reader_name: self._reader_for(item.reader_name).array.angle_to(
                    candidate
                )
                for item in active
            }
            modes.append(
                LocationEstimate(
                    position=candidate, likelihood=value, per_reader_angles=angles
                )
            )
            suppress = (
                (grid_x - candidate.x) ** 2 + (grid_y - candidate.y) ** 2
            ) < min_separation**2
            working[suppress] = 0.0
        return modes

    def estimate_at(
        self,
        position: Point,
        evidence: Sequence[AngleEvidence],
        refine: bool = False,
    ) -> LocationEstimate:
        """Build a :class:`LocationEstimate` for an explicit candidate.

        Used by the consensus localizer to score candidate positions
        that do not come from the grid scan (e.g. event-ray
        intersections).
        """
        active = [e for e in evidence if e.has_detection]
        value = self.likelihood_at(position, evidence)
        if refine and active:
            position, value = self._hill_climb(position, value, active)
        angles = {
            item.reader_name: self._reader_for(item.reader_name).array.angle_to(
                position
            )
            for item in active
        }
        return LocationEstimate(
            position=position, likelihood=value, per_reader_angles=angles
        )

    def ray_intersections(
        self, evidence: Sequence[AngleEvidence], min_range: float = 0.3
    ) -> List[Point]:
        """In-room intersections of blocked-angle rays across readers.

        Every pair of events from two different readers defines (up to
        four) ray crossings — a ULA angle maps to two mirror bearings
        about the array axis, and only crossings inside the room at a
        sensible range survive.  These are exactly the triangulation
        candidates of the paper's Section 4.3, and they guarantee the
        true position enters the consensus scoring even when ghost
        modes dominate the likelihood surface.
        """
        rays: List[Tuple[str, Point, Point]] = []  # (reader, origin, direction)
        for item in evidence:
            if not item.has_detection:
                continue
            reader = self._reader_for(item.reader_name)
            origin = reader.array.centroid
            for event in item.events:
                for sign in (1.0, -1.0):
                    bearing = reader.array.orientation + sign * event.angle
                    direction = Point(math.cos(bearing), math.sin(bearing))
                    probe = origin + direction * min_range
                    if self.room.contains(probe):
                        rays.append((item.reader_name, origin, direction))
        intersections: List[Point] = []
        for i, (name_a, origin_a, dir_a) in enumerate(rays):
            for name_b, origin_b, dir_b in rays[i + 1 :]:
                if name_a == name_b:
                    continue
                crossing = _ray_crossing(
                    origin_a, dir_a, origin_b, dir_b, min_range
                )
                if crossing is not None and self.room.contains(crossing):
                    intersections.append(crossing)
        return intersections

    def likelihood_at(
        self, position: Point, evidence: Sequence[AngleEvidence]
    ) -> float:
        """Point evaluation of the Eq. 15 product."""
        value = 1.0
        used_any = False
        for item in evidence:
            if not item.has_detection:
                continue
            used_any = True
            reader = self._reader_for(item.reader_name)
            theta = reader.array.angle_to(position)
            value *= self.floor + item.drop.value_at(theta)
        return value if used_any else 0.0

    def _hill_climb(
        self,
        start: Point,
        start_value: float,
        evidence: Sequence[AngleEvidence],
        max_iterations: int = 64,
    ) -> Tuple[Point, float]:
        """Greedy coordinate refinement with a shrinking step."""
        current, current_value = start, start_value
        step = self.cell_size
        steps = 0
        for _ in range(max_iterations):
            steps += 1
            improved = False
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1), (1, 1), (-1, -1), (1, -1), (-1, 1)):
                candidate = self.room.clamp(
                    Point(current.x + dx * step, current.y + dy * step)
                )
                value = self.likelihood_at(candidate, evidence)
                if value > current_value:
                    current, current_value = candidate, value
                    improved = True
            if not improved:
                step /= 2.0
                if step < self.cell_size / 8.0:
                    break
        obs.count("grid.hill_climb_steps", steps)
        return current, current_value

    def _reader_for(self, name: str) -> Reader:
        try:
            return self.readers[name]
        except KeyError as exc:
            raise LocalizationError(f"evidence references unknown reader {name!r}") from exc


def _ray_crossing(
    origin_a: Point,
    dir_a: Point,
    origin_b: Point,
    dir_b: Point,
    min_range: float,
) -> Optional[Point]:
    """Intersection of two forward rays, or ``None``.

    Crossings closer than ``min_range`` to either origin are rejected:
    they correspond to near-degenerate geometry where a small angle
    error moves the fix by metres.
    """
    denom = dir_a.cross(dir_b)
    if abs(denom) < 1e-9:
        return None
    delta = origin_b - origin_a
    t = delta.cross(dir_b) / denom
    s = delta.cross(dir_a) / denom
    if t < min_range or s < min_range:
        return None
    return origin_a + dir_a * t


def _angles_to_grid(reader: Reader, grid_x: np.ndarray, grid_y: np.ndarray) -> np.ndarray:
    """Vectorized ``theta_i(O)`` for every grid point."""
    centroid = reader.array.centroid
    bearing = np.arctan2(grid_y - centroid.y, grid_x - centroid.x)
    relative = bearing - reader.array.orientation
    wrapped = np.mod(relative + math.pi, 2.0 * math.pi) - math.pi
    return np.abs(wrapped)
