"""Bearing-only triangulation by weighted non-linear least squares.

Grid search + hill climbing finds the right likelihood mode; this
module polishes it.  Given the consistent blocked angles (one or more
per reader), the position minimizing the weighted squared angular
residuals is found with Gauss-Newton — a few iterations converge far
below the grid resolution, and the residual covariance doubles as an
uncertainty estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import EstimationError
from repro.geometry.point import Point
from repro.rf.array import UniformLinearArray
from repro.utils.angles import wrap_to_pi


@dataclass(frozen=True)
class Bearing:
    """One angular observation from one array."""

    array: UniformLinearArray
    angle: float
    weight: float = 1.0


@dataclass(frozen=True)
class TriangulationResult:
    """A refined position with residual statistics."""

    position: Point
    rms_residual_rad: float
    iterations: int


def _observed_angle(array: UniformLinearArray, position: Point) -> float:
    return array.angle_to(position)


def _jacobian_row(
    array: UniformLinearArray, position: Point
) -> Tuple[float, float]:
    """d theta / d(x, y) of the ULA angle at ``position``.

    theta = |wrap(atan2(dy, dx) - orientation)|; the derivative of the
    bearing is the standard (-dy, dx)/r^2 row, sign-flipped when the
    wrap folds the angle.
    """
    centroid = array.centroid
    dx = position.x - centroid.x
    dy = position.y - centroid.y
    r2 = dx * dx + dy * dy
    if r2 < 1e-12:
        raise EstimationError("cannot triangulate onto an array centroid")
    bearing = math.atan2(dy, dx)
    folded = wrap_to_pi(bearing - array.orientation)
    sign = 1.0 if folded >= 0 else -1.0
    return (-dy / r2 * sign, dx / r2 * sign)


def triangulate(
    bearings: Sequence[Bearing],
    initial: Point,
    max_iterations: int = 12,
    tolerance: float = 1e-6,
    damping: float = 1e-9,
) -> TriangulationResult:
    """Gauss-Newton refinement of a position from angular observations.

    Parameters
    ----------
    bearings:
        Angular observations (at least two, from non-collinear arrays).
    initial:
        Starting point — the grid/consensus estimate.
    damping:
        Levenberg-style diagonal loading for near-degenerate geometry.

    Raises
    ------
    EstimationError
        On fewer than two bearings or a degenerate normal matrix.
    """
    if len(bearings) < 2:
        raise EstimationError("triangulation needs at least two bearings")
    position = initial
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        rows = []
        residuals = []
        weights = []
        for bearing in bearings:
            predicted = _observed_angle(bearing.array, position)
            residual = bearing.angle - predicted
            rows.append(_jacobian_row(bearing.array, position))
            residuals.append(residual)
            weights.append(max(bearing.weight, 1e-6))
        jacobian = np.asarray(rows)
        r = np.asarray(residuals)
        w = np.asarray(weights)
        jtw = jacobian.T * w
        normal = jtw @ jacobian + damping * np.eye(2)
        try:
            step = np.linalg.solve(normal, jtw @ r)
        except np.linalg.LinAlgError as exc:
            raise EstimationError("degenerate triangulation geometry") from exc
        position = Point(position.x + float(step[0]), position.y + float(step[1]))
        if float(np.hypot(*step)) < tolerance:
            break
    final_residuals = np.asarray(
        [
            bearing.angle - _observed_angle(bearing.array, position)
            for bearing in bearings
        ]
    )
    rms = float(np.sqrt(np.mean(final_residuals**2)))
    return TriangulationResult(
        position=position, rms_residual_rad=rms, iterations=iterations
    )


def bearings_from_evidence(
    evidence,
    readers,
    estimate,
    tolerance: float,
) -> List[Bearing]:
    """Bearings for the events consistent with ``estimate``.

    One bearing per consistent event, weighted by the event's
    stability-weighted drop; a reader's wrong-angle events are excluded
    by the same tolerance the consensus scorer uses.
    """
    bearings: List[Bearing] = []
    for item in evidence:
        reader = readers.get(item.reader_name)
        if reader is None or not item.has_detection:
            continue
        seen = estimate.per_reader_angles.get(item.reader_name)
        if seen is None:
            continue
        bearings.extend(
            Bearing(
                array=reader.array,
                angle=event.angle,
                weight=event.weight,
            )
            for event in item.events
            if abs(event.angle - seen) <= tolerance
        )
    return bearings
