"""Per-(reader, tag) P-MUSIC spectra from raw measurements.

Step 1 and 3 of the paper's workflow (Section 4.4): compute a set of
AoA spectra from the baseline (empty-area) capture and from each online
capture, after removing the readers' phase offsets estimated during
calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.calibration.offsets import PhaseOffsets
from repro.dsp.batch import (
    BatchPMusicConfig,
    batched_pmusic_spectra,
    config_from_estimator,
)
from repro.dsp.music import MusicEstimator
from repro.dsp.pmusic import PMusicEstimator
from repro.dsp.spectrum import AngularSpectrum
from repro.errors import LocalizationError
from repro.rfid.reader import Reader
from repro.sim.measurement import Measurement


@dataclass
class SpectrumSet:
    """P-MUSIC spectra organised by reader then tag EPC."""

    spectra: Dict[str, Dict[str, AngularSpectrum]] = field(default_factory=dict)

    def readers(self) -> List[str]:
        """Reader names covered by this set."""
        return list(self.spectra)

    def for_pair(self, reader_name: str, epc: str) -> AngularSpectrum:
        """The spectrum of one (reader, tag) pair."""
        try:
            return self.spectra[reader_name][epc]
        except KeyError as exc:
            raise LocalizationError(
                f"no spectrum for reader {reader_name!r} / tag {epc!r}"
            ) from exc


def _batchable(estimator: PMusicEstimator) -> bool:
    """Whether the batched kernels reproduce this estimator exactly.

    Only the stock estimator classes are known bit-equivalent; a
    subclass may override any stage, so it falls back to the scalar
    per-pair loop.
    """
    return type(estimator) is PMusicEstimator and type(estimator.music) is MusicEstimator


def compute_spectra(
    measurement: Measurement,
    readers: Mapping[str, Reader],
    calibration: Optional[Mapping[str, PhaseOffsets]] = None,
    estimators: Optional[Mapping[str, PMusicEstimator]] = None,
    batch: bool = True,
) -> SpectrumSet:
    """P-MUSIC spectra for every (reader, tag) pair in a measurement.

    Parameters
    ----------
    measurement:
        The raw capture.
    readers:
        Reader objects by name (for array geometry).
    calibration:
        Estimated phase offsets by reader name; applied to the raw
        snapshots before spectral estimation.  Omitting calibration on
        offset-corrupted data produces garbage AoA — which is exactly
        what the no-calibration baseline of Fig. 10 shows.
    estimators:
        Optional pre-built estimators by reader name (mainly to pin the
        angle grid in tests); built from the array geometry otherwise.
    batch:
        Run each reader's tags through the batched kernels
        (:mod:`repro.dsp.batch`) instead of one estimator call per
        pair.  Bit-identical to the scalar path; ``False`` forces the
        reference implementation (and subclassed estimators always use
        it).
    """
    result = SpectrumSet()
    corrected_all: Dict[str, Dict[str, np.ndarray]] = {}
    computed: Dict[Tuple[str, str], AngularSpectrum] = {}
    # (config-or-reader key, snapshot shape) -> (reader, epc) pairs, in
    # reader-major then tag order.  Batchable pairs are grouped *across*
    # readers whenever their estimator configs compare equal (the usual
    # deployment: one array geometry fleet-wide), so the whole capture
    # runs as one or two stacked-kernel calls instead of one per reader.
    groups: Dict[object, List[Tuple[str, str]]] = {}
    group_config: Dict[object, BatchPMusicConfig] = {}
    for reader_name in measurement.readers():
        if reader_name not in readers:
            raise LocalizationError(f"unknown reader {reader_name!r} in measurement")
        reader = readers[reader_name]
        if estimators is not None and reader_name in estimators:
            estimator = estimators[reader_name]
        else:
            estimator = PMusicEstimator(
                spacing_m=reader.array.spacing_m,
                wavelength_m=reader.array.wavelength_m,
            )
        offsets = calibration.get(reader_name) if calibration else None
        corrected: Dict[str, np.ndarray] = {}
        for epc in measurement.tags_for(reader_name):
            snapshots = measurement.matrix(reader_name, epc)
            if offsets is not None:
                snapshots = offsets.apply_correction(snapshots)
            corrected[epc] = np.asarray(snapshots)
        corrected_all[reader_name] = corrected
        if batch and _batchable(estimator):
            config = config_from_estimator(estimator)
            # A pinned angle grid (ndarray) is unhashable; keep such
            # readers in their own group instead of comparing arrays.
            key_base: object = (
                config if config.angle_grid is None else ("pinned", reader_name)
            )
            for epc, snapshots in corrected.items():
                key = (key_base, snapshots.shape)
                groups.setdefault(key, []).append((reader_name, epc))
                group_config[key] = config
        else:
            computed.update(
                {
                    (reader_name, epc): estimator.spectrum(snapshots)
                    for epc, snapshots in corrected.items()
                }
            )
    for key, pairs in groups.items():
        stack = np.stack([corrected_all[name][epc] for name, epc in pairs])
        spectra = batched_pmusic_spectra(stack, group_config[key])
        computed.update(zip(pairs, spectra))
    for reader_name, corrected in corrected_all.items():
        result.spectra[reader_name] = {
            epc: computed[(reader_name, epc)] for epc in corrected
        }
    return result

