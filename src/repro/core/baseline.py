"""Per-(reader, tag) P-MUSIC spectra from raw measurements.

Step 1 and 3 of the paper's workflow (Section 4.4): compute a set of
AoA spectra from the baseline (empty-area) capture and from each online
capture, after removing the readers' phase offsets estimated during
calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional


from repro.calibration.offsets import PhaseOffsets
from repro.dsp.pmusic import PMusicEstimator
from repro.dsp.spectrum import AngularSpectrum
from repro.errors import LocalizationError
from repro.rfid.reader import Reader
from repro.sim.measurement import Measurement


@dataclass
class SpectrumSet:
    """P-MUSIC spectra organised by reader then tag EPC."""

    spectra: Dict[str, Dict[str, AngularSpectrum]] = field(default_factory=dict)

    def readers(self) -> List[str]:
        """Reader names covered by this set."""
        return list(self.spectra)

    def for_pair(self, reader_name: str, epc: str) -> AngularSpectrum:
        """The spectrum of one (reader, tag) pair."""
        try:
            return self.spectra[reader_name][epc]
        except KeyError as exc:
            raise LocalizationError(
                f"no spectrum for reader {reader_name!r} / tag {epc!r}"
            ) from exc


def compute_spectra(
    measurement: Measurement,
    readers: Mapping[str, Reader],
    calibration: Optional[Mapping[str, PhaseOffsets]] = None,
    estimators: Optional[Mapping[str, PMusicEstimator]] = None,
) -> SpectrumSet:
    """P-MUSIC spectra for every (reader, tag) pair in a measurement.

    Parameters
    ----------
    measurement:
        The raw capture.
    readers:
        Reader objects by name (for array geometry).
    calibration:
        Estimated phase offsets by reader name; applied to the raw
        snapshots before spectral estimation.  Omitting calibration on
        offset-corrupted data produces garbage AoA — which is exactly
        what the no-calibration baseline of Fig. 10 shows.
    estimators:
        Optional pre-built estimators by reader name (mainly to pin the
        angle grid in tests); built from the array geometry otherwise.
    """
    result = SpectrumSet()
    for reader_name in measurement.readers():
        if reader_name not in readers:
            raise LocalizationError(f"unknown reader {reader_name!r} in measurement")
        reader = readers[reader_name]
        if estimators is not None and reader_name in estimators:
            estimator = estimators[reader_name]
        else:
            estimator = PMusicEstimator(
                spacing_m=reader.array.spacing_m,
                wavelength_m=reader.array.wavelength_m,
            )
        offsets = calibration.get(reader_name) if calibration else None
        per_tag: Dict[str, AngularSpectrum] = {}
        for epc in measurement.tags_for(reader_name):
            snapshots = measurement.matrix(reader_name, epc)
            if offsets is not None:
                snapshots = offsets.apply_correction(snapshots)
            per_tag[epc] = estimator.spectrum(snapshots)
        result.spectra[reader_name] = per_tag
    return result
