"""Snapshot-to-trajectory tracking with a constant-velocity Kalman filter.

Two uses from the paper: smoothing the fist-writing trajectories
(Section 6.8) and bridging "deadzones" — when a moving target briefly
blocks no path, the filter's prediction carries the track until
evidence returns (the mobility mitigation of Section 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.point import Point


@dataclass(frozen=True)
class TrackPoint:
    """One smoothed trajectory sample."""

    time_s: float
    position: Point
    predicted_only: bool = False


@dataclass
class KalmanTracker:
    """A 2-D constant-velocity Kalman filter over localization fixes.

    State is ``[x, y, vx, vy]``.  Parameters follow the paper's
    deployment: fixes every ~0.1 s, human motion at 0.5-2 m/s.

    Parameters
    ----------
    process_noise:
        Acceleration noise density (m/s^2); larger tracks more agile
        motion at the cost of smoothing.
    measurement_noise:
        Standard deviation (metres) of a localization fix.
    """

    process_noise: float = 1.0
    measurement_noise: float = 0.12

    def __post_init__(self) -> None:
        if self.process_noise <= 0.0 or self.measurement_noise <= 0.0:
            raise ConfigurationError("noise parameters must be positive")
        self._state: Optional[np.ndarray] = None
        self._covariance: Optional[np.ndarray] = None
        self._last_time: Optional[float] = None

    @property
    def initialized(self) -> bool:
        """Whether the filter has ingested a first fix."""
        return self._state is not None

    def reset(self) -> None:
        """Forget the current track."""
        self._state = None
        self._covariance = None
        self._last_time = None

    def update(self, time_s: float, fix: Optional[Point]) -> TrackPoint:
        """Advance to ``time_s`` and (if available) fuse a fix.

        Passing ``fix=None`` represents a deadzone epoch: the filter
        predicts through it and flags the output as prediction-only.
        """
        if not self.initialized:
            if fix is None:
                raise ConfigurationError("first update needs a position fix")
            self._state = np.array([fix.x, fix.y, 0.0, 0.0])
            self._covariance = np.diag([
                self.measurement_noise**2,
                self.measurement_noise**2,
                1.0,
                1.0,
            ])
            self._last_time = time_s
            return TrackPoint(time_s=time_s, position=fix, predicted_only=False)

        dt = time_s - self._last_time
        if dt < 0.0:
            raise ConfigurationError("updates must move forward in time")
        self._predict(dt)
        self._last_time = time_s
        if fix is not None:
            self._correct(fix)
        position = Point(float(self._state[0]), float(self._state[1]))
        return TrackPoint(time_s=time_s, position=position, predicted_only=fix is None)

    def track(
        self,
        times: Sequence[float],
        fixes: Sequence[Optional[Point]],
    ) -> List[TrackPoint]:
        """Run the filter over a whole fix sequence."""
        if len(times) != len(fixes):
            raise ConfigurationError("times and fixes must align")
        self.reset()
        output: List[TrackPoint] = []
        for time_s, fix in zip(times, fixes):
            if not self.initialized and fix is None:
                continue  # cannot start a track inside a deadzone
            output.append(self.update(time_s, fix))
        return output

    def _predict(self, dt: float) -> None:
        f = np.eye(4)
        f[0, 2] = dt
        f[1, 3] = dt
        q = self.process_noise**2 * np.array(
            [
                [dt**4 / 4, 0, dt**3 / 2, 0],
                [0, dt**4 / 4, 0, dt**3 / 2],
                [dt**3 / 2, 0, dt**2, 0],
                [0, dt**3 / 2, 0, dt**2],
            ]
        )
        self._state = f @ self._state
        self._covariance = f @ self._covariance @ f.T + q

    def _correct(self, fix: Point) -> None:
        h = np.zeros((2, 4))
        h[0, 0] = 1.0
        h[1, 1] = 1.0
        r = np.eye(2) * self.measurement_noise**2
        z = np.array([fix.x, fix.y])
        innovation = z - h @ self._state
        s = h @ self._covariance @ h.T + r
        gain = self._covariance @ h.T @ np.linalg.inv(s)
        self._state = self._state + gain @ innovation
        self._covariance = (np.eye(4) - gain @ h) @ self._covariance
