"""D-Watch's core: baseline spectra, drop detection, localization."""

from repro.core.baseline import SpectrumSet, compute_spectra
from repro.core.detector import AngleEvidence, BlockedPath, DropDetector
from repro.core.likelihood import LikelihoodMap, LocationEstimate
from repro.core.localizer import DWatchLocalizer
from repro.core.multitarget import MultiTargetLocalizer
from repro.core.tracker import KalmanTracker, TrackPoint
from repro.core.particle import ParticleTracker
from repro.core.fusion import FusedFix, fuse_fixes, geometric_median
from repro.core.presence import (
    PresenceDetector,
    RocPoint,
    auc,
    presence_score,
    roc_curve,
)
from repro.core.pipeline import DWatch, calibrate_readers

__all__ = [
    "SpectrumSet",
    "compute_spectra",
    "AngleEvidence",
    "BlockedPath",
    "DropDetector",
    "LikelihoodMap",
    "LocationEstimate",
    "DWatchLocalizer",
    "MultiTargetLocalizer",
    "KalmanTracker",
    "TrackPoint",
    "ParticleTracker",
    "FusedFix",
    "fuse_fixes",
    "geometric_median",
    "PresenceDetector",
    "RocPoint",
    "auc",
    "presence_score",
    "roc_curve",
    "DWatch",
    "calibrate_readers",
]
