"""Fusing repeated fixes of a (quasi-)static target.

The paper repeats measurements 40 times per test location; a deployed
system watching a sitting person gets a stream of fixes at 10 Hz.
Individual fixes occasionally land on a wrong-angle ghost, so the right
aggregate is robust: the geometric median (Weiszfeld's algorithm)
ignores a minority of arbitrarily bad fixes, unlike the mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.geometry.point import Point

if TYPE_CHECKING:
    from repro.stream.events import TrackFix


def geometric_median(
    points: Sequence[Point],
    max_iterations: int = 128,
    tolerance: float = 1e-6,
    point_weights: Optional[Sequence[float]] = None,
) -> Point:
    """Weiszfeld's algorithm for the point minimizing summed distances.

    Robust to a minority of gross outliers (breakdown point 0.5).
    ``point_weights`` (non-negative, one per point) turn the objective
    into a weighted sum of distances, so low-confidence fixes pull the
    answer less; ``None`` keeps the exact unweighted iteration, so
    existing callers see bit-identical results.

    Raises
    ------
    EstimationError
        If no points are supplied, the weights misalign, or every
        weight is zero.
    """
    if not points:
        raise EstimationError("geometric median of an empty set")
    coords = np.array([[p.x, p.y] for p in points], dtype=float)
    scale: Optional[np.ndarray] = None
    if point_weights is not None:
        scale = np.asarray(point_weights, dtype=float)
        if scale.shape != (len(points),):
            raise EstimationError(
                f"need one weight per point, got {scale.shape} for {len(points)}"
            )
        if np.any(scale < 0.0) or not np.any(scale > 0.0):
            raise EstimationError(
                "point weights must be non-negative with at least one positive"
            )
    if scale is None:
        estimate = coords.mean(axis=0)
    else:
        estimate = (coords * scale[:, None]).sum(axis=0) / scale.sum()
    for _ in range(max_iterations):
        deltas = coords - estimate
        distances = np.linalg.norm(deltas, axis=1)
        at_point = distances < 1e-12
        if np.any(at_point):
            # Weiszfeld is undefined at a data point; nudge off it.
            distances = np.where(at_point, 1e-12, distances)
        weights = 1.0 / distances
        if scale is not None:
            weights = scale * weights
        refreshed = (coords * weights[:, None]).sum(axis=0) / weights.sum()
        if np.linalg.norm(refreshed - estimate) < tolerance:
            estimate = refreshed
            break
        estimate = refreshed
    return Point(float(estimate[0]), float(estimate[1]))


@dataclass(frozen=True)
class FusedFix:
    """The aggregate of a batch of fixes."""

    position: Point
    num_fixes: int
    num_inliers: int
    spread: float

    @property
    def inlier_fraction(self) -> float:
        """Fraction of fixes that agree with the fused position."""
        return self.num_inliers / self.num_fixes if self.num_fixes else 0.0


def fuse_fixes(
    fixes: Sequence[Optional[Point]],
    inlier_radius: float = 0.5,
) -> FusedFix:
    """Robustly aggregate repeated fixes of one static target.

    ``None`` entries (uncovered captures) are skipped.  The fused
    position is the geometric median of the fixes, re-estimated over
    the inliers within ``inlier_radius`` of it, so a ghost minority
    neither shifts the answer nor inflates the confidence.

    Raises
    ------
    EstimationError
        If every fix is ``None``.
    """
    live = [fix for fix in fixes if fix is not None]
    if not live:
        raise EstimationError("no usable fixes to fuse")
    median = geometric_median(live)
    inliers = [p for p in live if p.distance_to(median) <= inlier_radius]
    if inliers and len(inliers) < len(live):
        median = geometric_median(inliers)
        inliers = [p for p in live if p.distance_to(median) <= inlier_radius]
    spread = float(
        np.sqrt(
            np.mean([p.distance_to(median) ** 2 for p in inliers])
        )
    ) if inliers else float("inf")
    return FusedFix(
        position=median,
        num_fixes=len(live),
        num_inliers=len(inliers),
        spread=spread,
    )


def fuse_track_fixes(
    fixes: "Sequence[TrackFix]",
    inlier_radius: float = 0.5,
    min_confidence: float = 0.0,
) -> FusedFix:
    """Quality-aware aggregation of streaming :class:`TrackFix` batches.

    Located fixes whose quality confidence falls below
    ``min_confidence`` are dropped outright; the survivors enter a
    confidence-weighted geometric median, so a stretch of degraded
    (quarantined-fleet) fixes steers the fused position less than the
    full-quality ones.  Inlier selection and spread mirror
    :func:`fuse_fixes`.

    Raises
    ------
    EstimationError
        If no fix survives the confidence screen.
    """
    live = [
        fix
        for fix in fixes
        if fix.position is not None and fix.quality.confidence >= min_confidence
    ]
    if not live:
        raise EstimationError(
            "no usable fixes to fuse after the confidence screen"
        )
    points = [fix.position for fix in live]
    confidences = [max(fix.quality.confidence, 1e-6) for fix in live]
    median = geometric_median(points, point_weights=confidences)
    paired = [
        (p, w)
        for p, w in zip(points, confidences)
        if p.distance_to(median) <= inlier_radius
    ]
    if paired and len(paired) < len(points):
        median = geometric_median(
            [p for p, _ in paired], point_weights=[w for _, w in paired]
        )
        paired = [
            (p, w)
            for p, w in zip(points, confidences)
            if p.distance_to(median) <= inlier_radius
        ]
    spread = float(
        np.sqrt(np.mean([p.distance_to(median) ** 2 for p, _ in paired]))
    ) if paired else float("inf")
    return FusedFix(
        position=median,
        num_fixes=len(live),
        num_inliers=len(paired),
        spread=spread,
    )
