"""Fusing repeated fixes of a (quasi-)static target.

The paper repeats measurements 40 times per test location; a deployed
system watching a sitting person gets a stream of fixes at 10 Hz.
Individual fixes occasionally land on a wrong-angle ghost, so the right
aggregate is robust: the geometric median (Weiszfeld's algorithm)
ignores a minority of arbitrarily bad fixes, unlike the mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.geometry.point import Point


def geometric_median(
    points: Sequence[Point],
    max_iterations: int = 128,
    tolerance: float = 1e-6,
) -> Point:
    """Weiszfeld's algorithm for the point minimizing summed distances.

    Robust to a minority of gross outliers (breakdown point 0.5).

    Raises
    ------
    EstimationError
        If no points are supplied.
    """
    if not points:
        raise EstimationError("geometric median of an empty set")
    coords = np.array([[p.x, p.y] for p in points], dtype=float)
    estimate = coords.mean(axis=0)
    for _ in range(max_iterations):
        deltas = coords - estimate
        distances = np.linalg.norm(deltas, axis=1)
        at_point = distances < 1e-12
        if np.any(at_point):
            # Weiszfeld is undefined at a data point; nudge off it.
            distances = np.where(at_point, 1e-12, distances)
        weights = 1.0 / distances
        refreshed = (coords * weights[:, None]).sum(axis=0) / weights.sum()
        if np.linalg.norm(refreshed - estimate) < tolerance:
            estimate = refreshed
            break
        estimate = refreshed
    return Point(float(estimate[0]), float(estimate[1]))


@dataclass(frozen=True)
class FusedFix:
    """The aggregate of a batch of fixes."""

    position: Point
    num_fixes: int
    num_inliers: int
    spread: float

    @property
    def inlier_fraction(self) -> float:
        """Fraction of fixes that agree with the fused position."""
        return self.num_inliers / self.num_fixes if self.num_fixes else 0.0


def fuse_fixes(
    fixes: Sequence[Optional[Point]],
    inlier_radius: float = 0.5,
) -> FusedFix:
    """Robustly aggregate repeated fixes of one static target.

    ``None`` entries (uncovered captures) are skipped.  The fused
    position is the geometric median of the fixes, re-estimated over
    the inliers within ``inlier_radius`` of it, so a ghost minority
    neither shifts the answer nor inflates the confidence.

    Raises
    ------
    EstimationError
        If every fix is ``None``.
    """
    live = [fix for fix in fixes if fix is not None]
    if not live:
        raise EstimationError("no usable fixes to fuse")
    median = geometric_median(live)
    inliers = [p for p in live if p.distance_to(median) <= inlier_radius]
    if inliers and len(inliers) < len(live):
        median = geometric_median(inliers)
        inliers = [p for p in live if p.distance_to(median) <= inlier_radius]
    spread = float(
        np.sqrt(
            np.mean([p.distance_to(median) ** 2 for p in inliers])
        )
    ) if inliers else float("inf")
    return FusedFix(
        position=median,
        num_fixes=len(live),
        num_inliers=len(inliers),
        spread=spread,
    )
