"""Presence detection: the binary alarm behind intrusion detection.

The paper's motivating application (Section 1) needs a yes/no before a
position: *is anyone in the monitored area?*  The natural statistic is
already computed by the drop detector — the total stability-weighted
evidence across readers; this module wraps it with a threshold, and the
evaluation helpers sweep that threshold into an ROC curve so an
installer can pick an operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.detector import AngleEvidence
from repro.errors import ConfigurationError


def presence_score(evidence: Sequence[AngleEvidence]) -> float:
    """Total blocking evidence across readers.

    The sum of stability-weighted event drops: zero for a quiet area,
    roughly one per cleanly shadowed path.
    """
    return float(
        sum(event.weight for item in evidence for event in item.events)
    )


@dataclass
class PresenceDetector:
    """Thresholded presence alarm.

    Parameters
    ----------
    threshold:
        Minimum :func:`presence_score` to declare presence.  0.75
        roughly means "one confident blocked path".
    min_readers:
        Optionally require events on at least this many readers; 1
        maximizes sensitivity (a single blocked path is already
        evidence someone is there — position can wait for more).
    """

    threshold: float = 0.75
    min_readers: int = 1

    def __post_init__(self) -> None:
        if self.threshold <= 0.0:
            raise ConfigurationError("threshold must be positive")
        if self.min_readers < 1:
            raise ConfigurationError("min_readers must be at least 1")

    def detect(self, evidence: Sequence[AngleEvidence]) -> bool:
        """Whether anything is present."""
        readers_with_events = sum(
            1 for item in evidence if item.has_detection
        )
        if readers_with_events < self.min_readers:
            return False
        return presence_score(evidence) >= self.threshold


@dataclass(frozen=True)
class RocPoint:
    """One operating point of the detector."""

    threshold: float
    true_positive_rate: float
    false_positive_rate: float


def roc_curve(
    positive_scores: Sequence[float],
    negative_scores: Sequence[float],
    num_thresholds: int = 50,
) -> List[RocPoint]:
    """ROC points from presence scores of occupied/empty captures.

    Raises
    ------
    ConfigurationError
        If either class is empty.
    """
    if not positive_scores or not negative_scores:
        raise ConfigurationError("need scores for both classes")
    everything = np.concatenate(
        [np.asarray(positive_scores), np.asarray(negative_scores)]
    )
    low = float(everything.min())
    high = float(everything.max())
    if high <= low:
        thresholds = np.array([low])
    else:
        thresholds = np.linspace(low, high + 1e-9, num_thresholds)
    points = []
    positives = np.asarray(positive_scores)
    negatives = np.asarray(negative_scores)
    for threshold in thresholds:
        tpr = float(np.mean(positives >= threshold))
        fpr = float(np.mean(negatives >= threshold))
        points.append(
            RocPoint(
                threshold=float(threshold),
                true_positive_rate=tpr,
                false_positive_rate=fpr,
            )
        )
    return points


def auc(points: Sequence[RocPoint]) -> float:
    """Area under the ROC curve (trapezoidal, sorted by FPR)."""
    if not points:
        raise ConfigurationError("cannot integrate an empty curve")
    ordered = sorted(
        points, key=lambda p: (p.false_positive_rate, p.true_positive_rate)
    )
    fpr = np.array([0.0] + [p.false_positive_rate for p in ordered] + [1.0])
    tpr = np.array([0.0] + [p.true_positive_rate for p in ordered] + [1.0])
    integrate = getattr(np, "trapezoid", None) or np.trapz
    return float(integrate(tpr, fpr))
