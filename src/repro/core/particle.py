"""Particle-filter tracking: the non-linear alternative to the Kalman
tracker.

Human motion through a cluttered room is not well served by a single
Gaussian: walls constrain the state space, deadzones leave long gaps,
and multi-modal likelihoods (a fix near two aisles) are common.  The
particle filter represents the posterior with a weighted sample cloud,
constrains particles to the room, and optionally fuses the Doppler
speed estimate of Section 8 as a velocity-magnitude observation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.tracker import TrackPoint
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.shapes import Rectangle
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class ParticleTracker:
    """Bootstrap particle filter over ``[x, y, vx, vy]``.

    Parameters
    ----------
    room:
        The monitoring area; particles are confined to it.
    num_particles:
        Sample-cloud size.
    process_noise:
        Acceleration noise (m/s^2).
    measurement_noise:
        Standard deviation (metres) of a localization fix.
    speed_noise:
        Standard deviation (m/s) of a fused Doppler speed observation.
    max_speed:
        Hard cap on particle speed (humans indoors: ~2 m/s).
    rng:
        Randomness for sampling and resampling.
    """

    room: Rectangle
    num_particles: int = 400
    process_noise: float = 1.0
    measurement_noise: float = 0.15
    speed_noise: float = 0.3
    max_speed: float = 2.5
    rng: RngLike = None

    def __post_init__(self) -> None:
        if self.num_particles < 10:
            raise ConfigurationError("particle filter needs >= 10 particles")
        if min(
            self.process_noise, self.measurement_noise, self.speed_noise
        ) <= 0.0:
            raise ConfigurationError("noise parameters must be positive")
        self._generator = ensure_rng(self.rng)
        self._states: Optional[np.ndarray] = None  # (N, 4)
        self._weights: Optional[np.ndarray] = None
        self._last_time: Optional[float] = None

    @property
    def initialized(self) -> bool:
        """Whether the cloud has been seeded by a first fix."""
        return self._states is not None

    def reset(self) -> None:
        """Forget the current track."""
        self._states = None
        self._weights = None
        self._last_time = None

    def update(
        self,
        time_s: float,
        fix: Optional[Point],
        speed_mps: Optional[float] = None,
    ) -> TrackPoint:
        """Advance to ``time_s``, fusing a position fix and/or a speed.

        ``fix=None`` with ``speed_mps=None`` is a pure prediction step
        (deadzone).  The returned position is the weighted cloud mean.
        """
        if not self.initialized:
            if fix is None:
                raise ConfigurationError("first update needs a position fix")
            self._seed(fix)
            self._last_time = time_s
            return TrackPoint(time_s=time_s, position=fix, predicted_only=False)

        dt = time_s - self._last_time
        if dt < 0.0:
            raise ConfigurationError("updates must move forward in time")
        self._predict(dt)
        self._last_time = time_s

        observed = False
        if fix is not None:
            self._weight_position(fix)
            observed = True
        if speed_mps is not None:
            self._weight_speed(abs(speed_mps))
            observed = True
        if observed:
            self._resample_if_needed()

        mean = np.average(self._states[:, :2], axis=0, weights=self._weights)
        position = self.room.clamp(Point(float(mean[0]), float(mean[1])))
        return TrackPoint(
            time_s=time_s, position=position, predicted_only=fix is None
        )

    def track(
        self,
        times: Sequence[float],
        fixes: Sequence[Optional[Point]],
        speeds: Optional[Sequence[Optional[float]]] = None,
    ) -> List[TrackPoint]:
        """Run the filter over a whole fix sequence."""
        if len(times) != len(fixes):
            raise ConfigurationError("times and fixes must align")
        if speeds is not None and len(speeds) != len(times):
            raise ConfigurationError("speeds must align with times")
        self.reset()
        output: List[TrackPoint] = []
        for index, (time_s, fix) in enumerate(zip(times, fixes)):
            speed = speeds[index] if speeds is not None else None
            if not self.initialized and fix is None:
                continue
            output.append(self.update(time_s, fix, speed))
        return output

    def spread(self) -> float:
        """RMS particle distance from the cloud mean (track confidence)."""
        if not self.initialized:
            raise ConfigurationError("tracker not initialized")
        mean = np.average(self._states[:, :2], axis=0, weights=self._weights)
        deltas = self._states[:, :2] - mean
        return float(
            math.sqrt(
                np.average(np.sum(deltas**2, axis=1), weights=self._weights)
            )
        )

    def _seed(self, fix: Point) -> None:
        positions = self._generator.normal(
            loc=(fix.x, fix.y),
            scale=self.measurement_noise,
            size=(self.num_particles, 2),
        )
        velocities = self._generator.normal(
            0.0, 0.5, size=(self.num_particles, 2)
        )
        self._states = np.hstack([positions, velocities])
        self._clamp_states()
        self._weights = np.full(self.num_particles, 1.0 / self.num_particles)

    def _predict(self, dt: float) -> None:
        acceleration = self._generator.normal(
            0.0, self.process_noise, size=(self.num_particles, 2)
        )
        self._states[:, :2] += self._states[:, 2:] * dt + 0.5 * acceleration * dt**2
        self._states[:, 2:] += acceleration * dt
        self._clamp_states()

    def _weight_position(self, fix: Point) -> None:
        deltas = self._states[:, :2] - np.array([fix.x, fix.y])
        squared = np.sum(deltas**2, axis=1)
        self._weights = self._weights * np.exp(
            -0.5 * squared / self.measurement_noise**2
        )
        self._normalize_weights()

    def _weight_speed(self, speed: float) -> None:
        magnitudes = np.linalg.norm(self._states[:, 2:], axis=1)
        self._weights = self._weights * np.exp(
            -0.5 * ((magnitudes - speed) / self.speed_noise) ** 2
        )
        self._normalize_weights()

    def _normalize_weights(self) -> None:
        total = self._weights.sum()
        if total <= 1e-300:
            # Degenerate update (fix far outside the cloud): restart
            # weights uniformly rather than dividing by ~zero.
            self._weights = np.full(
                self.num_particles, 1.0 / self.num_particles
            )
            return
        self._weights = self._weights / total

    def _resample_if_needed(self) -> None:
        effective = 1.0 / np.sum(self._weights**2)
        if effective > self.num_particles / 2.0:
            return
        # Systematic resampling.
        positions = (
            np.arange(self.num_particles) + self._generator.random()
        ) / self.num_particles
        cumulative = np.cumsum(self._weights)
        cumulative[-1] = 1.0
        indices = np.searchsorted(cumulative, positions)
        self._states = self._states[indices]
        # Roughening keeps the cloud from collapsing to clones.
        self._states[:, :2] += self._generator.normal(
            0.0, self.measurement_noise / 4.0, size=(self.num_particles, 2)
        )
        self._clamp_states()
        self._weights = np.full(self.num_particles, 1.0 / self.num_particles)

    def _clamp_states(self) -> None:
        self._states[:, 0] = np.clip(
            self._states[:, 0], self.room.min_x, self.room.max_x
        )
        self._states[:, 1] = np.clip(
            self._states[:, 1], self.room.min_y, self.room.max_y
        )
        speeds = np.linalg.norm(self._states[:, 2:], axis=1)
        too_fast = speeds > self.max_speed
        if np.any(too_fast):
            self._states[too_fast, 2:] *= (
                self.max_speed / speeds[too_fast]
            )[:, None]
