"""Blocked-path detection by comparing P-MUSIC spectra.

For every baseline peak (one per propagation path) the detector reads
the online power at the same angle; a relative power drop beyond the
threshold means a target is shadowing that path.  Per reader, the
detected ``(angle, strength)`` events are folded into a smooth angular
evidence function ``delta Omega_i(theta)`` — the quantity the
likelihood combiner (Eq. 15) consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.baseline import SpectrumSet
from repro.dsp.peaks import find_spectrum_peaks
from repro.dsp.spectrum import AngularSpectrum, SpectrumPeak, default_angle_grid
from repro.errors import LocalizationError
from repro.utils.angles import deg2rad


@dataclass(frozen=True)
class BlockedPath:
    """One detected blocking event on one (reader, tag) pair.

    ``confidence`` reflects the spectral stability of the underlying
    baseline peak: 1.0 for a peak that held its power across every
    empty-area confirmation capture, linearly down to 0.0 for one that
    "dropped" on its own (an unresolved multi-path lobe whose apparent
    power wanders between captures).
    """

    reader_name: str
    epc: str
    angle: float
    relative_drop: float
    baseline_power: float
    online_power: float
    confidence: float = 1.0

    @property
    def weight(self) -> float:
        """Evidence weight: drop magnitude discounted by stability."""
        return self.relative_drop * self.confidence


@dataclass
class AngleEvidence:
    """Aggregated angular evidence of one reader.

    ``drop`` is the smooth ``delta Omega_i(theta)`` built from all of
    the reader's blocking events; ``events`` keeps the underlying
    detections for outlier analysis.
    """

    reader_name: str
    drop: AngularSpectrum
    events: List[BlockedPath] = field(default_factory=list)

    @property
    def has_detection(self) -> bool:
        """Whether this reader saw at least one blocked path."""
        return bool(self.events)

    def blocked_angles(self) -> List[float]:
        """Angles of all blocking events (radians)."""
        return [event.angle for event in self.events]

    def without_events_near(self, angle: float, tolerance: float) -> "AngleEvidence":
        """Evidence with events within ``tolerance`` of ``angle`` removed.

        Used by the multi-target splitter: once a target explains some
        events, the remaining evidence should re-localize without them.
        """
        kept = [e for e in self.events if abs(e.angle - angle) > tolerance]
        return _evidence_from_events(self.reader_name, kept, self.drop.angles)


@dataclass(frozen=True)
class _ScreenedPeak:
    """One baseline peak that survived the static screening steps.

    ``lo``/``hi`` bound the grid slice within ``comparison_window`` of
    the peak (empty slice when no grid point falls inside), so the
    per-fix online read is a contiguous-slice max instead of a fresh
    boolean mask.
    """

    peak: SpectrumPeak
    confidence: float
    lo: int
    hi: int


@dataclass
class _PairScreen:
    """Cached screening result of one (reader, tag) baseline.

    Everything :meth:`DropDetector.detect_pair` derives from the
    *baseline* side — peak detection, endfire rejection, stability
    confidence, comparison-window bounds — is static until the baseline
    (or a confirmation capture) is replaced, which drift blending does
    by installing a **new** values array.  Validity is therefore checked
    by object identity of the spectra and their value arrays, plus the
    detector knobs that entered the screening.
    """

    baseline: AngularSpectrum
    baseline_values: np.ndarray
    confirmations: Tuple[Tuple[AngularSpectrum, np.ndarray], ...]
    params: Tuple[float, float, float, float]
    grid: np.ndarray
    screened: List[_ScreenedPeak]

    def matches(
        self,
        baseline: AngularSpectrum,
        confirmations: Sequence[AngularSpectrum],
        params: Tuple[float, float, float, float],
    ) -> bool:
        """Whether this cache entry still describes the given inputs."""
        if self.baseline is not baseline or self.baseline_values is not baseline.values:
            return False
        if self.params != params:
            return False
        if len(self.confirmations) != len(confirmations):
            return False
        return all(
            cached is spec and values is spec.values
            for (cached, values), spec in zip(self.confirmations, confirmations)
        )


@dataclass
class DropDetector:
    """Turns baseline/online spectrum sets into per-reader evidence.

    Parameters
    ----------
    relative_threshold:
        Minimum fractional power drop ``(P_base - P_online) / P_base``
        at a baseline peak to declare the path blocked.  With ~ -17 dB
        body shadowing, genuine blocks have drops near 0.98, so 0.5 is
        conservative but robust to noise.
    min_peak_relative_height:
        Baseline peaks weaker than this fraction of the tag's strongest
        peak are ignored (too noisy to judge a drop reliably).
    kernel_width:
        Standard deviation (radians) of the Gaussian kernel that turns
        discrete blocking events into a smooth evidence function; on
        the order of the array's angular resolution.
    comparison_window:
        Half-width (radians) of the angular window around a baseline
        peak searched for the matching online peak.  P-MUSIC lobes are
        sharp, so finite-snapshot jitter moves peaks by a fraction of a
        degree between captures; comparing the baseline peak against
        the *windowed maximum* of the online spectrum measures the true
        per-path power change instead of that jitter.
    """

    relative_threshold: float = 0.5
    min_peak_relative_height: float = 0.12
    kernel_width: float = deg2rad(2.0)
    comparison_window: float = deg2rad(2.5)
    #: Peaks this close (radians) to endfire (0 or pi) are discarded: a
    #: ULA's resolution collapses at endfire (d theta / d cos theta
    #: diverges) and its spectra spike there spuriously.
    endfire_margin: float = deg2rad(4.0)

    _screen_cache: Dict[Tuple[str, str], _PairScreen] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def detect_pair(
        self,
        reader_name: str,
        epc: str,
        baseline: AngularSpectrum,
        online: AngularSpectrum,
        confirmations: Sequence[AngularSpectrum] = (),
    ) -> List[BlockedPath]:
        """Blocking events on one (reader, tag) pair.

        ``confirmations`` are additional *empty-area* captures of the
        same pair; a baseline peak that already "drops" in one of them
        is spectrally unstable (typically several unresolved paths
        merged into one wandering lobe) and is excluded from
        monitoring, killing its false-positive events.

        The baseline-side screening (peak detection, endfire rejection,
        stability confidence) is cached per pair — it is identical
        every fix until the baseline itself changes — so the per-fix
        work reduces to one windowed online read per monitored peak.
        """
        params = (
            self.relative_threshold,
            self.min_peak_relative_height,
            self.comparison_window,
            self.endfire_margin,
        )
        key = (reader_name, epc)
        screen = self._screen_cache.get(key)
        if screen is None or not screen.matches(baseline, confirmations, params):
            screen = self._build_screen(baseline, confirmations, params)
            self._screen_cache[key] = screen
        # The cached window bounds describe the baseline's angle axis;
        # the online spectrum shares it in every production path, but
        # fall back to the mask-based read when it does not.
        shared_axis = online.angles is screen.grid or np.array_equal(
            online.angles, screen.grid
        )
        events: List[BlockedPath] = []
        for item in screen.screened:
            peak = item.peak
            if shared_axis:
                if item.lo < item.hi:
                    online_power = float(online.values[item.lo : item.hi].max())
                else:
                    online_power = online.value_at(peak.angle)
            else:
                online_power = _windowed_max(
                    online, peak.angle, self.comparison_window
                )
            drop = (peak.value - online_power) / peak.value
            if drop >= self.relative_threshold:
                events.append(
                    BlockedPath(
                        reader_name=reader_name,
                        epc=epc,
                        angle=peak.angle,
                        relative_drop=float(drop),
                        baseline_power=float(peak.value),
                        online_power=float(online_power),
                        confidence=item.confidence,
                    )
                )
        return events

    def _build_screen(
        self,
        baseline: AngularSpectrum,
        confirmations: Sequence[AngularSpectrum],
        params: Tuple[float, float, float, float],
    ) -> _PairScreen:
        """Run the static screening steps once for a baseline spectrum."""
        screened: List[_ScreenedPeak] = []
        for peak in find_spectrum_peaks(
            baseline, min_relative_height=self.min_peak_relative_height
        ):
            if (
                peak.angle < self.endfire_margin
                or peak.angle > math.pi - self.endfire_margin
            ):
                continue
            if peak.value <= 0.0:
                continue
            confidence = self._peak_confidence(peak, confirmations)
            if confidence <= 0.0:
                continue
            # Bounds of the same boolean window max_in_window builds; the
            # angle axis is sorted, so the selection is one contiguous run.
            mask = np.abs(baseline.angles - peak.angle) <= self.comparison_window
            indices = np.nonzero(mask)[0]
            if indices.size:
                lo, hi = int(indices[0]), int(indices[-1]) + 1
            else:
                lo, hi = 0, 0
            screened.append(
                _ScreenedPeak(peak=peak, confidence=confidence, lo=lo, hi=hi)
            )
        return _PairScreen(
            baseline=baseline,
            baseline_values=baseline.values,
            confirmations=tuple((c, c.values) for c in confirmations),
            params=params,
            grid=baseline.angles,
            screened=screened,
        )

    def evidence(
        self,
        baseline: "SpectrumSet | Sequence[SpectrumSet]",
        online: SpectrumSet,
        missing: str = "error",
    ) -> List[AngleEvidence]:
        """Per-reader aggregated evidence.

        ``baseline`` may be a single spectrum set or several captured
        in succession; extra captures feed the peak-stability screen of
        :meth:`detect_pair`.

        ``missing`` picks the policy for a baseline reader absent from
        the online capture: ``"error"`` (default) raises
        :class:`~repro.errors.LocalizationError` — the batch contract,
        where a vanished reader means a broken capture — while
        ``"skip"`` contributes no evidence for it, which is how the
        streaming engine degrades gracefully through a reader outage.
        A skipped reader shrinks the Eq. 15 product to the surviving
        subset rather than zeroing or poisoning it.
        """
        if missing not in ("error", "skip"):
            raise LocalizationError(
                f"unknown missing-reader policy {missing!r}; "
                "pick 'error' or 'skip'"
            )
        baselines = (
            [baseline] if isinstance(baseline, SpectrumSet) else list(baseline)
        )
        if not baselines:
            raise LocalizationError("at least one baseline capture is required")
        reference = baselines[0]
        with obs.span("detector.evidence", readers=len(reference.readers())):
            result = self._evidence_per_reader(baselines, reference, online, missing)
        return result

    def _evidence_per_reader(
        self,
        baselines: "List[SpectrumSet]",
        reference: SpectrumSet,
        online: SpectrumSet,
        missing: str = "error",
    ) -> List[AngleEvidence]:
        result: List[AngleEvidence] = []
        for reader_name in reference.readers():
            if reader_name not in online.spectra:
                if missing == "skip":
                    obs.count("detector.missing_readers")
                    continue
                raise LocalizationError(
                    f"online capture is missing reader {reader_name!r}"
                )
            events: List[BlockedPath] = []
            grid: Optional[np.ndarray] = None
            for epc, base_spec in reference.spectra[reader_name].items():
                if epc not in online.spectra[reader_name]:
                    # Tag fell silent (deep shadowing can do that); treat
                    # every baseline peak of this tag as fully blocked.
                    obs.count("detector.silent_tags")
                    for peak in find_spectrum_peaks(
                        base_spec,
                        min_relative_height=self.min_peak_relative_height,
                    ):
                        if (
                            peak.angle < self.endfire_margin
                            or peak.angle > math.pi - self.endfire_margin
                        ):
                            continue
                        events.append(
                            BlockedPath(
                                reader_name=reader_name,
                                epc=epc,
                                angle=peak.angle,
                                relative_drop=1.0,
                                baseline_power=float(peak.value),
                                online_power=0.0,
                            )
                        )
                    continue
                online_spec = online.spectra[reader_name][epc]
                confirmations = [
                    extra.spectra[reader_name][epc]
                    for extra in baselines[1:]
                    if epc in extra.spectra.get(reader_name, {})
                ]
                events.extend(
                    self.detect_pair(
                        reader_name, epc, base_spec, online_spec, confirmations
                    )
                )
                grid = base_spec.angles
            if grid is None:
                grid = default_angle_grid()
            obs.count("detector.events", len(events))
            result.append(
                _evidence_from_events(
                    reader_name, events, grid, self.kernel_width
                )
            )
        return result


    def _peak_confidence(
        self, peak, confirmations: Sequence[AngularSpectrum]
    ) -> float:
        """Stability confidence of a baseline peak in [0, 1].

        The peak's worst apparent drop across empty-area confirmation
        captures, scaled against the detection threshold: no drift
        yields 1.0; a self-inflicted drop at the detection threshold
        yields 0.0.
        """
        worst = 0.0
        for spectrum in confirmations:
            power = _windowed_max(spectrum, peak.angle, self.comparison_window)
            worst = max(worst, (peak.value - power) / peak.value)
        return max(0.0, 1.0 - worst / self.relative_threshold)


def _windowed_max(spectrum: AngularSpectrum, angle: float, window: float) -> float:
    """Maximum spectrum value within ``angle +/- window``."""
    return spectrum.max_in_window(angle, window)


def _evidence_from_events(
    reader_name: str,
    events: List[BlockedPath],
    grid: np.ndarray,
    kernel_width: float = deg2rad(1.5),
) -> AngleEvidence:
    """Fold events into a smooth evidence spectrum via Gaussian kernels.

    Each event contributes a kernel centred on its angle with amplitude
    equal to its stability-weighted drop; overlapping kernels take the
    pointwise maximum so several tags confirming the same angle do not
    inflate the evidence beyond 1.
    """
    values = np.zeros_like(np.asarray(grid, dtype=float))
    for event in events:
        kernel = event.weight * np.exp(
            -0.5 * ((grid - event.angle) / kernel_width) ** 2
        )
        values = np.maximum(values, kernel)
    return AngleEvidence(
        reader_name=reader_name,
        drop=AngularSpectrum(np.asarray(grid, dtype=float), values),
        events=list(events),
    )
