"""Physical and system constants used throughout the D-Watch reproduction.

The defaults mirror the hardware configuration of the paper's prototype:
Impinj Speedway R420 readers operating in the Chinese UHF band
(920.5-924.5 MHz) driving 8-element uniform linear arrays with
half-wavelength (16.25 cm) element spacing.
"""

from __future__ import annotations

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Lower edge of the Chinese UHF RFID band used by the paper (Hz).
UHF_BAND_LOW_HZ = 920.5e6

#: Upper edge of the Chinese UHF RFID band used by the paper (Hz).
UHF_BAND_HIGH_HZ = 924.5e6

#: Centre frequency used for all default simulations (Hz).
DEFAULT_FREQUENCY_HZ = (UHF_BAND_LOW_HZ + UHF_BAND_HIGH_HZ) / 2.0

#: Wavelength at the default centre frequency (m), approximately 0.325 m.
DEFAULT_WAVELENGTH_M = SPEED_OF_LIGHT / DEFAULT_FREQUENCY_HZ

#: Default number of antennas per array (the paper uses 8).
DEFAULT_NUM_ANTENNAS = 8

#: Default inter-element spacing: half a wavelength (~16.25 cm).
DEFAULT_ELEMENT_SPACING_M = DEFAULT_WAVELENGTH_M / 2.0

#: Number of RF ports on one Impinj Speedway R420 reader.
RF_PORTS_PER_READER = 4

#: Time-division slot per antenna on the Impinj antenna hub (seconds).
ANTENNA_TDM_SLOT_S = 200e-6

#: Reader transmission interval used in the paper's deployment (seconds).
READER_TX_INTERVAL_S = 0.1

#: Number of backscatter packets collected per tag per fix in the paper.
PACKETS_PER_FIX = 10

#: Grid cell edge used for room-scale localization (metres, 5 cm).
ROOM_GRID_CELL_M = 0.05

#: Grid cell edge used for the 2 m x 2 m table area (metres, 2 cm).
TABLE_GRID_CELL_M = 0.02

#: Effective radius of a human torso target (metres).  The paper treats a
#: human as a 32-40 cm wide extended target and scores any estimate within
#: an (approximately) 36 cm span as exact.
HUMAN_TARGET_RADIUS_M = 0.18

#: Bottom radius of the glass-bottle object targets (metres, 7.8 cm dia).
BOTTLE_TARGET_RADIUS_M = 0.039

#: Effective radius of a human fist (metres).
FIST_TARGET_RADIUS_M = 0.05

#: Maximum number of dominant indoor propagation paths assumed by the
#: calibration equation counting argument (Section 4.1 cites [51]: P <= 5).
MAX_DOMINANT_PATHS = 5
