"""Phase-offset containers and error metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError
from repro.utils.angles import wrap_to_pi


@dataclass(frozen=True)
class PhaseOffsets:
    """Per-antenna-chain phase offsets relative to chain 1.

    ``values[0]`` is always 0: chain 1 is the reference, matching the
    paper's ``Gamma = diag(1, exp(j*dbeta_2,1), ...)`` convention.
    """

    values: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.values, dtype=float)
        if arr.ndim != 1 or arr.size < 2:
            raise CalibrationError("offsets must be a 1-D vector of length >= 2")
        object.__setattr__(self, "values", arr)

    @classmethod
    def referenced(cls, raw: np.ndarray) -> "PhaseOffsets":
        """Build offsets re-referenced so the first entry is zero."""
        arr = np.asarray(raw, dtype=float)
        return cls(np.asarray(wrap_to_pi(arr - arr[0]), dtype=float))

    @property
    def num_antennas(self) -> int:
        """Number of antenna chains covered."""
        return int(self.values.size)

    def gamma(self) -> np.ndarray:
        """The diagonal offset matrix ``Gamma``."""
        return np.diag(np.exp(1j * self.values))

    def correction(self) -> np.ndarray:
        """Per-antenna complex factors that *undo* the offsets.

        Multiply measured snapshots by this column vector to recover the
        offset-free array signal: ``X_clean = correction[:, None] * X``.
        """
        return np.exp(-1j * self.values)

    def apply_correction(self, snapshots: np.ndarray) -> np.ndarray:
        """Snapshots with the offsets removed."""
        x = np.asarray(snapshots, dtype=complex)
        if x.shape[0] != self.num_antennas:
            raise CalibrationError(
                f"snapshot rows ({x.shape[0]}) != offset entries ({self.num_antennas})"
            )
        return self.correction()[:, None] * x


def offset_error(estimate: PhaseOffsets, truth: PhaseOffsets) -> float:
    """Mean absolute wrapped phase error between two offset vectors.

    Both vectors are re-referenced to antenna 1 before comparison, since
    a common phase shift across the whole array is unobservable and
    harmless to AoA estimation.
    """
    if estimate.num_antennas != truth.num_antennas:
        raise CalibrationError("offset vectors cover different array sizes")
    a = wrap_to_pi(estimate.values - estimate.values[0])
    b = wrap_to_pi(truth.values - truth.values[0])
    return float(np.mean(np.abs(wrap_to_pi(np.asarray(a) - np.asarray(b)))))
