"""Phase calibration: D-Watch's wireless scheme plus baselines."""

from repro.calibration.offsets import PhaseOffsets, offset_error
from repro.calibration.ga import GeneticMinimizer, GaResult
from repro.calibration.annealing import SimulatedAnnealing, AnnealingResult
from repro.calibration.wireless import (
    WirelessCalibrator,
    CalibrationObservation,
    subspace_cost,
)
from repro.calibration.phaser import PhaserCalibrator
from repro.calibration.wired import WiredCalibrator

__all__ = [
    "PhaseOffsets",
    "offset_error",
    "GeneticMinimizer",
    "GaResult",
    "SimulatedAnnealing",
    "AnnealingResult",
    "WirelessCalibrator",
    "CalibrationObservation",
    "subspace_cost",
    "PhaserCalibrator",
    "WiredCalibrator",
]
