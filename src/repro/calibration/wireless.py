"""D-Watch's wireless phase calibration (Section 4.1).

The measured array signal is ``X = Gamma * A * S + n`` where ``Gamma``
is the unknown per-chain offset matrix.  The noise subspace ``U_N`` of
the *measured* covariance is orthogonal to ``Gamma * a(theta_LoS)``, so
for a tag whose LoS angle is known,

    || a(theta_LoS)^H Gamma^H U_N ||^2  ->  0

when the candidate offsets match the truth.  Summing the residual over
K tags (Eq. 10-11) and minimizing over the offset vector recovers
``Gamma`` — entirely over the air, during normal communication.

The objective is non-convex (each term is a product of complex
exponentials), so the solver follows the paper: a genetic algorithm
proposes candidates globally and gradient descent (L-BFGS-B here)
polishes the winner into its local minimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import optimize

from repro import obs
from repro.calibration.ga import GeneticMinimizer
from repro.calibration.offsets import PhaseOffsets
from repro.dsp.covariance import sample_covariance
from repro.dsp.music import eigendecompose, estimate_num_sources
from repro.errors import CalibrationError
from repro.rf.array import steering_vector
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class CalibrationObservation:
    """Everything calibration needs from one reference tag.

    Attributes
    ----------
    los_angle:
        The tag's known LoS arrival angle (radians).  Tag and antenna
        locations are known *for calibration only* (paper footnote 2).
    noise_subspace:
        ``U_N`` of the measured (offset-corrupted) covariance, shape
        ``(M, M - P)``.
    """

    los_angle: float
    noise_subspace: np.ndarray


def observation_from_snapshots(
    snapshots: np.ndarray,
    los_angle: float,
    num_sources: Optional[int] = None,
    source_threshold_ratio: float = 0.03,
) -> CalibrationObservation:
    """Build a calibration observation from raw measured snapshots.

    Spatial smoothing must NOT be applied here: smoothing mixes
    subarrays with different offset patterns and destroys the
    ``Gamma * a(theta)`` structure the calibration relies on.  With a
    single backscatter source the measured covariance is (near) rank-1,
    which leaves a rich ``M - 1`` dimensional noise subspace.
    """
    covariance = sample_covariance(snapshots)
    eigenvalues, eigenvectors = eigendecompose(covariance)
    p = num_sources
    if p is None:
        p = estimate_num_sources(
            eigenvalues, source_threshold_ratio, max_sources=covariance.shape[0] - 1
        )
    return CalibrationObservation(
        los_angle=float(los_angle), noise_subspace=eigenvectors[:, p:]
    )


def subspace_cost(
    offsets: np.ndarray,
    observations: Sequence[CalibrationObservation],
    spacing_m: float,
    wavelength_m: float,
) -> float:
    """The Eq. 11 objective ``sum_k ||a_k^H Gamma^H U_N^(k)||^2``.

    ``offsets`` holds the ``M - 1`` unknown phases for antennas 2..M;
    antenna 1 is the zero reference.
    """
    if not observations:
        raise CalibrationError("at least one calibration observation required")
    m = observations[0].noise_subspace.shape[0]
    beta = np.concatenate(([0.0], np.asarray(offsets, dtype=float)))
    if beta.size != m:
        raise CalibrationError(
            f"expected {m - 1} unknown offsets, got {len(offsets)}"
        )
    gamma_h_diag = np.exp(-1j * beta)
    total = 0.0
    for obs in observations:
        a = steering_vector(obs.los_angle, m, spacing_m, wavelength_m)
        weighted = a.conj() * gamma_h_diag  # row vector a^H Gamma^H
        residual = weighted @ obs.noise_subspace
        total += float(np.sum(np.abs(residual) ** 2))
    return total


@dataclass
class WirelessCalibrator:
    """The GA + gradient-descent hybrid solver for Eq. 11.

    Parameters
    ----------
    spacing_m, wavelength_m:
        Array geometry.
    ga:
        Optional pre-configured :class:`GeneticMinimizer`; a sensible
        default covering ``[-pi, pi]`` per unknown is built lazily.
    restarts:
        Number of independent GA runs; the best polished result wins.
    """

    spacing_m: float
    wavelength_m: float
    ga: Optional[GeneticMinimizer] = None
    restarts: int = 2

    def estimate(
        self,
        observations: Sequence[CalibrationObservation],
        rng: RngLike = None,
    ) -> PhaseOffsets:
        """Estimate the offset vector from K tag observations.

        Raises
        ------
        CalibrationError
            If no observations are supplied or array sizes disagree.
        """
        if not observations:
            raise CalibrationError("cannot calibrate without observations")
        sizes = {obs.noise_subspace.shape[0] for obs in observations}
        if len(sizes) != 1:
            raise CalibrationError(f"inconsistent array sizes {sizes}")
        m = sizes.pop()
        generator = ensure_rng(rng)

        def objective(offsets: np.ndarray) -> float:
            return subspace_cost(
                offsets, observations, self.spacing_m, self.wavelength_m
            )

        ga = self.ga or GeneticMinimizer(bounds=[(-np.pi, np.pi)] * (m - 1))
        best_vector, best_cost = None, np.inf
        with obs.span(
            "calibration.solve", antennas=m, observations=len(observations)
        ) as sp:
            for restart in range(max(1, self.restarts)):
                with obs.span("calibration.ga", restart=restart) as ga_span:
                    ga_result = ga.minimize(objective, rng=generator)
                    ga_span.set(cost=ga_result.best_cost)
                with obs.span("calibration.polish", restart=restart):
                    polished = optimize.minimize(
                        objective,
                        ga_result.best,
                        method="L-BFGS-B",
                        bounds=[(-np.pi - 0.5, np.pi + 0.5)] * (m - 1),
                    )
                obs.count("calibration.restarts")
                if polished.fun < best_cost:
                    best_vector, best_cost = polished.x, float(polished.fun)
            obs.observe("calibration.residual", best_cost)
            sp.set(residual=best_cost)
        return PhaseOffsets.referenced(np.concatenate(([0.0], best_vector)))
