"""A small real-coded genetic algorithm.

Section 4.1 solves the calibration problem with "a hybrid method of
genetic algorithm (GA) and gradient descent (GD)": the GA explores the
highly multi-modal phase space globally, gradient descent polishes the
best candidates into the nearest local minimum.  This module provides
the GA half as a generic bounded minimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, ensure_rng

Objective = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class GaResult:
    """Outcome of a GA run."""

    best: np.ndarray
    best_cost: float
    generations: int
    history: Tuple[float, ...]


@dataclass
class GeneticMinimizer:
    """Real-coded GA with tournament selection, blend crossover and
    Gaussian mutation.

    Parameters
    ----------
    bounds:
        Per-dimension ``(low, high)`` box constraints.
    population_size:
        Number of individuals per generation.
    generations:
        Maximum generations to evolve.
    crossover_rate, mutation_rate:
        Standard GA probabilities.
    mutation_scale:
        Mutation standard deviation, as a fraction of each dimension's
        box width.
    elite_count:
        Individuals copied unchanged into the next generation.
    tournament_size:
        Contestants per tournament selection draw.
    """

    bounds: Sequence[Tuple[float, float]]
    population_size: int = 60
    generations: int = 80
    crossover_rate: float = 0.9
    mutation_rate: float = 0.25
    mutation_scale: float = 0.08
    elite_count: int = 2
    tournament_size: int = 3

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise ConfigurationError("population must have at least 4 individuals")
        if not self.bounds:
            raise ConfigurationError("at least one dimension is required")
        for low, high in self.bounds:
            if low >= high:
                raise ConfigurationError(f"invalid bound ({low}, {high})")
        if self.elite_count >= self.population_size:
            raise ConfigurationError("elite count must be below population size")

    def minimize(
        self,
        objective: Objective,
        rng: RngLike = None,
        initial: Optional[np.ndarray] = None,
    ) -> GaResult:
        """Minimize ``objective`` over the bounded box.

        Parameters
        ----------
        objective:
            Function of an ``(n,)`` vector returning a scalar cost.
        rng:
            Randomness source.
        initial:
            Optional seed individual injected into generation 0.
        """
        generator = ensure_rng(rng)
        lows = np.array([b[0] for b in self.bounds])
        highs = np.array([b[1] for b in self.bounds])
        widths = highs - lows
        dim = lows.size

        population = generator.uniform(
            lows, highs, size=(self.population_size, dim)
        )
        if initial is not None:
            seed = np.clip(np.asarray(initial, dtype=float), lows, highs)
            population[0] = seed

        costs = np.array([objective(ind) for ind in population])
        history = []
        for generation in range(self.generations):
            order = np.argsort(costs)
            population, costs = population[order], costs[order]
            history.append(float(costs[0]))

            next_population = [population[i].copy() for i in range(self.elite_count)]
            while len(next_population) < self.population_size:
                parent_a = self._tournament(population, costs, generator)
                parent_b = self._tournament(population, costs, generator)
                child = self._crossover(parent_a, parent_b, generator)
                child = self._mutate(child, widths, generator)
                next_population.append(np.clip(child, lows, highs))
            population = np.stack(next_population)
            costs = np.array([objective(ind) for ind in population])

        best_index = int(np.argmin(costs))
        history.append(float(costs[best_index]))
        return GaResult(
            best=population[best_index].copy(),
            best_cost=float(costs[best_index]),
            generations=self.generations,
            history=tuple(history),
        )

    def _tournament(
        self,
        population: np.ndarray,
        costs: np.ndarray,
        generator: np.random.Generator,
    ) -> np.ndarray:
        contenders = generator.integers(0, population.shape[0], size=self.tournament_size)
        winner = contenders[int(np.argmin(costs[contenders]))]
        return population[winner]

    def _crossover(
        self,
        parent_a: np.ndarray,
        parent_b: np.ndarray,
        generator: np.random.Generator,
    ) -> np.ndarray:
        if generator.random() >= self.crossover_rate:
            return parent_a.copy()
        # BLX-alpha blend: sample uniformly in a box slightly larger than
        # the parents' span, which keeps exploration alive late in the run.
        alpha = 0.3
        low = np.minimum(parent_a, parent_b)
        high = np.maximum(parent_a, parent_b)
        span = high - low
        return generator.uniform(low - alpha * span, high + alpha * span + 1e-12)

    def _mutate(
        self,
        individual: np.ndarray,
        widths: np.ndarray,
        generator: np.random.Generator,
    ) -> np.ndarray:
        mask = generator.random(individual.size) < self.mutation_rate
        noise = generator.normal(0.0, self.mutation_scale, size=individual.size) * widths
        return individual + mask * noise
