"""Phaser-style wireless calibration baseline (Gjengset et al. 2014).

Phaser self-calibrates a Wi-Fi AP by transmitting from one auxiliary
antenna and chaining *pairwise* phase comparisons along the array: the
offset of antenna ``m`` is the offset of antenna ``m-1`` plus the
measured-minus-expected phase difference of the pair.  Two properties
make it coarse in a multipath room, and both are reproduced here:

* it has exactly **one** reference source with fixed geometry, so the
  multipath bias of that single vantage point cannot be averaged away —
  deploying more reference tags does not help it (the flat Phaser curve
  in the paper's Fig. 9);
* pairwise chaining accumulates each pair's residual multipath error as
  a random walk along the array, growing with element index.

D-Watch instead jointly optimizes all offsets over many tags at diverse
angles, which is what buys its order-of-magnitude better accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro import obs
from repro.calibration.offsets import PhaseOffsets
from repro.errors import CalibrationError
from repro.rf.array import steering_vector
from repro.utils.angles import wrap_to_pi


@dataclass
class PhaserCalibrator:
    """The coarse single-reference, pairwise-chained baseline.

    Parameters
    ----------
    spacing_m, wavelength_m:
        Array geometry (same conventions as the D-Watch calibrator).
    """

    spacing_m: float
    wavelength_m: float

    def estimate(
        self,
        observations: Sequence[Tuple[np.ndarray, float]],
    ) -> PhaseOffsets:
        """Estimate offsets from ``(snapshots, los_angle)`` pairs.

        Only the first observation is used: Phaser's design transmits
        from one fixed auxiliary antenna, so additional reference
        sources are accepted for API symmetry with
        :class:`~repro.calibration.wireless.WirelessCalibrator` but
        carry no information the scheme can exploit.
        """
        if not observations:
            raise CalibrationError("cannot calibrate without observations")
        snapshots, los_angle = observations[0]
        x = np.asarray(snapshots, dtype=complex)
        if x.ndim != 2 or x.shape[0] < 2:
            raise CalibrationError("snapshots must be (M >= 2, N)")
        m = x.shape[0]

        expected = steering_vector(los_angle, m, self.spacing_m, self.wavelength_m)
        offsets = np.zeros(m)
        with obs.span("calibration.phaser", antennas=m):
            return self._chain_offsets(x, expected, offsets, m)

    def _chain_offsets(
        self,
        x: np.ndarray,
        expected: np.ndarray,
        offsets: np.ndarray,
        m: int,
    ) -> PhaseOffsets:
        for antenna in range(1, m):
            # Pairwise comparison against the previous element: average
            # x_m / x_{m-1} over time to cancel the source modulation,
            # then subtract the geometric LoS phase step of the pair.
            previous = x[antenna - 1, :]
            safe_previous = np.where(np.abs(previous) < 1e-15, 1e-15, previous)
            ratio = (x[antenna, :] / safe_previous).mean()
            measured_step = float(np.angle(ratio))
            expected_step = float(np.angle(expected[antenna] / expected[antenna - 1]))
            pair_offset = wrap_to_pi(measured_step - expected_step)
            offsets[antenna] = offsets[antenna - 1] + pair_offset
        return PhaseOffsets.referenced(offsets)
