"""Simulated annealing: a second global solver for Eq. 11.

The calibration objective is multi-modal in the offset phases; the
paper picks GA + gradient descent.  Annealing is the classic
alternative global strategy — worth having both to (a) cross-check
calibration results with an independent solver and (b) quantify the
paper's choice in the solver ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, ensure_rng

Objective = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class AnnealingResult:
    """Outcome of an annealing run."""

    best: np.ndarray
    best_cost: float
    iterations: int
    acceptance_rate: float


@dataclass
class SimulatedAnnealing:
    """Metropolis annealing over a bounded box.

    Parameters
    ----------
    bounds:
        Per-dimension ``(low, high)`` box constraints.
    iterations:
        Total proposal count.
    initial_temperature:
        Starting temperature, in objective units.  Scale it to a
        typical cost difference between random candidates.
    cooling:
        Geometric cooling factor per iteration.
    step_scale:
        Proposal standard deviation as a fraction of each dimension's
        width; shrinks with the temperature.
    """

    bounds: Sequence[Tuple[float, float]]
    iterations: int = 4000
    initial_temperature: float = 1.0
    cooling: float = 0.999
    step_scale: float = 0.15

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ConfigurationError("at least one dimension is required")
        for low, high in self.bounds:
            if low >= high:
                raise ConfigurationError(f"invalid bound ({low}, {high})")
        if self.iterations < 1:
            raise ConfigurationError("need at least one iteration")
        if not 0.0 < self.cooling <= 1.0:
            raise ConfigurationError("cooling must be in (0, 1]")

    def minimize(
        self,
        objective: Objective,
        rng: RngLike = None,
        initial: Optional[np.ndarray] = None,
    ) -> AnnealingResult:
        """Minimize ``objective`` over the box."""
        generator = ensure_rng(rng)
        lows = np.array([b[0] for b in self.bounds])
        highs = np.array([b[1] for b in self.bounds])
        widths = highs - lows

        if initial is not None:
            current = np.clip(np.asarray(initial, dtype=float), lows, highs)
        else:
            current = generator.uniform(lows, highs)
        current_cost = objective(current)
        best, best_cost = current.copy(), current_cost

        temperature = self.initial_temperature
        accepted = 0
        for _ in range(self.iterations):
            scale = self.step_scale * max(
                temperature / self.initial_temperature, 0.05
            )
            proposal = current + generator.normal(
                0.0, scale, size=current.size
            ) * widths
            proposal = np.clip(proposal, lows, highs)
            proposal_cost = objective(proposal)
            delta = proposal_cost - current_cost
            if delta <= 0.0 or generator.random() < math.exp(
                -delta / max(temperature, 1e-12)
            ):
                current, current_cost = proposal, proposal_cost
                accepted += 1
                if current_cost < best_cost:
                    best, best_cost = current.copy(), current_cost
            temperature *= self.cooling
        return AnnealingResult(
            best=best,
            best_cost=float(best_cost),
            iterations=self.iterations,
            acceptance_rate=accepted / self.iterations,
        )
