"""Wired calibration (ArrayTrack-style): the ground-truth reference.

ArrayTrack injects one signal into every RF chain through a splitter and
cable of known length, so each chain's measured phase *is* its offset
(plus a small measurement noise).  The paper uses the wired result as
ground truth for evaluating the wireless methods (Fig. 9); here the
"cable" reads the simulated reader's true offsets through a thin noise
layer.  It requires physical intervention — which is exactly why the
paper replaces it — so the simulator flags its use as interruptive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration.offsets import PhaseOffsets
from repro.errors import CalibrationError
from repro.rfid.reader import Reader
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class WiredCalibrator:
    """Splitter-and-cable calibration against a simulated reader.

    Parameters
    ----------
    measurement_noise_rad:
        Standard deviation of the per-chain phase measurement noise.
        Wired readings are very clean; the default 0.01 rad (~0.6
        degrees) reflects a careful bench measurement.
    """

    measurement_noise_rad: float = 0.01

    #: Wired calibration unplugs the antennas: the link is down while it
    #: runs.  Exposed so experiment code can account for the downtime.
    interrupts_communication: bool = True

    def estimate(self, reader: Reader, rng: RngLike = None) -> PhaseOffsets:
        """Measure the reader's chain offsets through the cable rig."""
        if self.measurement_noise_rad < 0.0:
            raise CalibrationError("measurement noise cannot be negative")
        generator = ensure_rng(rng)
        noise = generator.normal(
            0.0, self.measurement_noise_rad, size=reader.array.num_antennas
        )
        return PhaseOffsets.referenced(np.asarray(reader.phase_offsets) + noise)
