"""A synthetic read-stream driver over the measurement simulator.

Turns batch :class:`~repro.sim.measurement.MeasurementSession` captures
into the interleaved, timestamped :class:`~repro.stream.events.TagRead`
stream a live deployment would produce: one read per (reader, tag,
sweep, antenna slot), timestamped on the TDM slot grid exactly like the
LLRP layer stamps its tag reports.  The simulated target walks a
straight line across the monitored area, one capture per fix window, so
an offline run exercises the same continuous-tracking path as the
paper's Fig. 21 experiments — and a recording of this stream is the
test/benchmark fixture for ``repro stream --replay``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.constants import PACKETS_PER_FIX
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.sim.measurement import Measurement, MeasurementConfig, MeasurementSession
from repro.sim.scene import Scene
from repro.sim.target import human_target
from repro.stream.events import TagRead
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class SyntheticStreamConfig:
    """Shape of a synthetic read stream.

    Parameters
    ----------
    fixes:
        How many fix windows (one capture each) to stream.
    sweeps_per_fix:
        Full antenna sweeps per fix (the paper's 10 packets).
    snr_db:
        Per-antenna SNR of the captures.
    moving:
        Whether the target walks from ``start`` to ``end`` (a static
        target sits at ``start`` for every fix).
    start, end:
        Path endpoints; default to 35 % and 65 % of the room diagonal.
    """

    fixes: int = 10
    sweeps_per_fix: int = PACKETS_PER_FIX
    snr_db: float = 25.0
    moving: bool = True
    start: Optional[Point] = None
    end: Optional[Point] = None

    def __post_init__(self) -> None:
        if self.fixes < 1:
            raise ConfigurationError("a synthetic stream needs at least one fix")
        if self.sweeps_per_fix < 1:
            raise ConfigurationError("each fix needs at least one sweep")


def target_positions(scene: Scene, config: SyntheticStreamConfig) -> List[Point]:
    """The ground-truth target position of every fix window."""
    room = scene.room
    span = Point(room.max_x - room.min_x, room.max_y - room.min_y)
    origin = Point(room.min_x, room.min_y)
    start = config.start if config.start is not None else origin + span * 0.35
    end = config.end if config.end is not None else origin + span * 0.65
    if not config.moving or config.fixes == 1:
        return [start] * config.fixes
    positions = []
    for k in range(config.fixes):
        fraction = k / (config.fixes - 1)
        positions.append(start + (end - start) * fraction)
    return positions


def measurement_reads(
    measurement: Measurement,
    scene: Scene,
    start_time_s: float,
) -> Iterator[TagRead]:
    """Flatten one capture into slot-timestamped reads, in time order.

    Each snapshot column becomes one TDM sweep; each row one antenna
    slot, timestamped ``start + sweep * duration + slot * slot_s`` —
    the same grid :func:`repro.rfid.llrp.build_report` stamps.
    """
    readers = {reader.name: reader for reader in scene.readers}
    for reader_name in measurement.readers():
        if reader_name not in readers:
            raise ConfigurationError(
                f"measurement references unknown reader {reader_name!r}"
            )
    per_sweep: List[List[TagRead]] = []
    for reader_name, per_tag in measurement.snapshots.items():
        reader = readers[reader_name]
        sweep_s = reader.snapshot_sweep_duration()
        slot_s = reader.hub.slot_duration_s
        for epc, matrix in per_tag.items():
            x = np.asarray(matrix, dtype=np.complex128)
            num_antennas, num_sweeps = x.shape
            while len(per_sweep) < num_sweeps:
                per_sweep.append([])
            for t in range(num_sweeps):
                base = start_time_s + t * sweep_s
                per_sweep[t].extend(
                    TagRead(
                        reader_name=reader_name,
                        epc=epc,
                        time_s=base + m * slot_s,
                        iq=complex(x[m, t]),
                    )
                    for m in range(num_antennas)
                )
    for sweep_reads in per_sweep:
        sweep_reads.sort(key=lambda read: read.time_s)
        for read in sweep_reads:
            yield read


def synthetic_reads(
    scene: Scene,
    config: Optional[SyntheticStreamConfig] = None,
    rng: RngLike = None,
) -> Iterator[TagRead]:
    """The synthetic read stream: one capture per fix, slot-timestamped.

    Fix ``k`` occupies event time ``[k * W, (k + 1) * W)`` where ``W``
    is ``sweeps_per_fix`` times the (largest) sweep duration, so a
    :class:`~repro.stream.window.WindowAssembler` configured with the
    same ``sweeps_per_window`` reassembles exactly one window per fix.
    """
    cfg = config or SyntheticStreamConfig()
    session = MeasurementSession(
        scene,
        MeasurementConfig(num_snapshots=cfg.sweeps_per_fix, snr_db=cfg.snr_db),
        rng=rng,
    )
    window_s = cfg.sweeps_per_fix * max(
        reader.snapshot_sweep_duration() for reader in scene.readers
    )
    for k, position in enumerate(target_positions(scene, cfg)):
        measurement = session.capture([human_target(position)])
        yield from measurement_reads(measurement, scene, k * window_s)
