"""The pull-based streaming loop: reads in, :class:`TrackFix` out.

:class:`StreamRunner` wires the streaming pieces around a calibrated,
baselined :class:`~repro.core.pipeline.DWatch`:

.. code-block:: text

    TagRead --> BoundedReadQueue --> WindowAssembler --> CovarianceBank
    (ingest)    (backpressure)       (event-time)        (EW rank-1)
                                                             |
    TrackFix <-- KalmanTracker <-- localize <-- evidence <-- P-MUSIC
    (poll)       (deadzones)        (Step 4)    (Step 3)    spectra

The loop is *pull-based*: producers call :meth:`StreamRunner.ingest`
(possibly from another thread — the queue is the synchronisation
point), the consumer calls :meth:`StreamRunner.poll` whenever it wants
fixes, and :meth:`StreamRunner.run` composes both over any read
iterable.  Every stage is instrumented through :mod:`repro.obs`
(spans feed the ``latency.stream.window`` histogram); with
observability disabled each hook is a single flag check, so streaming
results are bit-identical with or without tracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro import obs
from repro.calibration.offsets import PhaseOffsets
from repro.core.baseline import SpectrumSet
from repro.core.likelihood import LocationEstimate
from repro.core.pipeline import DWatch
from repro.core.tracker import KalmanTracker
from repro.dsp.spectrum import AngularSpectrum
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    LocalizationError,
    ReproError,
    StreamError,
)
from repro.geometry.point import Point
from repro.dsp.batch import BatchPMusicConfig, batched_pmusic_from_covariances
from repro.dsp.incremental import (
    DEFAULT_DRIFT_TOLERANCE,
    CacheEntry,
    EigenState,
    SpectraCache,
    config_fingerprint,
    eigen_state_from_covariance,
    pmusic_spectrum_from_eigh,
    rank_one_eligible,
    reconstruction_drift,
    scaled_rank_one_eigh,
)
from repro.rfid.reader import Reader
from repro.sim.measurement import Measurement
from repro.stream.covariance import (
    CovarianceBank,
    EwCovariance,
    pmusic_spectrum_from_covariance,
)
from repro.stream.drift import BaselineDriftTracker
from repro.stream.events import FixQuality, TagRead, TrackFix
from repro.stream.health import HealthConfig, HealthTracker
from repro.stream.provenance import FixProvenance, ReaderProvenance
from repro.stream.queue import BoundedReadQueue
from repro.stream.window import SnapshotWindow, WindowAssembler, WindowConfig
from repro.utils.arrays import ComplexArray


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the streaming loop.

    Parameters
    ----------
    window:
        Window assembly shape (sweeps per window, lateness bound).
    queue_capacity, drop_policy, block_timeout_s:
        Ingest queue bound and overload behaviour (see
        :class:`~repro.stream.queue.BoundedReadQueue`).
    decay:
        Per-snapshot forgetting factor of the covariance bank.  ``1.0``
        is the running sample covariance of the whole stream; the
        default ``0.8`` forgets a 10-sweep window in roughly a window,
        so a walking target does not smear the spectra.
    drift_alpha:
        EWMA weight of the baseline drift tracker; ``0`` (default)
        keeps the baseline frozen, as the batch pipeline does.
    max_targets:
        Upper bound on simultaneously tracked targets per window.
    smoothing:
        Whether the constant-velocity Kalman tracker smooths fixes and
        bridges deadzone windows (prediction-only fixes).
    health:
        Quarantine thresholds of the per-reader health tracker.
    min_evidence_readers:
        Minimum number of *detecting* readers a window needs before a
        position is attempted.  The default ``1`` preserves the original
        behaviour (any detection localizes); raising it trades coverage
        for ghost suppression when parts of the fleet are unhealthy.
    incremental:
        Enable the revision-keyed spectra cache and the rank-1
        eigen-update (:mod:`repro.dsp.incremental`).  A pair whose
        covariance revision is unchanged is served its cached spectrum
        (``dsp.incremental.skipped``); a pair advanced by exactly one
        snapshot column in an unsmoothed configuration gets a
        secular-equation eigen-update instead of a full ``eigh``,
        guarded by an exactness gate that falls back to the full path
        (``dsp.incremental.fallbacks``) when the reconstruction drifts
        past :data:`~repro.dsp.incremental.DEFAULT_DRIFT_TOLERANCE`.
        The default multi-sweep windows never take the rank-1 branch,
        so enabling this leaves default stream output byte-identical.
    deployment_id:
        Optional fleet deployment id this runner serves.  Purely a
        label: it flows into the ingest queue's per-deployment drop
        metrics and the fleet health document, never into the numerics
        or the checkpoint fingerprint (so a checkpoint hands off
        between labeled and unlabeled runners of the same deployment).
    """

    window: WindowConfig = field(default_factory=WindowConfig)
    queue_capacity: int = 4096
    drop_policy: str = "drop-oldest"
    block_timeout_s: float = 1.0
    decay: float = 0.8
    drift_alpha: float = 0.0
    max_targets: int = 1
    smoothing: bool = True
    health: HealthConfig = field(default_factory=HealthConfig)
    min_evidence_readers: int = 1
    deployment_id: Optional[str] = None
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.max_targets < 1:
            raise ConfigurationError("max_targets must be at least 1")
        if self.min_evidence_readers < 1:
            raise ConfigurationError("min_evidence_readers must be at least 1")


class StreamRunner:
    """Continuous device-free tracking over an endless read stream.

    Parameters
    ----------
    dwatch:
        A calibrated pipeline facade with baseline spectra collected;
        both are preconditions (raising the same typed errors the batch
        path would) because streaming fixes are meaningless without
        them.
    config:
        Streaming knobs; the defaults mirror the paper's deployment.
    """

    def __init__(self, dwatch: DWatch, config: Optional[StreamConfig] = None) -> None:
        if not dwatch.calibration:
            raise CalibrationError(
                "streaming needs calibrated readers; "
                "run calibrate() or set_calibration() first"
            )
        if dwatch.baseline is None:
            raise LocalizationError(
                "streaming needs baseline spectra; run collect_baseline() first"
            )
        self.dwatch = dwatch
        self.config = config or StreamConfig()
        self.queue = BoundedReadQueue(
            capacity=self.config.queue_capacity,
            policy=self.config.drop_policy,
            block_timeout_s=self.config.block_timeout_s,
            deployment=self.config.deployment_id,
        )
        self.assembler = WindowAssembler.for_readers(
            dwatch.readers, self.config.window
        )
        self.bank = CovarianceBank(decay=self.config.decay)
        self.drift = BaselineDriftTracker(alpha=self.config.drift_alpha)
        self.tracker: Optional[KalmanTracker] = (
            KalmanTracker() if self.config.smoothing else None
        )
        self.health = HealthTracker.for_readers(
            dwatch.readers, self.config.health
        )
        #: Revision-keyed spectra memo (``None`` disables both the
        #: skip cache and the rank-1 eigen-update path).
        self.spectra_cache: Optional[SpectraCache] = (
            SpectraCache() if self.config.incremental else None
        )
        #: Exactness gate of the rank-1 eigen-update; tests tighten it
        #: to force the full-``eigh`` fallback.
        self.drift_tolerance = DEFAULT_DRIFT_TOLERANCE
        self.fixes_emitted = 0
        self.rejected_reads = 0
        #: Identities of the checkpoints this run restored from, oldest
        #: first.  Appended to by :meth:`restore`, carried forward into
        #: the next checkpoint, and stamped onto every fix's provenance.
        self.lineage: List[str] = []
        #: Optional callback ``(window_start_s, window_end_s) ->
        #: fault kinds`` set by chaos harnesses so fix provenance can
        #: name the faults active over each window.  ``None`` (the
        #: default) records no faults.
        self.fault_probe: Optional[
            Callable[[float, float], Tuple[str, ...]]
        ] = None

    def ingest(self, read: TagRead) -> bool:
        """Offer one read to the bounded queue; returns acceptance.

        Safe to call from a producer thread.  Under the ``block``
        policy this may raise
        :class:`~repro.errors.BackpressureError` after the timeout.
        """
        return self.queue.put(read)

    def poll(self) -> List[TrackFix]:
        """Drain the queue, assemble windows, localize every closed one.

        A malformed read (unknown reader, out-of-slot timestamp) is
        counted and dropped rather than crashing the loop: a live
        pipeline must outlast one bad report.  Structural configuration
        errors still surface through :attr:`rejected_reads` and the
        ``stream.reads.rejected`` counter.
        """
        fixes: List[TrackFix] = []
        drained = self.queue.drain()
        # note_read is independent of window assembly, so the batch
        # accounting call leaves health state identical to the
        # historical per-read interleaving.
        self.health.note_reads(drained)
        push = self.assembler.push
        for read in drained:
            try:
                windows = push(read)
            except StreamError:
                self.rejected_reads += 1
                obs.count("stream.reads.rejected")
                continue
            fixes.extend(
                self._process_window(window) for window in windows
            )
        obs.gauge("stream.queue.depth", float(len(self.queue)))
        return fixes

    def finish(self) -> List[TrackFix]:
        """End of stream: drain everything and close all pending windows."""
        fixes = self.poll()
        fixes.extend(
            self._process_window(window)
            for window in self.assembler.flush()
        )
        return fixes

    def run(
        self, source: Iterable[TagRead], chunk_size: int = 256
    ) -> Iterator[TrackFix]:
        """Pump an entire read iterable through the loop, yielding fixes.

        The one-call composition of :meth:`ingest`, :meth:`poll` and
        :meth:`finish` for single-threaded replay and synthetic runs.
        Reads are ingested in chunks (one queue lock acquisition and
        one poll per chunk rather than per read); the chunk never
        exceeds the queue capacity, so no replay read is ever dropped
        that per-read ingestion would have admitted, and the emitted
        fixes are identical either way.
        """
        chunk_size = max(1, min(chunk_size, self.queue.capacity))
        chunk: List[TagRead] = []
        for read in source:
            chunk.append(read)
            if len(chunk) >= chunk_size:
                self.queue.put_many(chunk)
                chunk.clear()
                yield from self.poll()
        if chunk:
            self.queue.put_many(chunk)
        yield from self.finish()

    def checkpoint(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of every piece of mutable stream state.

        Covers the covariance bank, window assembler, queued reads,
        Kalman tracker, baseline spectra (drift-adapted), drift and
        health counters — everything needed for :meth:`restore` to
        continue the run *bit-identically*, as if the process never
        died.  See :mod:`repro.stream.checkpoint` for the format.
        """
        from repro.stream.checkpoint import checkpoint_state

        return checkpoint_state(self)

    def restore(self, state: Mapping[str, Any]) -> None:
        """Adopt a checkpoint produced by :meth:`checkpoint`.

        The runner must be built over an identically configured
        deployment (same readers, window shape, decay); a fingerprint
        mismatch raises :class:`~repro.errors.CheckpointError` instead
        of silently corrupting later fixes.
        """
        from repro.stream.checkpoint import restore_state

        restore_state(self, state)
        if self.spectra_cache is not None:
            # Restored pairs restart their revision counters, so any
            # pre-restore cache entries could collide with a future
            # revision of different content; drop them all.
            self.spectra_cache = SpectraCache()

    def _process_window(self, window: SnapshotWindow) -> TrackFix:
        with obs.span(
            "stream.window", index=window.index, sweeps=window.sweeps
        ) as sp:
            online, failed, fallbacks = self._window_spectra(window)
            for reader_name, error in failed:
                self.health.note_violation(reader_name, error)
            self.health.observe_window(online.spectra.keys())
            quarantined = self.health.quarantined()
            included = self._exclude_quarantined(online, quarantined)
            evidence = self.dwatch.evidence_from_spectra(included, missing="skip")
            detecting = any(item.has_detection for item in evidence)
            if self.drift.enabled and self.dwatch.baseline is not None:
                self.drift.update(self.dwatch.baseline, included, detecting)
            active_detecting = sum(
                1 for item in evidence if item.has_detection
            )
            estimates: List[LocationEstimate]
            if 0 < active_detecting < self.config.min_evidence_readers:
                # Below the minimum-evidence threshold: refusing to
                # localize beats emitting a ghost from one reader's say-so.
                obs.count("stream.fixes.insufficient")
                estimates = []
                insufficient = True
            else:
                estimates = self.dwatch.localize_from_evidence(
                    evidence, self.config.max_targets
                )
                insufficient = False
            position: Optional[Point] = (
                estimates[0].position if estimates else None
            )
            predicted_only = False
            if self.tracker is not None and (
                position is not None or self.tracker.initialized
            ):
                point = self.tracker.update(window.end_s, position)
                position = point.position
                predicted_only = point.predicted_only
            quality = self._fix_quality(
                quarantined=quarantined,
                active_readers=len(included.spectra),
                estimates=estimates,
                position=position,
                predicted_only=predicted_only,
                insufficient=insufficient,
            )
            if quality.degraded:
                obs.count("stream.fixes.degraded")
            provenance = self._fix_provenance(
                window, online, included, failed, fallbacks
            )
            self.fixes_emitted += 1
            obs.count("stream.fixes")
            obs.count("stream.fixes.by_quality", labels={"level": quality.level})
            sp.set(located=position is not None, quality=quality.level)
        return TrackFix(
            index=window.index,
            time_s=window.end_s,
            position=position,
            raw_estimates=tuple(estimates),
            predicted_only=predicted_only,
            sweeps=window.sweeps,
            reads=window.reads,
            quality=quality,
            provenance=provenance,
        )

    def _fix_provenance(
        self,
        window: SnapshotWindow,
        online: SpectrumSet,
        included: SpectrumSet,
        failed: List[Tuple[str, ReproError]],
        fallbacks: List[str],
    ) -> FixProvenance:
        """The audit record of one window: who and what made the fix.

        Every field is read off state the runner already holds, so the
        stamp costs no numerics — fixes stay bit-identical with or
        without anyone ever looking at provenance.
        """
        contributed = set(included.spectra)
        produced = set(online.spectra)
        failed_names = {name for name, _ in failed}
        readers: List[ReaderProvenance] = []
        for name in sorted(self.dwatch.readers):
            if name in contributed:
                role = "contributed"
            elif name in produced:
                role = "excluded"
            elif name in failed_names:
                role = "failed"
            else:
                role = "silent"
            readers.append(
                ReaderProvenance(
                    name=name, health=self.health.state_of(name), role=role
                )
            )
            obs.count(
                "stream.reader.windows", labels={"reader": name, "role": role}
            )
        if not fallbacks:
            spectral_path = "batch"
        elif produced and produced <= set(fallbacks):
            spectral_path = "scalar"
        else:
            spectral_path = "mixed"
        active_faults: Tuple[str, ...] = ()
        if self.fault_probe is not None:
            active_faults = tuple(
                self.fault_probe(window.start_s, window.end_s)
            )
        return FixProvenance(
            window_index=window.index,
            readers=tuple(readers),
            active_faults=active_faults,
            watermark_s=self.assembler.watermark,
            lateness_s=self.assembler.lateness_s,
            spectral_path=spectral_path,
            scalar_fallbacks=tuple(sorted(fallbacks)),
            checkpoint_lineage=tuple(self.lineage),
        )

    def _fix_quality(
        self,
        quarantined: "frozenset[str]",
        active_readers: int,
        estimates: List[LocationEstimate],
        position: Optional[Point],
        predicted_only: bool,
        insufficient: bool,
    ) -> FixQuality:
        """Stamp one window's fix with its health-aware trust level."""
        total = self.health.total
        healthy = self.health.healthy_count
        healthy_fraction = healthy / total if total else 0.0
        if insufficient:
            level = "insufficient"
        elif quarantined or active_readers < total:
            level = "degraded"
        else:
            level = "full"
        if position is None:
            confidence = 0.0
        elif predicted_only or not estimates:
            confidence = 0.5 * healthy_fraction
        else:
            confidence = healthy_fraction * min(
                1.0, estimates[0].normalized_likelihood
            )
        return FixQuality(
            level=level,
            confidence=confidence,
            active_readers=active_readers,
            healthy_readers=healthy,
            total_readers=total,
            quarantined=tuple(sorted(quarantined)),
        )

    @staticmethod
    def _exclude_quarantined(
        online: SpectrumSet, quarantined: "frozenset[str]"
    ) -> SpectrumSet:
        """Online spectra without the quarantined readers' contributions.

        Returns ``online`` unchanged (same object) when nothing is
        quarantined, so the healthy path stays bit-identical to a build
        without health tracking.
        """
        if not quarantined:
            return online
        filtered = SpectrumSet()
        for reader_name, per_tag in online.spectra.items():
            if reader_name not in quarantined:
                filtered.spectra[reader_name] = per_tag
        return filtered

    def _window_spectra(
        self, window: SnapshotWindow
    ) -> Tuple[SpectrumSet, List[Tuple[str, ReproError]], List[str]]:
        """Fold the window into the covariance bank; spectra from ``R``.

        The calibration correction is a per-antenna diagonal multiply,
        so applying it to the snapshot columns *before* the rank-1
        updates is algebraically identical to correcting a batch
        matrix.

        A reader's tags run through the stacked covariance-domain
        kernels (:func:`repro.dsp.batch.batched_pmusic_from_covariances`)
        as one batch — bit-identical to the per-tag reference chain.
        The bank updates are transactional: every pair is snapshotted
        first, and on *any* failure the bank rolls back and the
        reference loop replays, so failure semantics (which tags'
        covariances advanced before the error) match the scalar path
        exactly.

        Failures are isolated per reader: a glitched reader whose
        snapshots break the spectral chain (contract violation, rank
        collapse) is reported in the second return value — and its
        partial spectra withheld — instead of killing the whole
        window.  The health tracker turns repeated failures into a
        quarantine.

        The third return value names the readers whose batched pass
        failed and fell back to the scalar reference chain — provenance
        and the ``stream.spectra.scalar_fallback`` counter both feed
        off it.
        """
        online = SpectrumSet()
        failed: List[Tuple[str, ReproError]] = []
        fallbacks: List[str] = []
        measurement = window.measurement
        for reader_name in measurement.readers():
            reader = self.dwatch.readers[reader_name]
            offsets = self.dwatch.calibration.get(reader_name)
            try:
                per_tag, used_scalar = self._reader_spectra(
                    reader_name, reader, measurement, offsets
                )
            except ReproError as exc:
                failed.append((reader_name, exc))
                continue
            if used_scalar:
                fallbacks.append(reader_name)
                obs.count(
                    "stream.spectra.scalar_fallback",
                    labels={"reader": reader_name},
                )
            online.spectra[reader_name] = per_tag
        return online, failed, fallbacks

    def _reader_spectra(
        self,
        reader_name: str,
        reader: Reader,
        measurement: Measurement,
        offsets: Optional[PhaseOffsets],
    ) -> Tuple[Dict[str, AngularSpectrum], bool]:
        """One reader's per-tag spectra, batched when possible.

        The flag reports whether the scalar reference chain produced
        the spectra (``True`` only after a batched-pass rollback).
        """
        saved: List[Tuple[EwCovariance, Tuple[ComplexArray, float, int, int]]] = []
        try:
            epcs: List[str] = []
            pairs: List[EwCovariance] = []
            for epc in measurement.tags_for(reader_name):
                snapshots = measurement.matrix(reader_name, epc)
                if offsets is not None:
                    snapshots = offsets.apply_correction(snapshots)
                estimator = self.bank.pair(
                    reader_name, epc, int(snapshots.shape[0])
                )
                saved.append((estimator, estimator.state_snapshot()))
                estimator.update_matrix(snapshots)
                epcs.append(epc)
                pairs.append(estimator)
            return self._batched_tag_spectra(reader_name, reader, epcs, pairs), False
        except (ReproError, ValueError, ArithmeticError):
            # Everything the spectral chain can raise: the repro
            # taxonomy, shape/eigensolver failures (LinAlgError is a
            # ValueError subclass), and floating-point faults.  Roll
            # the bank back and replay the reference loop: its failure
            # point (or success) defines the semantics.
            for estimator, state in saved:
                estimator.state_restore(state)
            scalar = self._scalar_reader_spectra(
                reader_name, reader, measurement, offsets
            )
            return scalar, True

    def _batched_tag_spectra(
        self,
        reader_name: str,
        reader: Reader,
        epcs: List[str],
        pairs: List[EwCovariance],
    ) -> Dict[str, AngularSpectrum]:
        """Stacked P-MUSIC over uniform-size covariance groups.

        With the incremental path enabled each pair first consults the
        revision-keyed cache (hit → cached spectrum, no recompute) and
        then the rank-1 eigen-update (single-column fold in an
        unsmoothed configuration); only the remaining misses pay the
        full batched recompute.  The batched kernels are per-item, so
        spectra are bit-identical no matter how the misses are grouped
        — a cache hit returns exactly what a recompute would.
        """
        config = BatchPMusicConfig(
            spacing_m=reader.array.spacing_m,
            wavelength_m=reader.array.wavelength_m,
        )
        cache = self.spectra_cache
        fingerprint = config_fingerprint(config) if cache is not None else None
        covariances: List[ComplexArray] = []
        computed: Dict[str, AngularSpectrum] = {}
        misses: List[int] = []
        for position, (epc, estimator) in enumerate(zip(epcs, pairs)):
            covariance = estimator.covariance()
            covariances.append(covariance)
            if cache is None or fingerprint is None:
                misses.append(position)
                continue
            entry = cache.lookup(
                (reader_name, epc), estimator.revision, fingerprint
            )
            if entry is not None:
                obs.count("dsp.incremental.skipped")
                computed[epc] = entry.spectrum
                continue
            spectrum = self._incremental_spectrum(
                reader_name, epc, estimator, covariance, config, fingerprint
            )
            if spectrum is not None:
                computed[epc] = spectrum
            else:
                misses.append(position)
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for position in misses:
            groups.setdefault(covariances[position].shape, []).append(position)
        for positions in groups.values():
            stack = np.stack([covariances[i] for i in positions])
            spectra = batched_pmusic_from_covariances(stack, config)
            for i, spectrum in zip(positions, spectra):
                computed[epcs[i]] = spectrum
                if cache is not None and fingerprint is not None:
                    self._store_cache_entry(
                        reader_name,
                        epcs[i],
                        pairs[i],
                        covariances[i],
                        config,
                        fingerprint,
                        spectrum,
                    )
        return {epc: computed[epc] for epc in epcs}

    def _incremental_spectrum(
        self,
        reader_name: str,
        epc: str,
        estimator: EwCovariance,
        covariance: ComplexArray,
        config: BatchPMusicConfig,
        fingerprint: Tuple[object, ...],
    ) -> Optional[AngularSpectrum]:
        """Rank-1 eigen-update spectrum for one pair, or ``None``.

        ``None`` means "take the full batched path": the pair has no
        usable eigen seed, the last fold was not a single column, the
        secular update deflated, or the exactness gate rejected the
        proposed factors (the latter two bump
        ``dsp.incremental.fallbacks`` — the seed/eligibility cases are
        the *normal* state of multi-sweep windows, not fallbacks).
        """
        cache = self.spectra_cache
        if cache is None:
            return None
        previous = cache.get((reader_name, epc))
        if (
            previous is None
            or previous.eigen is None
            or previous.fingerprint != fingerprint
        ):
            return None
        fold = estimator.last_fold
        if fold is None:
            return None
        column, scale, gain, revision = fold
        if (
            revision != estimator.revision
            or previous.eigen.revision != revision - 1
        ):
            return None
        updated = scaled_rank_one_eigh(
            previous.eigen.values, previous.eigen.vectors, scale, gain, column
        )
        if updated is None:
            obs.count("dsp.incremental.fallbacks")
            return None
        values, vectors = updated
        smoothed = (covariance + covariance.conj().T) / 2.0
        if reconstruction_drift(values, vectors, smoothed) > self.drift_tolerance:
            obs.count("dsp.incremental.fallbacks")
            return None
        try:
            spectrum = pmusic_spectrum_from_eigh(
                covariance, values[::-1], vectors[:, ::-1], config
            )
        except ReproError:
            obs.count("dsp.incremental.fallbacks")
            return None
        obs.count("dsp.incremental.updates")
        cache.store(
            (reader_name, epc),
            CacheEntry(
                revision=revision,
                fingerprint=fingerprint,
                spectrum=spectrum,
                eigen=EigenState(
                    revision=revision, values=values, vectors=vectors
                ),
            ),
        )
        return spectrum

    def _store_cache_entry(
        self,
        reader_name: str,
        epc: str,
        estimator: EwCovariance,
        covariance: ComplexArray,
        config: BatchPMusicConfig,
        fingerprint: Tuple[object, ...],
        spectrum: AngularSpectrum,
    ) -> None:
        """Record a fully-recomputed spectrum (and eigen seed) for a pair.

        The eigen seed is only kept for rank-1-eligible configurations;
        its extra ``eigh`` is an O(M^3) cost on an M-element matrix,
        paid only where the next window can actually spend it.
        """
        if self.spectra_cache is None:
            return
        eigen: Optional[EigenState] = None
        if rank_one_eligible(config, covariance.shape[0]):
            eigen = eigen_state_from_covariance(covariance, estimator.revision)
        self.spectra_cache.store(
            (reader_name, epc),
            CacheEntry(
                revision=estimator.revision,
                fingerprint=fingerprint,
                spectrum=spectrum,
                eigen=eigen,
            ),
        )

    def pair_spectrum(self, reader_name: str, epc: str) -> AngularSpectrum:
        """On-demand P-MUSIC spectrum of one tracked (reader, tag) pair.

        The introspection hook ops tooling polls between windows.  With
        the incremental path enabled, a pair whose covariance revision
        is unchanged since the last computation is served straight from
        the cache (``dsp.incremental.skipped``) — an untouched pair
        never recomputes its spectral chain, no matter how often it is
        asked for.
        """
        if reader_name not in self.dwatch.readers:
            raise StreamError(f"unknown reader {reader_name!r}")
        reader = self.dwatch.readers[reader_name]
        estimator = self.bank.pair_if_tracked(reader_name, epc)
        if estimator is None:
            raise StreamError(
                f"no covariance tracked for reader {reader_name!r} / tag {epc!r}"
            )
        return self._batched_tag_spectra(
            reader_name, reader, [epc], [estimator]
        )[epc]

    def _scalar_reader_spectra(
        self,
        reader_name: str,
        reader: Reader,
        measurement: Measurement,
        offsets: Optional[PhaseOffsets],
    ) -> Dict[str, AngularSpectrum]:
        """The reference per-tag chain (also the semantics oracle)."""
        per_tag: Dict[str, AngularSpectrum] = {}
        for epc in measurement.tags_for(reader_name):
            snapshots = measurement.matrix(reader_name, epc)
            if offsets is not None:
                snapshots = offsets.apply_correction(snapshots)
            estimator = self.bank.pair(reader_name, epc, int(snapshots.shape[0]))
            estimator.update_matrix(snapshots)
            per_tag[epc] = pmusic_spectrum_from_covariance(
                estimator.covariance(),
                spacing_m=reader.array.spacing_m,
                wavelength_m=reader.array.wavelength_m,
            )
        return per_tag
