"""The pull-based streaming loop: reads in, :class:`TrackFix` out.

:class:`StreamRunner` wires the streaming pieces around a calibrated,
baselined :class:`~repro.core.pipeline.DWatch`:

.. code-block:: text

    TagRead --> BoundedReadQueue --> WindowAssembler --> CovarianceBank
    (ingest)    (backpressure)       (event-time)        (EW rank-1)
                                                             |
    TrackFix <-- KalmanTracker <-- localize <-- evidence <-- P-MUSIC
    (poll)       (deadzones)        (Step 4)    (Step 3)    spectra

The loop is *pull-based*: producers call :meth:`StreamRunner.ingest`
(possibly from another thread — the queue is the synchronisation
point), the consumer calls :meth:`StreamRunner.poll` whenever it wants
fixes, and :meth:`StreamRunner.run` composes both over any read
iterable.  Every stage is instrumented through :mod:`repro.obs`
(spans feed the ``latency.stream.window`` histogram); with
observability disabled each hook is a single flag check, so streaming
results are bit-identical with or without tracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro import obs
from repro.core.baseline import SpectrumSet
from repro.core.pipeline import DWatch
from repro.core.tracker import KalmanTracker
from repro.dsp.spectrum import AngularSpectrum
from repro.errors import CalibrationError, ConfigurationError, LocalizationError
from repro.geometry.point import Point
from repro.stream.covariance import CovarianceBank, pmusic_spectrum_from_covariance
from repro.stream.drift import BaselineDriftTracker
from repro.stream.events import TagRead, TrackFix
from repro.stream.queue import BoundedReadQueue
from repro.stream.window import SnapshotWindow, WindowAssembler, WindowConfig


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the streaming loop.

    Parameters
    ----------
    window:
        Window assembly shape (sweeps per window, lateness bound).
    queue_capacity, drop_policy, block_timeout_s:
        Ingest queue bound and overload behaviour (see
        :class:`~repro.stream.queue.BoundedReadQueue`).
    decay:
        Per-snapshot forgetting factor of the covariance bank.  ``1.0``
        is the running sample covariance of the whole stream; the
        default ``0.8`` forgets a 10-sweep window in roughly a window,
        so a walking target does not smear the spectra.
    drift_alpha:
        EWMA weight of the baseline drift tracker; ``0`` (default)
        keeps the baseline frozen, as the batch pipeline does.
    max_targets:
        Upper bound on simultaneously tracked targets per window.
    smoothing:
        Whether the constant-velocity Kalman tracker smooths fixes and
        bridges deadzone windows (prediction-only fixes).
    """

    window: WindowConfig = field(default_factory=WindowConfig)
    queue_capacity: int = 4096
    drop_policy: str = "drop-oldest"
    block_timeout_s: float = 1.0
    decay: float = 0.8
    drift_alpha: float = 0.0
    max_targets: int = 1
    smoothing: bool = True

    def __post_init__(self) -> None:
        if self.max_targets < 1:
            raise ConfigurationError("max_targets must be at least 1")


class StreamRunner:
    """Continuous device-free tracking over an endless read stream.

    Parameters
    ----------
    dwatch:
        A calibrated pipeline facade with baseline spectra collected;
        both are preconditions (raising the same typed errors the batch
        path would) because streaming fixes are meaningless without
        them.
    config:
        Streaming knobs; the defaults mirror the paper's deployment.
    """

    def __init__(self, dwatch: DWatch, config: Optional[StreamConfig] = None) -> None:
        if not dwatch.calibration:
            raise CalibrationError(
                "streaming needs calibrated readers; "
                "run calibrate() or set_calibration() first"
            )
        if dwatch.baseline is None:
            raise LocalizationError(
                "streaming needs baseline spectra; run collect_baseline() first"
            )
        self.dwatch = dwatch
        self.config = config or StreamConfig()
        self.queue = BoundedReadQueue(
            capacity=self.config.queue_capacity,
            policy=self.config.drop_policy,
            block_timeout_s=self.config.block_timeout_s,
        )
        self.assembler = WindowAssembler.for_readers(
            dwatch.readers, self.config.window
        )
        self.bank = CovarianceBank(decay=self.config.decay)
        self.drift = BaselineDriftTracker(alpha=self.config.drift_alpha)
        self.tracker: Optional[KalmanTracker] = (
            KalmanTracker() if self.config.smoothing else None
        )
        self.fixes_emitted = 0

    def ingest(self, read: TagRead) -> bool:
        """Offer one read to the bounded queue; returns acceptance.

        Safe to call from a producer thread.  Under the ``block``
        policy this may raise
        :class:`~repro.errors.BackpressureError` after the timeout.
        """
        return self.queue.put(read)

    def poll(self) -> List[TrackFix]:
        """Drain the queue, assemble windows, localize every closed one."""
        fixes: List[TrackFix] = []
        for read in self.queue.drain():
            for window in self.assembler.push(read):
                fixes.append(self._process_window(window))
        obs.gauge("stream.queue.depth", float(len(self.queue)))
        return fixes

    def finish(self) -> List[TrackFix]:
        """End of stream: drain everything and close all pending windows."""
        fixes = self.poll()
        for window in self.assembler.flush():
            fixes.append(self._process_window(window))
        return fixes

    def run(self, source: Iterable[TagRead]) -> Iterator[TrackFix]:
        """Pump an entire read iterable through the loop, yielding fixes.

        The one-call composition of :meth:`ingest`, :meth:`poll` and
        :meth:`finish` for single-threaded replay and synthetic runs.
        """
        for read in source:
            self.ingest(read)
            yield from self.poll()
        yield from self.finish()

    def _process_window(self, window: SnapshotWindow) -> TrackFix:
        with obs.span(
            "stream.window", index=window.index, sweeps=window.sweeps
        ) as sp:
            online = self._window_spectra(window)
            evidence = self.dwatch.evidence_from_spectra(online)
            detecting = any(item.has_detection for item in evidence)
            if self.drift.enabled and self.dwatch.baseline is not None:
                self.drift.update(self.dwatch.baseline, online, detecting)
            estimates = self.dwatch.localize_from_evidence(
                evidence, self.config.max_targets
            )
            position: Optional[Point] = (
                estimates[0].position if estimates else None
            )
            predicted_only = False
            if self.tracker is not None and (
                position is not None or self.tracker.initialized
            ):
                point = self.tracker.update(window.end_s, position)
                position = point.position
                predicted_only = point.predicted_only
            self.fixes_emitted += 1
            obs.count("stream.fixes")
            sp.set(located=position is not None)
        return TrackFix(
            index=window.index,
            time_s=window.end_s,
            position=position,
            raw_estimates=tuple(estimates),
            predicted_only=predicted_only,
            sweeps=window.sweeps,
            reads=window.reads,
        )

    def _window_spectra(self, window: SnapshotWindow) -> SpectrumSet:
        """Fold the window into the covariance bank; spectra from ``R``.

        The calibration correction is a per-antenna diagonal multiply,
        so applying it to the snapshot columns *before* the rank-1
        updates is algebraically identical to correcting a batch
        matrix.
        """
        online = SpectrumSet()
        measurement = window.measurement
        for reader_name in measurement.readers():
            reader = self.dwatch.readers[reader_name]
            offsets = self.dwatch.calibration.get(reader_name)
            per_tag: Dict[str, AngularSpectrum] = {}
            for epc in measurement.tags_for(reader_name):
                snapshots = measurement.matrix(reader_name, epc)
                if offsets is not None:
                    snapshots = offsets.apply_correction(snapshots)
                estimator = self.bank.pair(
                    reader_name, epc, int(snapshots.shape[0])
                )
                estimator.update_matrix(snapshots)
                per_tag[epc] = pmusic_spectrum_from_covariance(
                    estimator.covariance(),
                    spacing_m=reader.array.spacing_m,
                    wavelength_m=reader.array.wavelength_m,
                )
            online.spectra[reader_name] = per_tag
        return online
