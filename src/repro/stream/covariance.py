"""Incrementally maintained array covariances for the streaming path.

The batch pipeline rebuilds ``R = X X^H / N`` from every window's full
snapshot matrix.  Online, consecutive windows of the same (reader, tag)
pair are highly redundant, so the stream engine instead keeps one
exponentially-weighted covariance per pair and folds each new snapshot
column in as a rank-1 update:

.. math::  S \\leftarrow \\lambda S + x x^H, \\qquad w \\leftarrow \\lambda w + 1

with ``R = S / w``.  Decay ``1.0`` makes this *exactly* the running
sample covariance of everything seen (the tier-1 equivalence test pins
it against :func:`repro.dsp.covariance.sample_covariance` at
``atol=1e-10``); decay below one forgets old sweeps geometrically, so a
moving target stops smearing the estimate while the per-window spectra
still benefit from more than one window's worth of snapshots.

The P-MUSIC spectrum is then computed straight from ``R`` —
:func:`pmusic_spectrum_from_covariance` mirrors
:class:`repro.dsp.pmusic.PMusicEstimator` stage for stage (spatial
smoothing, eigendecomposition, peak normalization, Bartlett power) but
never touches raw snapshots again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.constants import MAX_DOMINANT_PATHS
from repro.dsp.bartlett import bartlett_spectrum_from_covariance
from repro.dsp.covariance import forward_backward_average
from repro.dsp.music import (
    estimate_num_sources,
    music_spectrum_from_subspace,
    noise_subspace,
)
from repro.dsp.pmusic import normalize_peaks
from repro.dsp.smoothing import default_subarray_size
from repro.dsp.spectrum import AngularSpectrum
from repro.errors import ConfigurationError, EstimationError
from repro.utils.arrays import ArrayLike, ComplexArray, FloatArray


def smoothed_covariance_from_full(
    covariance: ArrayLike,
    subarray_size: int,
    forward_backward: bool = True,
) -> ComplexArray:
    """Spatially smoothed covariance computed from the full ``(M, M)`` ``R``.

    The average of the snapshot-domain subarray covariances equals the
    average of the ``(L, L)`` diagonal blocks of the full covariance,
    so smoothing needs no snapshots — which is what lets the streaming
    engine stay entirely in the covariance domain.
    """
    r = np.asarray(covariance, dtype=np.complex128)
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise EstimationError("covariance must be a square (M, M) matrix")
    m = r.shape[0]
    if not 2 <= subarray_size <= m:
        raise EstimationError(
            f"subarray size must be in [2, {m}], got {subarray_size}"
        )
    num_subarrays = m - subarray_size + 1
    accum = np.zeros((subarray_size, subarray_size), dtype=np.complex128)
    for start in range(num_subarrays):
        block = r[start : start + subarray_size, start : start + subarray_size]
        accum += (block + block.conj().T) / 2.0
    smoothed = accum / num_subarrays
    if forward_backward:
        smoothed = forward_backward_average(smoothed)
    return smoothed


def pmusic_spectrum_from_covariance(
    covariance: ArrayLike,
    spacing_m: float,
    wavelength_m: float,
    angle_grid: Optional[FloatArray] = None,
    num_sources: Optional[int] = None,
    subarray_size: Optional[int] = None,
    forward_backward: bool = True,
    peak_min_relative_height: float = 0.02,
    peak_min_separation: float = 0.05,
    source_threshold_ratio: float = 0.03,
) -> AngularSpectrum:
    """P-MUSIC spectrum ``Omega(theta)`` straight from a covariance.

    Mirrors :meth:`repro.dsp.pmusic.PMusicEstimator.spectrum` (Eq. 14)
    with the covariance substituted for the snapshots in both factors:
    the MUSIC pseudo-spectrum comes from the smoothed ``R``'s noise
    subspace and the Bartlett power from ``a^H R a / M^2``.
    """
    r = np.asarray(covariance, dtype=np.complex128)
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise EstimationError("covariance must be a square (M, M) matrix")
    m = r.shape[0]
    with obs.span("stream.pmusic", size=m):
        sub_len = (
            subarray_size
            if subarray_size is not None
            else default_subarray_size(m, MAX_DOMINANT_PATHS)
        )
        if sub_len >= m:
            smoothed: ComplexArray = (r + r.conj().T) / 2.0
        else:
            smoothed = smoothed_covariance_from_full(r, sub_len, forward_backward)
        eigenvalues = np.linalg.eigvalsh(smoothed)[::-1]
        p = (
            num_sources
            if num_sources is not None
            else estimate_num_sources(
                eigenvalues,
                source_threshold_ratio,
                max_sources=smoothed.shape[0] - 1,
            )
        )
        un = noise_subspace(smoothed, p)
        music_spec = music_spectrum_from_subspace(
            un, spacing_m, wavelength_m, angle_grid
        )
        normalized = normalize_peaks(
            music_spec, peak_min_relative_height, peak_min_separation
        )
        power = bartlett_spectrum_from_covariance(
            r, spacing_m, wavelength_m, normalized.angles
        )
        return AngularSpectrum(
            normalized.angles.copy(), power.values * normalized.values
        )


class EwCovariance:
    """Exponentially-weighted covariance of one (reader, tag) pair.

    Parameters
    ----------
    num_antennas:
        Array size ``M``.
    decay:
        Per-column forgetting factor in ``(0, 1]``.  ``1.0`` weights
        every snapshot equally (the running sample covariance).
    """

    def __init__(self, num_antennas: int, decay: float = 1.0) -> None:
        if num_antennas < 1:
            raise ConfigurationError("covariance needs at least one antenna")
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        self.num_antennas = num_antennas
        self.decay = decay
        self._weighted = np.zeros((num_antennas, num_antennas), dtype=np.complex128)
        self._weight = 0.0
        self.updates = 0
        #: Monotonic content stamp: bumped once per folded column and on
        #: every rollback, never reused — so "same revision" always
        #: means "bit-identical covariance", which is what lets the
        #: stream's spectra cache skip recomputation for quiet pairs.
        self.revision = 0
        self._last_fold: Optional[Tuple[ComplexArray, float, float, int]] = None

    @property
    def weight(self) -> float:
        """Effective number of snapshots behind the current estimate."""
        return self._weight

    def update(self, column: ArrayLike) -> None:
        """Fold one snapshot column in as a rank-1 update."""
        x = np.asarray(column, dtype=np.complex128)
        if x.shape != (self.num_antennas,):
            raise EstimationError(
                f"column must have shape ({self.num_antennas},), got {x.shape}"
            )
        if self.decay != 1.0:
            self._weighted *= self.decay
        previous_weight = self._weight
        self._weighted += np.outer(x, x.conj())
        self._weight = self.decay * self._weight + 1.0
        self.updates += 1
        self.revision += 1
        # R' = (decay * w / w') R + (1 / w') x x^H: the scale/gain pair
        # the rank-1 eigen-updater needs to move the previous
        # eigendecomposition to the new covariance without a fresh eigh.
        self._last_fold = (
            x.copy(),
            self.decay * previous_weight / self._weight,
            1.0 / self._weight,
            self.revision,
        )

    def update_matrix(self, snapshots: ArrayLike) -> None:
        """Fold in every column of an ``(M, N)`` snapshot matrix, in order."""
        x = np.asarray(snapshots, dtype=np.complex128)
        if x.ndim != 2 or x.shape[0] != self.num_antennas:
            raise EstimationError(
                f"snapshots must be ({self.num_antennas}, N), got {x.shape}"
            )
        # Inlined :meth:`update` without the per-column coercion and
        # shape check (the matrix is validated once above).  The
        # broadcast product is the same elementwise multiply
        # ``np.outer`` performs, and the column-by-column fold order is
        # preserved — sequential decayed rank-1 updates do not commute
        # in floating point, so this stays bit-identical to the loop
        # over :meth:`update`.
        if x.shape[1] == 1:
            # A single column is exactly one rank-1 fold; route through
            # :meth:`update` so the fold descriptor for the incremental
            # eigen path is recorded.
            self.update(x[:, 0])
            return
        weighted = self._weighted
        decay = self.decay
        weight = self._weight
        for n in range(x.shape[1]):
            column = x[:, n]
            if decay != 1.0:
                weighted *= decay
            weighted += column[:, None] * column.conj()[None, :]
            weight = decay * weight + 1.0
        self._weight = weight
        self.updates += x.shape[1]
        self.revision += x.shape[1]
        # A multi-column fold is not a rank-1 step; the incremental
        # eigen path must re-decompose from scratch for this pair.
        self._last_fold = None

    def covariance(self) -> ComplexArray:
        """The current Hermitian ``(M, M)`` estimate."""
        if self._weight <= 0.0:
            raise EstimationError("no snapshots folded in yet")
        r = self._weighted / self._weight
        return (r + r.conj().T) / 2.0

    @property
    def last_fold(self) -> Optional[Tuple[ComplexArray, float, float, int]]:
        """Descriptor of the most recent single-column fold, if any.

        ``(column, scale, gain, revision)`` such that the covariance at
        ``revision`` equals ``scale * R_prev + gain * column column^H``
        — exactly the scale-plus-rank-1 step
        :func:`repro.dsp.incremental.scaled_rank_one_eigh` consumes.
        ``None`` after a multi-column fold or a rollback, which forces
        the consumer back to a full eigendecomposition.
        """
        return self._last_fold

    def state_snapshot(self) -> Tuple[ComplexArray, float, int, int]:
        """Copy of the mutable accumulator state, for transactional updates.

        The streaming runner snapshots every pair before a speculative
        batched window so a failure can roll the bank back and replay
        the reference per-tag loop with its exact failure semantics.
        """
        return self._weighted.copy(), self._weight, self.updates, self.revision

    def state_restore(self, state: Tuple[ComplexArray, float, int, int]) -> None:
        """Adopt a snapshot taken by :meth:`state_snapshot`.

        The revision is *not* rolled back with the content: it advances
        past both its current value and the snapshot's, so a revision
        number is never associated with two different accumulator
        states and every revision-keyed cache entry stays trustworthy
        across a rollback-and-replay cycle.
        """
        weighted, weight, updates, revision = state
        self._weighted = weighted.copy()
        self._weight = weight
        self.updates = updates
        self.revision = max(self.revision, revision) + 1
        self._last_fold = None


@dataclass
class CovarianceBank:
    """Per-(reader, tag) :class:`EwCovariance` store for a whole stream."""

    decay: float = 1.0
    _pairs: Dict[Tuple[str, str], EwCovariance] = field(default_factory=dict)

    def pair(self, reader_name: str, epc: str, num_antennas: int) -> EwCovariance:
        """Get-or-create the estimator of one (reader, tag) pair."""
        key = (reader_name, epc)
        existing = self._pairs.get(key)
        if existing is None:
            existing = EwCovariance(num_antennas, self.decay)
            self._pairs[key] = existing
        return existing

    def pair_if_tracked(
        self, reader_name: str, epc: str
    ) -> Optional[EwCovariance]:
        """The estimator of one pair, or ``None`` when never updated."""
        return self._pairs.get((reader_name, epc))

    def covariance(self, reader_name: str, epc: str) -> ComplexArray:
        """The current estimate of one pair (must have been updated)."""
        key = (reader_name, epc)
        if key not in self._pairs:
            raise EstimationError(
                f"no covariance tracked for reader {reader_name!r} / tag {epc!r}"
            )
        return self._pairs[key].covariance()

    def __len__(self) -> int:
        return len(self._pairs)
