"""Retention policies over stream artefact directories.

A continuous deployment accretes files: read recordings
(``dwatch-reads``), checkpoints (``dwatch-checkpoint``) and fix logs
(``dwatch-fixes``) all grow without bound unless something ages them
out.  This module is that something — ``repro retain DIR`` applies a
:class:`RetentionPolicy` combining three independent bounds:

* **age** — artefacts older than ``max_age_s`` expire;
* **total size** — newest-first, artefacts are kept until the running
  total would exceed ``max_total_bytes``;
* **count** — at most ``max_count`` artefacts survive, newest first.

Two safety properties are deliberate:

1. **Only our own files.**  The scanner identifies artefacts by the
   ``kind`` tag every repro JSONL/JSON format writes in its header; a
   foreign file in the directory — whatever its extension — is never
   a deletion candidate.
2. **Dry-run by default.**  Planning (:func:`plan_retention`) is pure:
   it returns what *would* be deleted and why.  Only
   :func:`apply_retention` (the CLI's ``--apply``) touches the disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import ConfigurationError, RetentionError

#: Header ``kind`` tags retention recognises as its own artefacts.
RETAINABLE_KINDS: Tuple[str, ...] = (
    "dwatch-reads",
    "dwatch-checkpoint",
    "dwatch-fixes",
)

#: How much of a file the kind sniffer reads.  Every repro format puts
#: its header on line 1, well inside this.
_SNIFF_BYTES = 4096

#: Reasons a planned deletion can carry.
DELETE_REASONS: Tuple[str, ...] = ("expired", "over-size", "over-count")

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RetentionPolicy:
    """Bounds on what an artefact directory may hold.

    Every field is optional; an unset bound never deletes anything.
    At least one must be set for the policy to be :attr:`bounded`.
    """

    max_age_s: Optional[float] = None
    max_total_bytes: Optional[int] = None
    max_count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_age_s is not None and self.max_age_s < 0:
            raise ConfigurationError("max_age_s cannot be negative")
        if self.max_total_bytes is not None and self.max_total_bytes < 0:
            raise ConfigurationError("max_total_bytes cannot be negative")
        if self.max_count is not None and self.max_count < 0:
            raise ConfigurationError("max_count cannot be negative")

    @property
    def bounded(self) -> bool:
        """Whether this policy can ever delete anything."""
        return (
            self.max_age_s is not None
            or self.max_total_bytes is not None
            or self.max_count is not None
        )


@dataclass(frozen=True)
class Artefact:
    """One recognised file in an artefact directory."""

    path: Path
    kind: str
    size_bytes: int
    modified_s: float


@dataclass(frozen=True)
class PlannedDeletion:
    """One artefact the policy would remove, and why."""

    artefact: Artefact
    reason: str


@dataclass(frozen=True)
class RetentionPlan:
    """The pure outcome of evaluating a policy against a directory."""

    keep: Tuple[Artefact, ...]
    delete: Tuple[PlannedDeletion, ...]

    @property
    def bytes_kept(self) -> int:
        """Total size of the surviving artefacts."""
        return sum(a.size_bytes for a in self.keep)

    @property
    def bytes_freed(self) -> int:
        """Total size the deletions would reclaim."""
        return sum(d.artefact.size_bytes for d in self.delete)


def sniff_kind(path: PathLike) -> Optional[str]:
    """The artefact ``kind`` of a file, or ``None`` for foreign files.

    Reads the first few KiB, takes the first line, and accepts only a
    JSON object whose ``kind`` is one of :data:`RETAINABLE_KINDS`.
    Checkpoints are one JSON document on a single line that routinely
    exceeds the sniff window, so when the window holds the truncated
    start of a JSON object the whole document is parsed instead.
    Anything else — binary data, foreign JSON, a truncated header —
    classifies as foreign and is therefore retained forever.
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(_SNIFF_BYTES)
    except OSError:
        return None
    first_line = head.split(b"\n", 1)[0]
    if not first_line.strip():
        return None
    try:
        header = json.loads(first_line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        if b"\n" in head or not first_line.lstrip().startswith(b"{"):
            return None
        header = _load_single_document(path)
        if header is None:
            return None
    if not isinstance(header, dict):
        return None
    kind = header.get("kind")
    if kind in RETAINABLE_KINDS:
        return str(kind)
    return None


def _load_single_document(path: PathLike) -> Optional[object]:
    """Parse a whole single-line JSON document, or ``None`` if foreign."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError, UnicodeDecodeError):
        return None


def scan_artefacts(directory: PathLike) -> List[Artefact]:
    """Every recognised artefact directly inside ``directory``.

    Sorted newest-first (path name breaks mtime ties, so the scan is
    deterministic on filesystems with coarse timestamps).  Raises
    :class:`~repro.errors.RetentionError` when the directory cannot be
    listed; unreadable or foreign *files* are silently skipped.
    """
    root = Path(directory)
    if not root.is_dir():
        raise RetentionError(f"not a directory: {str(root)!r}")
    artefacts: List[Artefact] = []
    try:
        entries = sorted(root.iterdir())
    except OSError as exc:
        raise RetentionError(
            f"cannot list artefact directory {str(root)!r}: {exc}"
        ) from exc
    for entry in entries:
        if not entry.is_file():
            continue
        kind = sniff_kind(entry)
        if kind is None:
            continue
        try:
            stat = entry.stat()
        except OSError:
            continue
        artefacts.append(
            Artefact(
                path=entry,
                kind=kind,
                size_bytes=int(stat.st_size),
                modified_s=float(stat.st_mtime),
            )
        )
    artefacts.sort(key=lambda a: (-a.modified_s, str(a.path)))
    return artefacts


def plan_retention(
    artefacts: List[Artefact],
    policy: RetentionPolicy,
    now_s: float,
) -> RetentionPlan:
    """Evaluate a policy: pure, no filesystem access.

    Age expiry applies first; the size and count caps then walk the
    survivors newest-first, so the most recent artefacts always win a
    budget conflict.
    """
    ordered = sorted(artefacts, key=lambda a: (-a.modified_s, str(a.path)))
    keep: List[Artefact] = []
    delete: List[PlannedDeletion] = []
    survivors: List[Artefact] = []
    for artefact in ordered:
        if (
            policy.max_age_s is not None
            and now_s - artefact.modified_s > policy.max_age_s
        ):
            delete.append(PlannedDeletion(artefact, "expired"))
        else:
            survivors.append(artefact)
    total_bytes = 0
    for position, artefact in enumerate(survivors):
        if policy.max_count is not None and position >= policy.max_count:
            delete.append(PlannedDeletion(artefact, "over-count"))
            continue
        if (
            policy.max_total_bytes is not None
            and total_bytes + artefact.size_bytes > policy.max_total_bytes
        ):
            delete.append(PlannedDeletion(artefact, "over-size"))
            continue
        total_bytes += artefact.size_bytes
        keep.append(artefact)
    return RetentionPlan(keep=tuple(keep), delete=tuple(delete))


def apply_retention(plan: RetentionPlan) -> List[Path]:
    """Delete every planned artefact; returns the removed paths.

    A file that vanished since planning is fine (the goal state is
    reached either way); a delete the filesystem refuses raises
    :class:`~repro.errors.RetentionError` after removing what it could.
    """
    removed: List[Path] = []
    errors: List[str] = []
    for planned in plan.delete:
        try:
            planned.artefact.path.unlink(missing_ok=True)
        except OSError as exc:
            errors.append(f"{planned.artefact.path}: {exc}")
            continue
        removed.append(planned.artefact.path)
    if errors:
        raise RetentionError(
            "could not delete " + "; ".join(errors)
        )
    return removed
