"""Supervised ingest: retry-with-backoff around flaky read sources.

Real readers drop off the network mid-run (LLRP session resets, switch
reboots, antenna-cable bumps).  The runner itself should not know how
to dial a reader back in — that is transport detail — but it also must
not die because one ``recv`` raised.  :func:`supervised_reads` wraps a
*source factory* and re-creates the source with exponential backoff
whenever it fails with a retryable error
(:class:`~repro.errors.SourceUnavailableError` or :class:`OSError`),
resetting the attempt budget after every successful read so a
long-lived session does not exhaust its retries on unrelated blips
hours apart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, SourceUnavailableError
from repro.stream.events import TagRead


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff schedule for source reconnects.

    Parameters
    ----------
    max_retries:
        Consecutive failed (re)connect attempts tolerated before the
        supervisor gives up and re-raises.
    base_delay_s:
        Sleep before the first retry.
    multiplier:
        Factor applied per further attempt.
    max_delay_s:
        Backoff ceiling.
    jitter:
        Fractional randomization of each delay: with jitter ``j`` and
        an ``rng`` supplied to :meth:`delay_for`, the delay is scaled
        by a uniform factor in ``[1 - j, 1 + j]``.  ``0`` (the
        default) keeps the schedule exact.  Jitter is what breaks the
        thundering herd after a server restart — without it, every
        publisher that lost its connection at the same instant redials
        on the identical schedule, and the reconnect spikes themselves
        re-overload the server.
    """

    max_retries: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.base_delay_s < 0.0:
            raise ConfigurationError("base_delay_s must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be at least 1")
        if self.max_delay_s < self.base_delay_s:
            raise ConfigurationError("max_delay_s must be >= base_delay_s")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be within [0, 1)")

    def delay_for(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Backoff before retry ``attempt`` (0-based), capped.

        With both ``jitter`` and ``rng`` set, the capped delay is
        scaled by a deterministic (seeded) uniform factor — different
        streams (per-deployment publishers) draw different schedules
        while each stream stays reproducible.
        """
        if attempt < 0:
            raise ConfigurationError("attempt must be non-negative")
        delay = min(
            self.base_delay_s * self.multiplier**attempt, self.max_delay_s
        )
        if self.jitter > 0.0 and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay


def supervised_reads(
    factory: Callable[[], Iterable[TagRead]],
    policy: RetryPolicy = RetryPolicy(),
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[TagRead]:
    """Yield reads from ``factory()``, rebuilding it on transient failure.

    ``factory`` is called to (re)open the source; the resulting iterable
    is drained until exhaustion (normal end of stream) or until it
    raises a retryable error.  On failure the supervisor sleeps per
    ``policy`` and calls ``factory`` again, resuming wherever the fresh
    source starts — dedup of replayed reads is the window assembler's
    job.  Any successful read resets the attempt counter; once
    ``policy.max_retries`` consecutive attempts fail, the last error is
    re-raised as :class:`~repro.errors.SourceUnavailableError`.

    ``sleep`` is injectable so tests (and simulated time) need not wait;
    ``rng`` feeds the policy's jitter (see :class:`RetryPolicy.jitter`).
    """
    attempt = 0
    while True:
        try:
            for read in factory():
                attempt = 0
                yield read
            return
        except (SourceUnavailableError, OSError) as exc:
            if attempt >= policy.max_retries:
                raise SourceUnavailableError(
                    f"source still failing after {policy.max_retries} "
                    f"retries: {exc}"
                ) from exc
            delay = policy.delay_for(attempt, rng=rng)
            attempt += 1
            obs.count("stream.source.retries")
            sleep(delay)
