"""The typed events flowing through the streaming engine.

A :class:`TagRead` is the ingest-side atom: one complex baseband sample
of one tag heard by one reader during one TDM antenna slot.  It is the
streaming twin of :class:`repro.rfid.llrp.TagReportData`, stripped to
the fields the online pipeline consumes — the active antenna is not
carried but derived from the event time via the reader's
:class:`~repro.rfid.hub.TdmSchedule`, exactly as a server reconstructs
it from LLRP timestamps.

A :class:`TrackFix` is the output-side atom: the localization result of
one snapshot window, smoothed through the constant-velocity tracker.
Every field is deterministic — wall-clock latency lives only in the
observability layer, so streaming output stays byte-identical whether
or not tracing is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.likelihood import LocationEstimate
from repro.geometry.point import Point

if TYPE_CHECKING:  # avoid the provenance -> events import cycle
    from repro.stream.provenance import FixProvenance


@dataclass(frozen=True)
class TagRead:
    """One backscatter sample from the endless read stream.

    Attributes
    ----------
    reader_name:
        The reader that heard the tag.
    epc:
        The tag's EPC identifier.
    time_s:
        Event time in seconds since the stream epoch.  Sweep index and
        antenna slot are both derived from this via the reader's TDM
        schedule.
    iq:
        The complex baseband sample (carrying RSSI and phase).
    """

    reader_name: str
    epc: str
    time_s: float
    iq: complex


#: The degradation ladder, healthiest first.  ``full`` — every reader
#: contributed healthy evidence; ``degraded`` — quarantined or missing
#: readers forced the likelihood product onto a surviving subset;
#: ``insufficient`` — fewer detecting readers than the configured
#: minimum-evidence threshold, so no position was attempted.
QUALITY_LEVELS: Tuple[str, ...] = ("full", "degraded", "insufficient")


@dataclass(frozen=True)
class FixQuality:
    """How trustworthy one fix is, given the fleet's health.

    Attributes
    ----------
    level:
        One of :data:`QUALITY_LEVELS`.
    confidence:
        Scalar in ``[0, 1]``: the healthy-reader fraction scaled by the
        evidence strength (the geometric-mean likelihood of the best
        estimate; halved when the fix is prediction-only, zero when no
        position was produced).
    active_readers:
        Readers whose evidence actually entered the likelihood product.
    healthy_readers:
        Readers not quarantined when the window closed.
    total_readers:
        Deployment size the two counts are measured against.
    quarantined:
        Names of the readers excluded from this fix, sorted.
    """

    level: str = "full"
    confidence: float = 1.0
    active_readers: int = 0
    healthy_readers: int = 0
    total_readers: int = 0
    quarantined: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """Whether this fix ran on anything less than the full fleet."""
        return self.level != "full"


@dataclass(frozen=True)
class TrackFix:
    """The localization output of one snapshot window.

    Attributes
    ----------
    index:
        The window's sequence number (event-time order).
    time_s:
        The window's closing edge in event time.
    position:
        The tracker-smoothed position, or ``None`` while no target has
        been acquired yet.
    raw_estimates:
        The unsmoothed per-window estimates (empty when nothing blocked
        a monitored path — target absent or inside a deadzone).
    predicted_only:
        ``True`` when this fix is carried purely by the tracker's
        motion model through a deadzone window.
    sweeps:
        Complete snapshot columns that fed the window's spectra.
    reads:
        Raw tag reads the window consumed.
    quality:
        Health-aware trust stamp (see :class:`FixQuality`); defaults to
        a full-quality stamp so replays of healthy streams stay
        unchanged.
    provenance:
        Optional audit record of what produced this fix (contributing
        readers, active faults, spectral path, checkpoint lineage; see
        :class:`repro.stream.provenance.FixProvenance`).  Metadata
        only: excluded from equality and repr so fixes compare by
        their observable output alone.
    """

    index: int
    time_s: float
    position: Optional[Point]
    raw_estimates: Tuple[LocationEstimate, ...] = ()
    predicted_only: bool = False
    sweeps: int = 0
    reads: int = 0
    quality: FixQuality = FixQuality()
    provenance: Optional["FixProvenance"] = field(
        default=None, compare=False, repr=False
    )

    @property
    def located(self) -> bool:
        """Whether this fix carries a usable position."""
        return self.position is not None
