"""Per-reader health tracking and the quarantine state machine.

A deployed fleet is never uniformly healthy: readers drop off LLRP,
hub elements die, PLL re-locks glitch phases.  The paper's likelihood
product (Eq. 15) multiplies every reader's evidence together, so one
reader feeding garbage quietly poisons every fix.  The tracker watches
each reader's contribution window by window and walks it through a
three-state ladder:

``healthy``
    Contributing evidence normally.
``degraded``
    Missed its last window(s); still trusted, but on notice.
``quarantined``
    Missed ``stale_windows`` consecutive windows (or kept violating
    contracts): its spectra are excluded from the likelihood product
    until it proves itself again.  Recovery requires
    ``recovery_windows`` consecutive contributing windows — a probation
    that also gives the exponentially-weighted covariance bank time to
    flush the stale outage-era estimate before the reader's evidence
    counts again.

Every transition and violation is surfaced through :mod:`repro.obs`
(counters ``stream.health.quarantines`` / ``.recoveries`` /
``.violations``, per-reader gauges ``stream.health.reader.<name>``)
and through the ``repro health`` CLI view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.stream.events import TagRead

#: Reader health states, healthiest first.
HEALTH_STATES = ("healthy", "degraded", "quarantined")


def _as_number(value: object) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    raise ConfigurationError(f"expected a number in health state, got {value!r}")


def _as_int(value: object) -> int:
    return int(_as_number(value))

#: Gauge values per state (1 healthy, 0 quarantined) so a metrics
#: snapshot shows the fleet at a glance.
_STATE_SCORE = {"healthy": 1.0, "degraded": 0.5, "quarantined": 0.0}


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds of the quarantine state machine.

    Parameters
    ----------
    stale_windows:
        Consecutive missed windows before a reader is quarantined.
    recovery_windows:
        Consecutive contributing windows a quarantined reader must
        deliver before it is trusted again.
    """

    stale_windows: int = 2
    recovery_windows: int = 2

    def __post_init__(self) -> None:
        if self.stale_windows < 1:
            raise ConfigurationError("stale_windows must be at least 1")
        if self.recovery_windows < 1:
            raise ConfigurationError("recovery_windows must be at least 1")


@dataclass
class ReaderHealth:
    """The lifetime health record of one reader."""

    name: str
    state: str = "healthy"
    reads: int = 0
    last_read_s: Optional[float] = None
    windows_seen: int = 0
    windows_contributed: int = 0
    violations: int = 0
    quarantines: int = 0
    recoveries: int = 0
    consecutive_missing: int = 0
    consecutive_present: int = 0

    @property
    def read_rate(self) -> float:
        """Reads per observed window (0 before any window closes)."""
        if self.windows_seen == 0:
            return 0.0
        return self.reads / self.windows_seen

    @property
    def quarantined(self) -> bool:
        """Whether this reader's evidence is currently excluded."""
        return self.state == "quarantined"


class HealthTracker:
    """Tracks reader health across a stream's windows.

    The runner feeds it two signals: every accepted read
    (:meth:`note_read`) and, per closed window, which readers
    contributed usable spectra (:meth:`observe_window`) plus any
    per-reader processing violations (:meth:`note_violation`).  From
    those it maintains the quarantine set the runner filters evidence
    by.
    """

    def __init__(
        self,
        reader_names: Iterable[str],
        config: Optional[HealthConfig] = None,
    ) -> None:
        names = list(reader_names)
        if not names:
            raise ConfigurationError("health tracker needs at least one reader")
        self.config = config or HealthConfig()
        self._readers: Dict[str, ReaderHealth] = {
            name: ReaderHealth(name=name) for name in sorted(names)
        }

    @classmethod
    def for_readers(
        cls,
        readers: Mapping[str, object],
        config: Optional[HealthConfig] = None,
    ) -> "HealthTracker":
        """Build from any name-keyed reader mapping (e.g. ``DWatch.readers``)."""
        return cls(readers.keys(), config)

    @property
    def total(self) -> int:
        """Number of tracked readers."""
        return len(self._readers)

    @property
    def healthy_count(self) -> int:
        """Readers currently *not* quarantined (healthy or degraded)."""
        return sum(1 for r in self._readers.values() if not r.quarantined)

    def note_read(self, read: TagRead) -> None:
        """Account one accepted read (rate + staleness bookkeeping)."""
        record = self._readers.get(read.reader_name)
        if record is None:
            return
        record.reads += 1
        if record.last_read_s is None or read.time_s > record.last_read_s:
            record.last_read_s = read.time_s

    def note_reads(self, reads: Iterable[TagRead]) -> None:
        """:meth:`note_read` over a whole drained batch.

        Same bookkeeping, one method call per batch instead of per
        read — the runner's poll loop touches every read exactly once.
        """
        readers = self._readers
        for read in reads:
            record = readers.get(read.reader_name)
            if record is None:
                continue
            record.reads += 1
            if record.last_read_s is None or read.time_s > record.last_read_s:
                record.last_read_s = read.time_s

    def note_violation(self, reader_name: str, error: Exception) -> None:
        """Account one per-reader processing failure (contract, DSP...).

        The violating window also counts as missed for the reader (the
        runner leaves it out of ``contributed``), so repeated
        violations walk the reader into quarantine through the same
        staleness path an outage does.
        """
        record = self._readers.get(reader_name)
        if record is None:
            return
        record.violations += 1
        obs.count("stream.health.violations")

    def observe_window(self, contributed: Iterable[str]) -> None:
        """Advance the state machine by one closed window.

        ``contributed`` names the readers that delivered usable spectra
        for the window; every other tracked reader is counted missing.
        """
        present = set(contributed)
        for record in self._readers.values():
            record.windows_seen += 1
            if record.name in present:
                self._mark_present(record)
            else:
                self._mark_missing(record)
            obs.gauge(
                f"stream.health.reader.{record.name}",
                _STATE_SCORE[record.state],
            )

    def quarantined(self) -> FrozenSet[str]:
        """Names of the readers currently excluded from evidence."""
        return frozenset(
            name for name, r in self._readers.items() if r.quarantined
        )

    def report(self) -> List[ReaderHealth]:
        """Per-reader records, sorted by name (stable for CLI output)."""
        return [self._readers[name] for name in sorted(self._readers)]

    def state_of(self, reader_name: str) -> str:
        """Current state of one reader."""
        record = self._readers.get(reader_name)
        if record is None:
            raise ConfigurationError(f"unknown reader {reader_name!r}")
        return record.state

    def export_state(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready per-reader state, for streaming checkpoints."""
        return {
            name: {
                "state": r.state,
                "reads": r.reads,
                "last_read_s": r.last_read_s,
                "windows_seen": r.windows_seen,
                "windows_contributed": r.windows_contributed,
                "violations": r.violations,
                "quarantines": r.quarantines,
                "recoveries": r.recoveries,
                "consecutive_missing": r.consecutive_missing,
                "consecutive_present": r.consecutive_present,
            }
            for name, r in self._readers.items()
        }

    def import_state(self, state: Mapping[str, Mapping[str, object]]) -> None:
        """Restore per-reader state exported by :meth:`export_state`."""
        for name, fields_ in state.items():
            record = self._readers.get(name)
            if record is None:
                raise ConfigurationError(
                    f"checkpointed health state names unknown reader {name!r}"
                )
            record.state = str(fields_["state"])
            if record.state not in HEALTH_STATES:
                raise ConfigurationError(
                    f"unknown health state {record.state!r} for {name!r}"
                )
            record.reads = _as_int(fields_["reads"])
            raw_last = fields_["last_read_s"]
            record.last_read_s = (
                None if raw_last is None else float(_as_number(raw_last))
            )
            record.windows_seen = _as_int(fields_["windows_seen"])
            record.windows_contributed = _as_int(fields_["windows_contributed"])
            record.violations = _as_int(fields_["violations"])
            record.quarantines = _as_int(fields_["quarantines"])
            record.recoveries = _as_int(fields_["recoveries"])
            record.consecutive_missing = _as_int(fields_["consecutive_missing"])
            record.consecutive_present = _as_int(fields_["consecutive_present"])

    def _mark_present(self, record: ReaderHealth) -> None:
        record.windows_contributed += 1
        record.consecutive_missing = 0
        record.consecutive_present += 1
        if record.quarantined:
            if record.consecutive_present >= self.config.recovery_windows:
                record.state = "healthy"
                record.recoveries += 1
                obs.count("stream.health.recoveries")
        elif record.state == "degraded":
            record.state = "healthy"

    def _mark_missing(self, record: ReaderHealth) -> None:
        record.consecutive_present = 0
        record.consecutive_missing += 1
        if record.quarantined:
            return
        if record.consecutive_missing >= self.config.stale_windows:
            record.state = "quarantined"
            record.quarantines += 1
            obs.count("stream.health.quarantines")
        else:
            record.state = "degraded"
