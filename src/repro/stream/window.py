"""Event-time window assembly: from loose tag reads to snapshot windows.

Reads arrive interleaved across readers, tags and TDM antenna slots,
and — over a real network — slightly out of order.  The assembler
groups them back into the ``(M, N)`` snapshot matrices the spectral
chain consumes:

* **Sweep reconstruction** — each read's sweep index and antenna slot
  are derived from its event time via the reader's
  :class:`~repro.rfid.hub.TdmSchedule` (the final slot is
  end-inclusive, so a read stamped exactly on the sweep boundary still
  lands in the sweep).  A sweep with all ``M`` antennas present becomes
  one snapshot column; torn sweeps are counted and discarded.
* **Windowing** — sweeps are grouped into fixed-length event-time
  windows, count-based (``sweeps_per_window`` sweeps, the paper's 10
  packets per fix) or time-based (an explicit ``window_duration_s``).
* **Lateness** — a window closes only once the watermark (the largest
  event time seen, minus the lateness bound) passes its end, so
  out-of-order reads within the bound still make their window.  Reads
  later than that are counted and dropped — never silently reordered
  into an already-emitted window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro import obs
from repro.constants import PACKETS_PER_FIX
from repro.errors import ConfigurationError, StreamError
from repro.rfid.hub import TdmSchedule
from repro.rfid.reader import Reader
from repro.sim.measurement import Measurement
from repro.stream.events import TagRead

#: Module-local alias saving an attribute lookup in the per-read loop.
_floor = math.floor

#: Relative nudge applied before flooring times into sweep/window bins.
#: Timestamps are sums of slot multiples computed in floating point, so
#: a boundary read can sit a few ulps *below* its bin edge; the nudge
#: (one part in 10^9 of a bin — ten orders of magnitude above ulp noise,
#: five below a slot) snaps it back without ever moving an interior
#: read across a bin.
_TIME_EPS = 1e-9


def sweep_slot(schedule: TdmSchedule, time_s: float) -> Tuple[int, Optional[int]]:
    """Map an event time onto the TDM grid: ``(sweep_index, antenna)``.

    Applies the same edge-clamping the assembler uses, so boundary
    timestamps land in their sweep.  ``antenna`` is ``None`` only for
    a pathological schedule whose slots do not tile the sweep — the
    caller decides whether that is a drop or an error.  Shared with
    :mod:`repro.faults`, which must agree with the assembler about
    which antenna a read belongs to.
    """
    duration = schedule.duration
    sweep_index = int(math.floor(time_s / duration + _TIME_EPS))
    offset = time_s - sweep_index * duration
    # Clamp round-off at the sweep edges: the final slot of a sweep is
    # end-inclusive (see TdmSchedule.antenna_at), the first starts at
    # exactly zero.
    offset = min(max(offset, 0.0), duration)
    antenna = schedule.try_antenna_at(
        min(offset + duration * _TIME_EPS, duration)
    )
    return sweep_index, antenna


@dataclass(frozen=True)
class WindowConfig:
    """Shape of the snapshot windows the assembler emits.

    Parameters
    ----------
    sweeps_per_window:
        Count-based window length: how many full antenna sweeps feed
        one fix (the paper collects 10 backscatter packets per fix).
    window_duration_s:
        Time-based window length; overrides the count-based length
        when set.
    lateness_s:
        How far behind the watermark an out-of-order read may arrive
        and still be admitted.  Defaults to one sweep duration.
    """

    sweeps_per_window: int = PACKETS_PER_FIX
    window_duration_s: Optional[float] = None
    lateness_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.sweeps_per_window < 1:
            raise ConfigurationError("a window needs at least one sweep")
        if self.window_duration_s is not None and self.window_duration_s <= 0.0:
            raise ConfigurationError("window duration must be positive")
        if self.lateness_s is not None and self.lateness_s < 0.0:
            raise ConfigurationError("lateness bound cannot be negative")


@dataclass(frozen=True)
class SnapshotWindow:
    """One closed window, ready for spectral estimation.

    ``measurement`` holds the reassembled per-(reader, tag) snapshot
    matrices — the same shape the batch pipeline consumes, so every
    downstream stage is shared.
    """

    index: int
    start_s: float
    end_s: float
    measurement: Measurement
    sweeps: int
    reads: int
    torn_sweeps: int


@dataclass
class _PendingWindow:
    """Accumulating state of one not-yet-closed window."""

    reads: int = 0
    #: (reader, epc) -> sweep index -> antenna -> sample
    cells: Dict[Tuple[str, str], Dict[int, Dict[int, complex]]] = field(
        default_factory=dict
    )


class WindowAssembler:
    """Groups a read stream into event-time snapshot windows.

    Parameters
    ----------
    schedules:
        Per-reader TDM schedules (sweep timing source).
    config:
        Window shape; defaults mirror the paper's 10-sweep fix.
    """

    def __init__(
        self,
        schedules: Mapping[str, TdmSchedule],
        config: Optional[WindowConfig] = None,
    ) -> None:
        if not schedules:
            raise ConfigurationError("window assembler needs at least one reader")
        for name, schedule in schedules.items():
            if schedule.duration <= 0.0:
                raise ConfigurationError(
                    f"reader {name!r} has an empty TDM schedule"
                )
        self.schedules = dict(schedules)
        #: Per-reader hot-path constants consumed by :meth:`push` — the
        #: sweep duration (a recomputing property on the frozen
        #: schedule) and the bound slot lookup.  Schedules never change
        #: after construction, so this is computed once.
        self._hot: Dict[str, Tuple[float, Callable[[float], Optional[int]]]] = {
            name: (schedule.duration, schedule.try_antenna_at)
            for name, schedule in self.schedules.items()
        }
        self.config = config or WindowConfig()
        sweep = max(schedule.duration for schedule in self.schedules.values())
        self.window_s = (
            self.config.window_duration_s
            if self.config.window_duration_s is not None
            else self.config.sweeps_per_window * sweep
        )
        self.lateness_s = (
            self.config.lateness_s if self.config.lateness_s is not None else sweep
        )
        self._pending: Dict[int, _PendingWindow] = {}
        self._max_time: Optional[float] = None
        self._emitted_through = -1
        #: Earliest end time among pending windows; lets push() skip the
        #: per-read readiness scan until the watermark can actually
        #: close something.  Derived state — recomputed after every
        #: emission and on checkpoint restore.
        self._min_pending_end: Optional[float] = None
        self.late_reads = 0
        self.torn_sweeps = 0
        self.duplicate_reads = 0

    @classmethod
    def for_readers(
        cls,
        readers: Mapping[str, Reader],
        config: Optional[WindowConfig] = None,
    ) -> "WindowAssembler":
        """Build an assembler from reader objects (hub sweep schedules)."""
        return cls(
            {name: reader.hub.sweep_schedule() for name, reader in readers.items()},
            config,
        )

    @property
    def watermark(self) -> Optional[float]:
        """Largest event time seen minus the lateness bound."""
        if self._max_time is None:
            return None
        return self._max_time - self.lateness_s

    def push(self, read: TagRead) -> List[SnapshotWindow]:
        """Ingest one read; returns any windows it closed (often none).

        This is the per-read hot loop of the whole streaming engine
        (hundreds of reads per fix), so :func:`sweep_slot` and the
        window bookkeeping are inlined here with the per-reader sweep
        duration precomputed — kept in sync with :func:`sweep_slot`,
        which remains the shared reference mapping.
        """
        hot = self._hot.get(read.reader_name)
        if hot is None:
            raise StreamError(
                "read references an unknown reader",
                reader=read.reader_name,
                epc=read.epc,
                time_s=read.time_s,
            )
        time_s = read.time_s
        if time_s < 0.0:
            raise StreamError(
                "read carries a negative event time",
                reader=read.reader_name,
                epc=read.epc,
                time_s=time_s,
            )
        window_s = self.window_s
        index = int(_floor(time_s / window_s + _TIME_EPS))
        if index <= self._emitted_through:
            # Beyond the lateness bound: its window has already been
            # emitted.  Dropping (and counting) beats silently mutating
            # history a consumer has acted on.
            self.late_reads += 1
            obs.count("stream.window.late_reads")
            return []
        duration, try_antenna_at = hot
        # Inlined sweep_slot(schedule, time_s); branch clamps produce
        # the same values as its min/max calls.
        sweep_index = int(_floor(time_s / duration + _TIME_EPS))
        offset = time_s - sweep_index * duration
        if offset < 0.0:
            offset = 0.0
        elif offset > duration:
            offset = duration
        probe = offset + duration * _TIME_EPS
        if probe > duration:
            probe = duration
        antenna = try_antenna_at(probe)
        if antenna is None:
            raise StreamError(
                "read falls outside every TDM slot of its reader",
                reader=read.reader_name,
                epc=read.epc,
                time_s=time_s,
            )
        window = self._pending.get(index)
        if window is None:
            window = self._pending[index] = _PendingWindow()
            end_s = (index + 1) * window_s
            if self._min_pending_end is None or end_s < self._min_pending_end:
                self._min_pending_end = end_s
        window.reads += 1
        # get-then-insert instead of setdefault: the default dict
        # argument would be allocated on every read, hit or miss.
        key = (read.reader_name, read.epc)
        per_sweep = window.cells.get(key)
        if per_sweep is None:
            per_sweep = window.cells[key] = {}
        column = per_sweep.get(sweep_index)
        if column is None:
            column = per_sweep[sweep_index] = {}
        if antenna in column:
            self.duplicate_reads += 1
            obs.count("stream.window.duplicate_reads")
        column[antenna] = read.iq
        max_time = self._max_time
        if max_time is None or time_s > max_time:
            self._max_time = max_time = time_s
        # Fast path for the by-far common case: nothing can close yet.
        min_pending_end = self._min_pending_end
        if min_pending_end is None or min_pending_end > max_time - self.lateness_s:
            return []
        return self._emit_ready()

    def flush(self) -> List[SnapshotWindow]:
        """Close and emit every pending window (end of stream)."""
        emitted = [
            self._close(index) for index in sorted(self._pending)
        ]
        self._pending.clear()
        self._min_pending_end = None
        if emitted:
            self._emitted_through = max(w.index for w in emitted)
        return [w for w in emitted if w.sweeps > 0]

    def _emit_ready(self) -> List[SnapshotWindow]:
        max_time = self._max_time
        if max_time is None:
            return []
        watermark = max_time - self.lateness_s
        # Fast path for the by-far common case: nothing can close yet.
        min_pending_end = self._min_pending_end
        if min_pending_end is None or min_pending_end > watermark:
            return []
        ready = sorted(
            index
            for index in self._pending
            if (index + 1) * self.window_s <= watermark
        )
        emitted: List[SnapshotWindow] = []
        for index in ready:
            window = self._close(index)
            del self._pending[index]
            self._emitted_through = max(self._emitted_through, index)
            if window.sweeps > 0:
                emitted.append(window)
        if ready:
            self._min_pending_end = min(
                ((index + 1) * self.window_s for index in self._pending),
                default=None,
            )
        return emitted

    def _close(self, index: int) -> SnapshotWindow:
        pending = self._pending[index]
        measurement = Measurement()
        torn = 0
        max_columns = 0
        for (reader_name, epc), per_sweep in sorted(pending.cells.items()):
            num_antennas = len(self.schedules[reader_name].slots)
            columns: List[List[complex]] = []
            for sweep_index in sorted(per_sweep):
                column = per_sweep[sweep_index]
                if len(column) != num_antennas:
                    torn += 1
                    continue
                columns.append([column[m] for m in range(num_antennas)])
            if not columns:
                continue
            matrix = np.asarray(columns, dtype=np.complex128).T  # (M, N)
            measurement.snapshots.setdefault(reader_name, {})[epc] = matrix
            max_columns = max(max_columns, matrix.shape[1])
        if torn:
            self.torn_sweeps += torn
            obs.count("stream.window.torn_sweeps", torn)
        obs.count("stream.window.closed")
        return SnapshotWindow(
            index=index,
            start_s=index * self.window_s,
            end_s=(index + 1) * self.window_s,
            measurement=measurement,
            sweeps=max_columns,
            reads=pending.reads,
            torn_sweeps=torn,
        )
