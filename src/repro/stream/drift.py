"""Slow baseline adaptation so long runs survive environment change.

The empty-area baseline spectra are captured once, but a monitored
space does not stay put: doors open, chairs move, temperature walks the
reflector phases.  Hours later the "empty" spectra no longer match the
baseline and every fix rains false blocking events — the
environment-change failure mode the batch pipeline simply cannot
encounter.

The tracker closes the loop with an EWMA toward the current online
spectra, guarded two ways:

* **Freeze while detecting.**  A window with any blocking evidence is
  *not* empty-area data; folding it in would teach the baseline that
  the target's shadow is normal and blind the detector to a loiterer.
  Detection windows freeze the update entirely.
* **Slow constant.**  ``alpha`` is small (minutes of windows to
  converge), so a brief undetected target biases the baseline by only
  ``alpha`` of its shadow before detection or departure.

Every baseline capture in the set (reference and stability
confirmations alike) receives the same update, keeping the peak
stability screen's inter-capture differences meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.baseline import SpectrumSet
from repro.errors import ConfigurationError


@dataclass
class BaselineDriftTracker:
    """EWMA baseline adaptation with a freeze-while-detecting guard.

    Parameters
    ----------
    alpha:
        Weight of the newest empty-area spectra in ``[0, 1)``; ``0``
        disables adaptation entirely.
    """

    alpha: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha < 1.0:
            raise ConfigurationError(f"drift alpha must be in [0, 1), got {self.alpha}")
        self.applied_updates = 0
        self.frozen_updates = 0

    @property
    def enabled(self) -> bool:
        """Whether updates can ever be applied."""
        return self.alpha > 0.0

    def update(
        self,
        baseline: Sequence[SpectrumSet],
        online: SpectrumSet,
        detecting: bool,
    ) -> bool:
        """Fold one window's spectra into the baseline; returns whether applied.

        ``detecting`` must be ``True`` when the window produced any
        blocking evidence — the update is then frozen (counted, not
        applied).
        """
        if not self.enabled:
            return False
        if detecting:
            self.frozen_updates += 1
            obs.count("stream.drift.frozen")
            return False
        for spectrum_set in baseline:
            self._blend(spectrum_set, online)
        self.applied_updates += 1
        obs.count("stream.drift.applied")
        return True

    def _blend(self, baseline: SpectrumSet, online: SpectrumSet) -> None:
        for reader_name, per_tag in baseline.spectra.items():
            online_tags = online.spectra.get(reader_name)
            if online_tags is None:
                continue
            for epc, spectrum in per_tag.items():
                fresh = online_tags.get(epc)
                if fresh is None:
                    continue
                resampled = np.interp(
                    spectrum.angles, fresh.angles, fresh.values
                )
                # Out-of-place on purpose: downstream caches (detector
                # screening, likelihood tables) key on the identity of
                # the values array, so a blend must install a *new*
                # array rather than mutate the old one in place.  The
                # arithmetic sequence matches the previous in-place
                # version bit for bit.
                values = spectrum.values * (1.0 - self.alpha)
                values += self.alpha * resampled
                spectrum.values = values
