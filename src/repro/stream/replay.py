"""Record and replay read streams as versioned JSONL files.

A recording is one JSON object per line:

* **Line 1 — the header.**  ``{"schema": 1, "kind": "dwatch-reads",
  "environment": ..., "seed": ..., "description": ...}``.  The schema
  marker lets future revisions migrate old recordings; ``environment``
  and ``seed`` let ``repro stream --replay`` rebuild the matching
  scene, calibration and baseline deterministically.
* **Every further line — one read.**  ``{"t": <time_s>, "r":
  <reader>, "e": <epc>, "i": [<re>, <im>]}`` in stream order.

Replay is strict about failure: a missing file, a wrong header, an
unknown schema, a missing field or a truncated final line (the classic
crash-mid-write artefact) all raise
:class:`~repro.errors.RecordingError` with the offending line number —
never a bare :class:`json.JSONDecodeError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Dict, Iterable, Iterator, Optional, Union

from repro.errors import RecordingError
from repro.stream.events import TagRead

#: Format marker so future revisions can migrate old recordings.
RECORDING_SCHEMA = 1

#: The ``kind`` tag distinguishing read streams from other JSONL files.
RECORDING_KIND = "dwatch-reads"

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RecordingHeader:
    """The first line of a recording."""

    schema: int = RECORDING_SCHEMA
    environment: Optional[str] = None
    seed: Optional[int] = None
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """The JSON object written as line 1."""
        record: Dict[str, Any] = {"schema": self.schema, "kind": RECORDING_KIND}
        if self.environment is not None:
            record["environment"] = self.environment
        if self.seed is not None:
            record["seed"] = self.seed
        if self.description:
            record["description"] = self.description
        return record


def write_recording(
    path: PathLike,
    reads: Iterable[TagRead],
    header: Optional[RecordingHeader] = None,
) -> int:
    """Write a recording; returns the number of reads written."""
    meta = header or RecordingHeader()
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(meta.to_dict(), sort_keys=True) + "\n")
        for read in reads:
            # Both components serialized — no complex->real narrowing.
            value = complex(read.iq)
            record = {
                "t": read.time_s,
                "r": read.reader_name,
                "e": read.epc,
                "i": [value.real, value.imag],
            }
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def read_header(path: PathLike) -> RecordingHeader:
    """Parse and validate a recording's header line."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
    except OSError as exc:
        raise RecordingError(f"cannot open recording {str(path)!r}: {exc}") from exc
    if not first.strip():
        raise RecordingError(f"recording {str(path)!r} is empty (no header line)")
    return _parse_header(first, path)


def read_recording(path: PathLike) -> Iterator[TagRead]:
    """Yield every read of a recording, lazily, in file order.

    Raises
    ------
    RecordingError
        On a missing file, bad header, unknown schema, malformed or
        truncated line — identifying the line number.  Raised lazily
        from the generator for body lines, eagerly for the header.
    """
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise RecordingError(f"cannot open recording {str(path)!r}: {exc}") from exc
    return _read_body(handle, path)


def _parse_header(line: str, path: PathLike) -> RecordingHeader:
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise RecordingError(
            f"recording {str(path)!r} line 1: header is not valid JSON "
            "(truncated or foreign file?)"
        ) from exc
    if not isinstance(data, dict) or data.get("kind") != RECORDING_KIND:
        raise RecordingError(
            f"recording {str(path)!r} line 1: not a {RECORDING_KIND!r} header"
        )
    if data.get("schema") != RECORDING_SCHEMA:
        raise RecordingError(
            f"recording {str(path)!r}: unsupported schema {data.get('schema')!r} "
            f"(this build reads schema {RECORDING_SCHEMA})"
        )
    seed = data.get("seed")
    return RecordingHeader(
        schema=int(data["schema"]),
        environment=data.get("environment"),
        seed=int(seed) if seed is not None else None,
        description=str(data.get("description", "")),
    )


def _read_body(handle: IO[str], path: PathLike) -> Iterator[TagRead]:
    with handle:
        first = handle.readline()
        if not first.strip():
            raise RecordingError(
                f"recording {str(path)!r} is empty (no header line)"
            )
        _parse_header(first, path)
        for number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
                yield TagRead(
                    reader_name=str(data["r"]),
                    epc=str(data["e"]),
                    time_s=float(data["t"]),
                    iq=complex(float(data["i"][0]), float(data["i"][1])),
                )
            except (ValueError, KeyError, TypeError, IndexError) as exc:
                raise RecordingError(
                    f"recording {str(path)!r} line {number}: malformed or "
                    f"truncated read record ({exc})"
                ) from exc
