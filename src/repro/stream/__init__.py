"""repro.stream — the online streaming engine for continuous tracking.

D-Watch is deployed as a continuous monitor: tag reads arrive as an
endless event stream from TDM antenna sweeps, and the paper's tracking
experiments (Figs. 19/21) imply sustained fix rates rather than
one-shot batch captures.  This package turns the batch pipeline into
that online service:

* :mod:`repro.stream.events` — the typed :class:`TagRead` ingest event
  and the :class:`TrackFix` output record with its :class:`FixQuality`
  stamp.
* :mod:`repro.stream.queue` — a bounded ingest queue with explicit
  backpressure policies (``block``, ``drop-oldest``, ``drop-newest``),
  a counter for every drop, and a closed state so shutdown never
  strands a blocked producer.
* :mod:`repro.stream.window` — the event-time window assembler that
  groups reads by reader/tag/sweep into snapshot windows, with a
  lateness bound for out-of-order arrivals.
* :mod:`repro.stream.covariance` — exponentially-weighted rank-1
  covariance updates per (reader, tag) and the covariance-domain
  P-MUSIC spectrum, so spectra refresh per window without recomputing
  from scratch.
* :mod:`repro.stream.drift` — slow EWMA adaptation of the empty-area
  baseline spectra with a freeze-while-detecting guard.
* :mod:`repro.stream.health` — per-reader health tracking and the
  quarantine/recovery state machine behind graceful degradation.
* :mod:`repro.stream.supervise` — retry-with-backoff supervision of
  flaky read sources.
* :mod:`repro.stream.checkpoint` — JSON checkpoint/restore of a live
  runner (covariance bank, windows, tracker, baseline, health), proven
  bit-identical across a crash-resume.
* :mod:`repro.stream.replay` — versioned JSONL recording and replay of
  read streams.
* :mod:`repro.stream.provenance` — the per-fix audit record (readers,
  faults, spectral path, checkpoint lineage), the versioned fix-log
  JSONL format behind ``repro stream --fix-log`` / ``repro
  provenance``, and the bounded recent-fix ring the ops endpoint
  serves.
* :mod:`repro.stream.retention` — TTL/size/count retention policies
  over recording and checkpoint directories (``repro retain``).
* :mod:`repro.stream.synthetic` — a synthetic read-stream driver over
  :mod:`repro.sim.measurement` for offline runs and benchmarks.
* :mod:`repro.stream.runner` — :class:`StreamRunner`, the pull-based
  loop wiring ingest -> windows -> evidence -> localize into a stream
  of fixes, instrumented through :mod:`repro.obs`.

Fault injection lives in its own package, :mod:`repro.faults`.  See
``docs/STREAMING.md`` for the architecture and the replay format, and
``docs/ROBUSTNESS.md`` for the fault model and degradation ladder.
"""

from repro.stream.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA,
    INTEGRITY_KEY,
    QUARANTINE_SUFFIX,
    checkpoint_history_dir,
    checkpoint_id,
    checkpoint_state,
    durable_write_json,
    load_checkpoint,
    quarantine_checkpoint,
    restore_state,
    save_checkpoint,
    seal_state,
)
from repro.stream.covariance import CovarianceBank, EwCovariance
from repro.stream.drift import BaselineDriftTracker
from repro.stream.events import QUALITY_LEVELS, FixQuality, TagRead, TrackFix
from repro.stream.health import (
    HEALTH_STATES,
    HealthConfig,
    HealthTracker,
    ReaderHealth,
)
from repro.stream.provenance import (
    FIXLOG_KIND,
    FIXLOG_SCHEMA,
    READER_ROLES,
    SPECTRAL_PATHS,
    FixLogHeader,
    FixLogWriter,
    FixProvenance,
    LoggedFix,
    ProvenanceRing,
    ReaderProvenance,
    read_fix_log,
    read_fix_log_header,
    write_fix_log,
)
from repro.stream.queue import DROP_POLICIES, BoundedReadQueue
from repro.stream.retention import (
    RETAINABLE_KINDS,
    Artefact,
    PlannedDeletion,
    RetentionPlan,
    RetentionPolicy,
    apply_retention,
    plan_retention,
    scan_artefacts,
    sniff_kind,
)
from repro.stream.replay import (
    RecordingHeader,
    read_header,
    read_recording,
    write_recording,
)
from repro.stream.runner import StreamConfig, StreamRunner
from repro.stream.supervise import RetryPolicy, supervised_reads
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads
from repro.stream.window import (
    SnapshotWindow,
    WindowAssembler,
    WindowConfig,
    sweep_slot,
)

__all__ = [
    "Artefact",
    "BaselineDriftTracker",
    "BoundedReadQueue",
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA",
    "CovarianceBank",
    "INTEGRITY_KEY",
    "QUARANTINE_SUFFIX",
    "DROP_POLICIES",
    "EwCovariance",
    "FIXLOG_KIND",
    "FIXLOG_SCHEMA",
    "FixLogHeader",
    "FixLogWriter",
    "FixProvenance",
    "FixQuality",
    "HEALTH_STATES",
    "HealthConfig",
    "HealthTracker",
    "LoggedFix",
    "PlannedDeletion",
    "ProvenanceRing",
    "QUALITY_LEVELS",
    "READER_ROLES",
    "RETAINABLE_KINDS",
    "ReaderHealth",
    "ReaderProvenance",
    "RecordingHeader",
    "RetentionPlan",
    "RetentionPolicy",
    "RetryPolicy",
    "SPECTRAL_PATHS",
    "SnapshotWindow",
    "StreamConfig",
    "StreamRunner",
    "SyntheticStreamConfig",
    "TagRead",
    "TrackFix",
    "WindowAssembler",
    "WindowConfig",
    "apply_retention",
    "checkpoint_history_dir",
    "checkpoint_id",
    "checkpoint_state",
    "durable_write_json",
    "load_checkpoint",
    "plan_retention",
    "quarantine_checkpoint",
    "read_fix_log",
    "read_fix_log_header",
    "read_header",
    "read_recording",
    "restore_state",
    "save_checkpoint",
    "scan_artefacts",
    "seal_state",
    "sniff_kind",
    "supervised_reads",
    "sweep_slot",
    "synthetic_reads",
    "write_fix_log",
    "write_recording",
]
