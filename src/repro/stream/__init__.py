"""repro.stream — the online streaming engine for continuous tracking.

D-Watch is deployed as a continuous monitor: tag reads arrive as an
endless event stream from TDM antenna sweeps, and the paper's tracking
experiments (Figs. 19/21) imply sustained fix rates rather than
one-shot batch captures.  This package turns the batch pipeline into
that online service:

* :mod:`repro.stream.events` — the typed :class:`TagRead` ingest event
  and the :class:`TrackFix` output record.
* :mod:`repro.stream.queue` — a bounded ingest queue with explicit
  backpressure policies (``block``, ``drop-oldest``, ``drop-newest``)
  and a counter for every drop.
* :mod:`repro.stream.window` — the event-time window assembler that
  groups reads by reader/tag/sweep into snapshot windows, with a
  lateness bound for out-of-order arrivals.
* :mod:`repro.stream.covariance` — exponentially-weighted rank-1
  covariance updates per (reader, tag) and the covariance-domain
  P-MUSIC spectrum, so spectra refresh per window without recomputing
  from scratch.
* :mod:`repro.stream.drift` — slow EWMA adaptation of the empty-area
  baseline spectra with a freeze-while-detecting guard.
* :mod:`repro.stream.replay` — versioned JSONL recording and replay of
  read streams.
* :mod:`repro.stream.synthetic` — a synthetic read-stream driver over
  :mod:`repro.sim.measurement` for offline runs and benchmarks.
* :mod:`repro.stream.runner` — :class:`StreamRunner`, the pull-based
  loop wiring ingest -> windows -> evidence -> localize into a stream
  of fixes, instrumented through :mod:`repro.obs`.

See ``docs/STREAMING.md`` for the architecture and the replay format.
"""

from repro.stream.covariance import CovarianceBank, EwCovariance
from repro.stream.drift import BaselineDriftTracker
from repro.stream.events import TagRead, TrackFix
from repro.stream.queue import DROP_POLICIES, BoundedReadQueue
from repro.stream.replay import (
    RecordingHeader,
    read_header,
    read_recording,
    write_recording,
)
from repro.stream.runner import StreamConfig, StreamRunner
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads
from repro.stream.window import SnapshotWindow, WindowAssembler, WindowConfig

__all__ = [
    "BaselineDriftTracker",
    "BoundedReadQueue",
    "CovarianceBank",
    "DROP_POLICIES",
    "EwCovariance",
    "RecordingHeader",
    "SnapshotWindow",
    "StreamConfig",
    "StreamRunner",
    "SyntheticStreamConfig",
    "TagRead",
    "TrackFix",
    "WindowAssembler",
    "WindowConfig",
    "read_header",
    "read_recording",
    "synthetic_reads",
    "write_recording",
]
