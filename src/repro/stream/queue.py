"""The bounded ingest queue with explicit backpressure policies.

A continuous deployment cannot assume the localization loop always
keeps up with the readers: TDM sweeps arrive at a fixed hardware rate
while per-window processing time varies.  This queue makes the
overload behaviour an explicit, counted decision instead of an
unbounded buffer:

``block``
    The producer waits (up to a timeout) for space; a timeout raises
    :class:`~repro.errors.BackpressureError`.  Lossless, but pushes the
    stall upstream — the right choice for replay and batch drains.
``drop-oldest``
    The oldest queued read is evicted to admit the new one.  Keeps the
    stream fresh under overload (stale sweeps are worthless for a
    moving target) at the cost of torn windows.  The default.
``drop-newest``
    The incoming read is discarded.  Preserves whole in-flight windows
    at the cost of losing the newest data.

Every drop is counted — on the queue itself (:attr:`BoundedReadQueue.stats`)
and through :mod:`repro.obs` counters ``stream.queue.dropped_oldest``,
``stream.queue.dropped_newest`` and ``stream.queue.block_timeouts`` —
so an operator can see overload instead of guessing at it.

Shutdown is explicit: :meth:`BoundedReadQueue.close` marks the queue
closed, wakes any producer blocked waiting for space (it raises
:class:`~repro.errors.QueueClosedError` immediately instead of burning
its full timeout against a consumer that is gone), and rejects further
offers with the same error.  Reads already queued stay drainable, so a
consumer finishing up loses nothing.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Tuple

from repro import obs
from repro.analysis.sanitizer import sanitized_lock
from repro.errors import BackpressureError, ConfigurationError, QueueClosedError
from repro.stream.events import TagRead

#: The recognised backpressure policies, in documentation order.
DROP_POLICIES: Tuple[str, ...] = ("block", "drop-oldest", "drop-newest")


@dataclass(frozen=True)
class QueueStats:
    """Lifetime counters of one queue (all monotonic)."""

    offered: int
    accepted: int
    dropped_oldest: int
    dropped_newest: int
    block_timeouts: int

    @property
    def dropped(self) -> int:
        """Total reads lost to any policy."""
        return self.dropped_oldest + self.dropped_newest


class BoundedReadQueue:
    """A thread-safe bounded FIFO of :class:`TagRead` events.

    Parameters
    ----------
    capacity:
        Maximum queued reads; must be positive.
    policy:
        One of :data:`DROP_POLICIES`.
    block_timeout_s:
        How long a ``block``-policy :meth:`put` waits for space before
        raising :class:`~repro.errors.BackpressureError`.
    deployment:
        Optional deployment id this queue serves.  When set, every
        drop additionally feeds the labeled
        ``stream.queue.dropped{deployment,policy}`` counter so
        per-shard backpressure is visible on ``/metrics``; when
        ``None`` (the single-runner default) only the legacy unlabeled
        counters fire and the metric surface is unchanged.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "drop-oldest",
        block_timeout_s: float = 1.0,
        deployment: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be positive")
        if policy not in DROP_POLICIES:
            raise ConfigurationError(
                f"unknown drop policy {policy!r}; pick from {DROP_POLICIES}"
            )
        if block_timeout_s < 0.0:
            raise ConfigurationError("block timeout cannot be negative")
        self.capacity = capacity
        self.policy = policy
        self.block_timeout_s = block_timeout_s
        self.deployment = deployment
        self._items: Deque[TagRead] = deque()
        self._lock = sanitized_lock("stream.queue")
        self._not_full = threading.Condition(self._lock)
        self._offered = 0
        self._accepted = 0
        self._dropped_oldest = 0
        self._dropped_newest = 0
        self._block_timeouts = 0
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Shut the queue: reject future offers, wake blocked producers.

        Idempotent.  Queued reads remain drainable — closing only stops
        *new* reads from entering, so a consumer can finish cleanly.
        """
        with self._not_full:
            self._closed = True
            self._not_full.notify_all()

    def _count_drop(self, policy: str) -> None:
        """Feed the labeled per-deployment drop counter (when labeled)."""
        if self.deployment is not None:
            obs.count(
                "stream.queue.dropped",
                labels={"deployment": self.deployment, "policy": policy},
            )

    @property
    def stats(self) -> QueueStats:
        """A consistent snapshot of the lifetime counters."""
        with self._lock:
            return QueueStats(
                offered=self._offered,
                accepted=self._accepted,
                dropped_oldest=self._dropped_oldest,
                dropped_newest=self._dropped_newest,
                block_timeouts=self._block_timeouts,
            )

    def put(self, read: TagRead) -> bool:
        """Offer one read; returns whether it was accepted.

        ``drop-newest`` returns ``False`` for the rejected read;
        ``drop-oldest`` always returns ``True`` (the casualty is the
        queue head); ``block`` either returns ``True`` or raises
        :class:`~repro.errors.BackpressureError` after the timeout.
        Offering to a closed queue raises
        :class:`~repro.errors.QueueClosedError` under every policy —
        including mid-wait under ``block``, so shutdown never leaves a
        producer hanging for its full timeout.
        """
        with self._not_full:
            if self._closed:
                obs.count("stream.queue.closed_rejects")
                raise QueueClosedError(
                    "queue is closed; no further reads accepted",
                    reader=read.reader_name,
                    epc=read.epc,
                    time_s=read.time_s,
                )
            self._offered += 1
            if len(self._items) < self.capacity:
                self._items.append(read)
                self._accepted += 1
                return True
            if self.policy == "drop-newest":
                self._dropped_newest += 1
                obs.count("stream.queue.dropped_newest")
                self._count_drop("drop-newest")
                return False
            if self.policy == "drop-oldest":
                self._items.popleft()
                self._dropped_oldest += 1
                obs.count("stream.queue.dropped_oldest")
                self._count_drop("drop-oldest")
                self._items.append(read)
                self._accepted += 1
                return True
            # block: wait for a consumer to make room (or for close()
            # to declare there will never be one).
            deadline_ok = self._not_full.wait_for(
                lambda: self._closed or len(self._items) < self.capacity,
                timeout=self.block_timeout_s,
            )
            if self._closed:
                obs.count("stream.queue.closed_rejects")
                raise QueueClosedError(
                    "queue closed while waiting for space",
                    reader=read.reader_name,
                    epc=read.epc,
                    time_s=read.time_s,
                )
            if not deadline_ok:
                self._block_timeouts += 1
                obs.count("stream.queue.block_timeouts")
                self._count_drop("block")
                raise BackpressureError(
                    f"queue full ({self.capacity} reads) for "
                    f"{self.block_timeout_s:g}s under the 'block' policy"
                )
            self._items.append(read)
            self._accepted += 1
            return True

    def put_many(self, reads: Iterable[TagRead]) -> int:
        """Offer many reads under one lock acquisition; returns accepted count.

        Per-read admission follows :meth:`put` exactly (same policies,
        counters and closed-queue behaviour); batching only amortises
        the lock overhead, which dominates at sweep rates.  The
        ``block`` policy must release the lock between items to let a
        consumer drain, so it simply delegates to :meth:`put`.
        """
        if self.policy == "block":
            return sum(1 for read in reads if self.put(read))
        accepted = 0
        with self._not_full:
            for read in reads:
                if self._closed:
                    obs.count("stream.queue.closed_rejects")
                    raise QueueClosedError(
                        "queue is closed; no further reads accepted",
                        reader=read.reader_name,
                        epc=read.epc,
                        time_s=read.time_s,
                    )
                self._offered += 1
                if len(self._items) < self.capacity:
                    self._items.append(read)
                    self._accepted += 1
                    accepted += 1
                elif self.policy == "drop-newest":
                    self._dropped_newest += 1
                    obs.count("stream.queue.dropped_newest")
                    self._count_drop("drop-newest")
                else:  # drop-oldest
                    self._items.popleft()
                    self._dropped_oldest += 1
                    obs.count("stream.queue.dropped_oldest")
                    self._count_drop("drop-oldest")
                    self._items.append(read)
                    self._accepted += 1
                    accepted += 1
        return accepted

    def get(self) -> Optional[TagRead]:
        """Pop the oldest read, or ``None`` when empty."""
        with self._not_full:
            if not self._items:
                return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def drain(self, limit: Optional[int] = None) -> List[TagRead]:
        """Pop up to ``limit`` reads (all of them when ``None``), FIFO."""
        with self._not_full:
            take = len(self._items) if limit is None else min(limit, len(self._items))
            drained = [self._items.popleft() for _ in range(take)]
            if drained:
                self._not_full.notify_all()
            return drained

    def export_state(self) -> Tuple[Tuple[TagRead, ...], QueueStats]:
        """Queued reads plus counters, for streaming checkpoints."""
        with self._lock:
            return tuple(self._items), QueueStats(
                offered=self._offered,
                accepted=self._accepted,
                dropped_oldest=self._dropped_oldest,
                dropped_newest=self._dropped_newest,
                block_timeouts=self._block_timeouts,
            )

    def import_state(self, items: Iterable[TagRead], stats: QueueStats) -> None:
        """Replace contents and counters with a checkpointed snapshot.

        Bypasses the admission policies on purpose: the reads were
        already admitted once, in the run being restored.
        """
        with self._not_full:
            self._items.clear()
            self._items.extend(items)
            self._offered = stats.offered
            self._accepted = stats.accepted
            self._dropped_oldest = stats.dropped_oldest
            self._dropped_newest = stats.dropped_newest
            self._block_timeouts = stats.block_timeouts
            self._not_full.notify_all()
