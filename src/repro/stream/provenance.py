"""Per-fix provenance: which readers, faults and code paths made a fix.

A tracker that only emits positions is not auditable: when a fix
drifts in production you need to know *what produced it* — which
readers' evidence entered the likelihood product, what the fleet's
health ladder looked like, which chaos faults were active over the
window, whether the batched or the scalar spectral chain ran, and
which checkpoint lineage the process resumed from.  This module is
that record:

* :class:`ReaderProvenance` — one reader's role in one fix
  (``contributed`` / ``excluded`` / ``failed`` / ``silent``) plus its
  health-ladder state when the window closed.
* :class:`FixProvenance` — the full per-fix record the runner attaches
  to every :class:`~repro.stream.events.TrackFix`.  It is metadata:
  it never participates in fix equality (``compare=False`` on the
  event field) and costs nothing numerically — every field is read
  off state the runner already maintains.
* **Fix log** — a versioned JSONL serialization (``kind``
  ``dwatch-fixes``, schema 1, same header discipline as the
  record/replay format) written by ``repro stream --fix-log`` and read
  back by the ``repro provenance`` CLI.
* :class:`ProvenanceRing` — the bounded, thread-safe buffer of recent
  records behind the ops endpoint's ``/provenance/recent``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.analysis.sanitizer import sanitized_lock
from repro.errors import RecordingError
from repro.stream.events import FixQuality, TrackFix

#: Format marker so future revisions can migrate old fix logs.
FIXLOG_SCHEMA = 1

#: The ``kind`` tag distinguishing fix logs from other JSONL files.
FIXLOG_KIND = "dwatch-fixes"

#: How a reader related to one fix.  ``contributed`` — its spectra
#: entered the likelihood product; ``excluded`` — it produced spectra
#: but was quarantined out; ``failed`` — its spectral chain raised this
#: window; ``silent`` — it delivered no usable spectra at all.
READER_ROLES: Tuple[str, ...] = ("contributed", "excluded", "failed", "silent")

#: Which spectral implementation produced the window's spectra.
SPECTRAL_PATHS: Tuple[str, ...] = ("batch", "scalar", "mixed")

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ReaderProvenance:
    """One reader's role in one fix."""

    name: str
    health: str
    role: str

    def to_dict(self) -> Dict[str, str]:
        """JSON-ready representation."""
        return {"name": self.name, "health": self.health, "role": self.role}

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "ReaderProvenance":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(record["name"]),
            health=str(record["health"]),
            role=str(record["role"]),
        )


@dataclass(frozen=True)
class FixProvenance:
    """Everything that went into one :class:`TrackFix`.

    Attributes
    ----------
    window_index:
        The producing window's sequence number.
    readers:
        Per-reader role and health, sorted by reader name.
    active_faults:
        Fault kinds whose injection window overlapped this fix window
        (empty outside chaos runs).
    watermark_s:
        The assembler's event-time watermark when the window closed.
    lateness_s:
        The assembler's out-of-order admission bound.
    spectral_path:
        ``batch`` when every reader ran the batched kernels,
        ``scalar`` when every reader replayed the reference chain,
        ``mixed`` otherwise.
    scalar_fallbacks:
        Readers whose batched pass failed and fell back to the scalar
        reference chain this window.
    checkpoint_lineage:
        Identities of the checkpoints this run restored from, oldest
        first (empty for a never-restored process).
    """

    window_index: int
    readers: Tuple[ReaderProvenance, ...] = ()
    active_faults: Tuple[str, ...] = ()
    watermark_s: Optional[float] = None
    lateness_s: float = 0.0
    spectral_path: str = "batch"
    scalar_fallbacks: Tuple[str, ...] = ()
    checkpoint_lineage: Tuple[str, ...] = ()

    @property
    def contributing(self) -> Tuple[str, ...]:
        """Names of the readers whose evidence entered the fix."""
        return tuple(
            r.name for r in self.readers if r.role == "contributed"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (stable key order via sort_keys)."""
        return {
            "window_index": self.window_index,
            "readers": [r.to_dict() for r in self.readers],
            "active_faults": list(self.active_faults),
            "watermark_s": self.watermark_s,
            "lateness_s": self.lateness_s,
            "spectral_path": self.spectral_path,
            "scalar_fallbacks": list(self.scalar_fallbacks),
            "checkpoint_lineage": list(self.checkpoint_lineage),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "FixProvenance":
        """Inverse of :meth:`to_dict`."""
        raw_watermark = record.get("watermark_s")
        return cls(
            window_index=int(record["window_index"]),
            readers=tuple(
                ReaderProvenance.from_dict(r) for r in record.get("readers", [])
            ),
            active_faults=tuple(
                str(k) for k in record.get("active_faults", [])
            ),
            watermark_s=(
                None if raw_watermark is None else float(raw_watermark)
            ),
            lateness_s=float(record.get("lateness_s", 0.0)),
            spectral_path=str(record.get("spectral_path", "batch")),
            scalar_fallbacks=tuple(
                str(n) for n in record.get("scalar_fallbacks", [])
            ),
            checkpoint_lineage=tuple(
                str(c) for c in record.get("checkpoint_lineage", [])
            ),
        )


# -- the fix log ----------------------------------------------------------


@dataclass(frozen=True)
class FixLogHeader:
    """The first line of a fix log."""

    schema: int = FIXLOG_SCHEMA
    environment: Optional[str] = None
    seed: Optional[int] = None
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """The JSON object written as line 1."""
        record: Dict[str, Any] = {"schema": self.schema, "kind": FIXLOG_KIND}
        if self.environment is not None:
            record["environment"] = self.environment
        if self.seed is not None:
            record["seed"] = self.seed
        if self.description:
            record["description"] = self.description
        return record


@dataclass(frozen=True)
class LoggedFix:
    """One fix as read back from a fix log (plain data, no geometry)."""

    index: int
    time_s: float
    position: Optional[Tuple[float, float]]
    predicted_only: bool
    quality_level: str
    confidence: float
    provenance: Optional[FixProvenance]


def fix_record(fix: TrackFix) -> Dict[str, Any]:
    """The JSON object one fix serializes to."""
    record: Dict[str, Any] = {
        "index": fix.index,
        "t": fix.time_s,
        "position": (
            None
            if fix.position is None
            else [fix.position.x, fix.position.y]
        ),
        "predicted_only": fix.predicted_only,
        "quality": fix.quality.level,
        "confidence": fix.quality.confidence,
    }
    if fix.provenance is not None:
        record["provenance"] = fix.provenance.to_dict()
    return record


class FixLogWriter:
    """Streams fixes into a versioned JSONL fix log.

    Opens eagerly and writes the header immediately, so a crash
    mid-run still leaves a parseable prefix (the same crash-artefact
    discipline the read-recording format follows).  Use as a context
    manager or call :meth:`close` explicitly.
    """

    def __init__(
        self, path: PathLike, header: Optional[FixLogHeader] = None
    ) -> None:
        self.path = path
        self.written = 0
        try:
            self._handle = open(path, "w", encoding="utf-8")
        except OSError as exc:
            raise RecordingError(
                f"cannot write fix log {str(path)!r}: {exc}"
            ) from exc
        meta = header or FixLogHeader()
        self._handle.write(json.dumps(meta.to_dict(), sort_keys=True) + "\n")

    def append(self, fix: TrackFix) -> None:
        """Write one fix line."""
        self._handle.write(json.dumps(fix_record(fix), sort_keys=True) + "\n")
        self.written += 1

    def close(self) -> None:
        """Flush and close the log."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "FixLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_fix_log(
    path: PathLike,
    fixes: Iterable[TrackFix],
    header: Optional[FixLogHeader] = None,
) -> int:
    """Write a whole fix iterable; returns the number of fixes written."""
    with FixLogWriter(path, header) as writer:
        for fix in fixes:
            writer.append(fix)
        return writer.written


def read_fix_log_header(path: PathLike) -> FixLogHeader:
    """Parse and validate a fix log's header line."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
    except OSError as exc:
        raise RecordingError(
            f"cannot open fix log {str(path)!r}: {exc}"
        ) from exc
    if not first.strip():
        raise RecordingError(f"fix log {str(path)!r} is empty (no header line)")
    return _parse_fixlog_header(first, path)


def read_fix_log(path: PathLike) -> Iterator[LoggedFix]:
    """Yield every fix of a fix log, lazily, in file order.

    Raises
    ------
    RecordingError
        On a missing file, bad header, unknown schema, malformed or
        truncated line — identifying the line number, exactly like the
        read-recording reader.
    """
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise RecordingError(
            f"cannot open fix log {str(path)!r}: {exc}"
        ) from exc
    return _read_fixlog_body(handle, path)


def _parse_fixlog_header(line: str, path: PathLike) -> FixLogHeader:
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise RecordingError(
            f"fix log {str(path)!r} line 1: header is not valid JSON "
            "(truncated or foreign file?)"
        ) from exc
    if not isinstance(data, dict) or data.get("kind") != FIXLOG_KIND:
        raise RecordingError(
            f"fix log {str(path)!r} line 1: not a {FIXLOG_KIND!r} header"
        )
    if data.get("schema") != FIXLOG_SCHEMA:
        raise RecordingError(
            f"fix log {str(path)!r}: unsupported schema "
            f"{data.get('schema')!r} (this build reads schema {FIXLOG_SCHEMA})"
        )
    seed = data.get("seed")
    return FixLogHeader(
        schema=int(data["schema"]),
        environment=data.get("environment"),
        seed=int(seed) if seed is not None else None,
        description=str(data.get("description", "")),
    )


def _read_fixlog_body(handle: Any, path: PathLike) -> Iterator[LoggedFix]:
    with handle:
        first = handle.readline()
        if not first.strip():
            raise RecordingError(
                f"fix log {str(path)!r} is empty (no header line)"
            )
        _parse_fixlog_header(first, path)
        for number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
                raw_position = data["position"]
                raw_provenance = data.get("provenance")
                yield LoggedFix(
                    index=int(data["index"]),
                    time_s=float(data["t"]),
                    position=(
                        None
                        if raw_position is None
                        else (
                            float(raw_position[0]),
                            float(raw_position[1]),
                        )
                    ),
                    predicted_only=bool(data["predicted_only"]),
                    quality_level=str(data["quality"]),
                    confidence=float(data["confidence"]),
                    provenance=(
                        None
                        if raw_provenance is None
                        else FixProvenance.from_dict(raw_provenance)
                    ),
                )
            except (ValueError, KeyError, TypeError, IndexError) as exc:
                raise RecordingError(
                    f"fix log {str(path)!r} line {number}: malformed or "
                    f"truncated fix record ({exc})"
                ) from exc


# -- the recent-provenance ring -------------------------------------------


@dataclass
class _RingEntry:
    """One retained fix summary (internal)."""

    record: Dict[str, Any] = field(default_factory=dict)


class ProvenanceRing:
    """Bounded, thread-safe buffer of the most recent fix records.

    The streaming loop appends; the ops endpoint's
    ``/provenance/recent`` handler snapshots from its serving thread.
    Memory is bounded by ``capacity`` regardless of run length.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise RecordingError("provenance ring capacity must be >= 1")
        self.capacity = capacity
        self._lock = sanitized_lock("stream.provenance.ring")
        self._entries: List[Dict[str, Any]] = []

    def push(self, fix: TrackFix) -> None:
        """Retain one fix (evicting the oldest beyond capacity)."""
        self.push_record(fix_record(fix))

    def push_record(self, record: Dict[str, Any]) -> None:
        """Retain an already-serialized fix record.

        The seam for feeds that only ever see the wire form — a
        process-mode shard receives its child's fixes as records, not
        as :class:`TrackFix` objects.
        """
        with self._lock:
            self._entries.append(record)
            if len(self._entries) > self.capacity:
                del self._entries[0]

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Most recent records, newest last; ``limit`` caps the count."""
        with self._lock:
            entries = list(self._entries)
        if limit is not None and limit >= 0:
            entries = entries[-limit:]
        return entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def quality_from_logged(fix: LoggedFix) -> FixQuality:
    """Minimal :class:`FixQuality` view of a logged fix (level only)."""
    return FixQuality(level=fix.quality_level, confidence=fix.confidence)
