"""Checkpoint/restore of a live :class:`~repro.stream.runner.StreamRunner`.

A continuous monitor that crashes loses more than uptime: the
covariance bank holds minutes of exponentially-weighted history, the
drift tracker has adapted the baseline, and the Kalman tracker carries
the target's velocity.  Rebuilding those from scratch after a restart
changes every subsequent fix.  This module serializes *all* mutable
stream state to a single JSON document so a restarted process continues
**bit-identically** — the crash-resume equivalence is pinned by a
tier-1 test, which is only possible because Python's ``repr``-based
JSON float round-trip is exact.

Format (``schema`` 1, ``kind`` ``dwatch-checkpoint``):

* ``fingerprint`` — reader names, window length and covariance decay of
  the deployment; restoring onto a mismatched runner raises
  :class:`~repro.errors.CheckpointError` rather than silently
  corrupting fixes.
* ``queue`` — still-undrained reads plus the lifetime counters.
* ``assembler`` — pending window cells, watermark, emitted cursor and
  the late/torn/duplicate counters.
* ``bank`` — per-(reader, tag) weighted sums, weights and update
  counts (complex matrices as ``[re, im]`` pairs).
* ``tracker`` — Kalman state vector, covariance and last update time.
* ``baseline`` — the (possibly drift-adapted) baseline spectrum sets.
* ``drift`` / ``health`` / counters — the remaining run bookkeeping.

Complex numbers are stored as two-element ``[re, im]`` lists; integer
dictionary keys as decimal strings (JSON objects only key on strings).

Durability and corruption discipline (added for the serving fleet's
chaos drills):

* Files are written via :func:`durable_write_json` — temp sibling,
  ``fsync`` of the data, atomic ``os.replace``, then ``fsync`` of the
  directory — so a host crash can never leave a zero-length or
  half-written "latest" checkpoint.
* Written documents carry an ``integrity`` digest (the
  :func:`checkpoint_id` of the rest of the document).  A bit-flip that
  still parses as JSON is caught on load instead of silently
  corrupting every later fix; documents from before the digest existed
  load unverified (legacy).
* A corrupt file is never deleted: :func:`quarantine_checkpoint`
  renames it to a ``.corrupt`` sibling so an operator can autopsy it,
  and the serving supervisor walks the on-disk lineage (see
  :func:`checkpoint_history_dir`) back to the newest verifiable
  ancestor.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro import obs
from repro.core.baseline import SpectrumSet
from repro.dsp.spectrum import AngularSpectrum
from repro.errors import CheckpointError
from repro.utils.arrays import ComplexArray, FloatArray
from repro.stream.covariance import EwCovariance
from repro.stream.events import TagRead
from repro.stream.queue import QueueStats
from repro.stream.window import _PendingWindow

if TYPE_CHECKING:
    from repro.stream.runner import StreamRunner

#: Format marker so future revisions can migrate old checkpoints.
CHECKPOINT_SCHEMA = 1

#: The ``kind`` tag distinguishing checkpoints from other JSON files.
CHECKPOINT_KIND = "dwatch-checkpoint"

#: Key carrying the content digest in *persisted* checkpoint files.
#: Never part of the in-memory state document: :func:`checkpoint_id`
#: ignores it and :func:`load_checkpoint` strips it after verifying.
INTEGRITY_KEY = "integrity"

#: Suffix a corrupt checkpoint is renamed to (never deleted).
QUARANTINE_SUFFIX = ".corrupt"

PathLike = Union[str, Path]


def checkpoint_state(runner: "StreamRunner") -> Dict[str, Any]:
    """Capture every piece of mutable state of a runner (JSON-ready)."""
    items, stats = runner.queue.export_state()
    tracker_state: Optional[Dict[str, Any]] = None
    if runner.tracker is not None and runner.tracker.initialized:
        tracker_state = {
            "state": [float(v) for v in runner.tracker._state],
            "covariance": _real_matrix(runner.tracker._covariance),
            "last_time": runner.tracker._last_time,
        }
    baseline: Optional[List[Dict[str, Any]]] = None
    if runner.dwatch.baseline is not None:
        baseline = [_spectrum_set(s) for s in runner.dwatch.baseline]
    return {
        "schema": CHECKPOINT_SCHEMA,
        "kind": CHECKPOINT_KIND,
        "fingerprint": _fingerprint(runner),
        "queue": {
            "items": [_read(r) for r in items],
            "stats": {
                "offered": stats.offered,
                "accepted": stats.accepted,
                "dropped_oldest": stats.dropped_oldest,
                "dropped_newest": stats.dropped_newest,
                "block_timeouts": stats.block_timeouts,
            },
        },
        "assembler": _assembler_state(runner),
        "bank": _bank_state(runner),
        "tracker": tracker_state,
        "baseline": baseline,
        "drift": {
            "applied_updates": runner.drift.applied_updates,
            "frozen_updates": runner.drift.frozen_updates,
        },
        "health": runner.health.export_state(),
        "fixes_emitted": runner.fixes_emitted,
        "rejected_reads": runner.rejected_reads,
        "lineage": list(runner.lineage),
    }


def checkpoint_id(state: Mapping[str, Any]) -> str:
    """Content identity of a checkpoint document (12 hex chars).

    The SHA-256 of the sorted-key JSON serialization — the same bytes
    :func:`save_checkpoint` writes — so the id is stable across
    load/save round trips and across processes.  Restoring appends this
    id to the runner's lineage, giving every later fix's provenance an
    auditable chain back through each crash-resume.
    """
    document = {k: v for k, v in state.items() if k != INTEGRITY_KEY}
    serialized = json.dumps(document, sort_keys=True)
    return hashlib.sha256(serialized.encode("utf-8")).hexdigest()[:12]


def seal_state(state: Mapping[str, Any]) -> Dict[str, Any]:
    """A copy of ``state`` carrying its own :func:`checkpoint_id` digest.

    The digest travels *inside* the persisted file so a restore can
    verify the bytes it read are the bytes that were written — the
    disk-corruption twin of the wire protocol's length prefix.
    """
    sealed = dict(state)
    sealed[INTEGRITY_KEY] = checkpoint_id(state)
    return sealed


def restore_state(runner: "StreamRunner", state: Mapping[str, Any]) -> None:
    """Adopt a checkpoint into a freshly constructed, matching runner."""
    if state.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(f"not a {CHECKPOINT_KIND!r} document")
    if state.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"unsupported checkpoint schema {state.get('schema')!r} "
            f"(this build reads schema {CHECKPOINT_SCHEMA})"
        )
    expected = _fingerprint(runner)
    found = state.get("fingerprint")
    if found != expected:
        raise CheckpointError(
            f"checkpoint fingerprint {found!r} does not match this "
            f"deployment {expected!r}; refusing to restore"
        )
    try:
        _restore_queue(runner, state["queue"])
        _restore_assembler(runner, state["assembler"])
        _restore_bank(runner, state["bank"])
        _restore_tracker(runner, state["tracker"])
        _restore_baseline(runner, state["baseline"])
        runner.drift.applied_updates = int(state["drift"]["applied_updates"])
        runner.drift.frozen_updates = int(state["drift"]["frozen_updates"])
        runner.health.import_state(state["health"])
        runner.fixes_emitted = int(state["fixes_emitted"])
        runner.rejected_reads = int(state["rejected_reads"])
        # The restored runner's lineage is the checkpoint's own chain
        # plus the checkpoint it just resumed from (documents written
        # before lineage existed count as an empty chain).
        runner.lineage = [
            str(entry) for entry in state.get("lineage", [])
        ] + [checkpoint_id(state)]
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise CheckpointError(f"malformed checkpoint: {exc}") from exc


def durable_write_json(path: PathLike, document: Mapping[str, Any]) -> None:
    """Crash-durably write ``document`` as sorted-key JSON at ``path``.

    The write goes to a temp sibling which is fsynced *before* the
    atomic ``os.replace`` and the parent directory is fsynced *after*,
    so a host crash at any instant leaves either the old file or the
    new one — never a zero-length or half-written "latest".
    """
    target = Path(path)
    temp = target.with_name(target.name + ".tmp")
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(dict(document), handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, target)
    except OSError as exc:
        raise CheckpointError(
            f"cannot write checkpoint {str(target)!r}: {exc}"
        ) from exc
    try:
        # Directory fsync makes the rename itself durable.  Some
        # filesystems refuse to open a directory for writing; the data
        # is still safe past the rename on those, so count and move on.
        dir_fd = os.open(str(target.parent), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        obs.count("stream.checkpoint.dir_fsync_skipped")


def quarantine_checkpoint(path: PathLike) -> Path:
    """Rename a corrupt checkpoint to a ``.corrupt`` sibling.

    The file is never deleted — an operator can autopsy the bytes to
    distinguish a torn write from bad RAM or a disk fault.  Returns the
    quarantine path; collisions gain a numeric suffix so repeated
    corruption of the same deployment keeps every specimen.
    """
    source = Path(path)
    destination = source.with_name(source.name + QUARANTINE_SUFFIX)
    index = 1
    while destination.exists():
        destination = source.with_name(
            f"{source.name}{QUARANTINE_SUFFIX}.{index}"
        )
        index += 1
    try:
        os.replace(source, destination)
    except OSError as exc:
        raise CheckpointError(
            f"cannot quarantine checkpoint {str(source)!r}: {exc}"
        ) from exc
    obs.count("stream.checkpoint.quarantined")
    return destination


def checkpoint_history_dir(path: PathLike) -> Path:
    """The lineage-history directory paired with a "latest" checkpoint.

    ``dep-00.ckpt.json`` keeps its rotated ancestors under
    ``dep-00.ckpt.json.history/<seq>.json`` — newest sequence number is
    the most recent ancestor, which the serving supervisor walks when
    the latest file fails verification.
    """
    return Path(str(path) + ".history")


def save_checkpoint(path: PathLike, runner: "StreamRunner") -> None:
    """Durably write a runner's checkpoint as one sealed JSON document."""
    durable_write_json(path, seal_state(checkpoint_state(runner)))


def load_checkpoint(path: PathLike, *, verify: bool = True) -> Dict[str, Any]:
    """Read a checkpoint document (validated on :func:`restore_state`).

    With ``verify`` (the default) a present ``integrity`` digest is
    checked against the document's :func:`checkpoint_id`; a mismatch —
    bit-flips, partial overwrites, any bytes-read != bytes-written —
    raises :class:`~repro.errors.CheckpointError`.  Documents written
    before the digest existed carry no ``integrity`` key and load
    unverified.  The digest is stripped before returning, so loaded
    state round-trips exactly with :func:`checkpoint_state`.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise CheckpointError(
            f"cannot open checkpoint {str(path)!r}: {exc}"
        ) from exc
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {str(path)!r} is not valid JSON "
            "(truncated or foreign file?)"
        ) from exc
    if not isinstance(data, dict):
        raise CheckpointError(
            f"checkpoint {str(path)!r} is not a JSON object"
        )
    digest = data.pop(INTEGRITY_KEY, None)
    if verify and digest is not None:
        expected = checkpoint_id(data)
        if digest != expected:
            raise CheckpointError(
                f"checkpoint {str(path)!r} is corrupt: integrity digest "
                f"{digest!r} does not match content {expected!r}"
            )
    return data


# -- serialization helpers ------------------------------------------------


def _fingerprint(runner: "StreamRunner") -> Dict[str, Any]:
    return {
        "readers": sorted(runner.dwatch.readers),
        "window_s": runner.assembler.window_s,
        "decay": runner.config.decay,
    }


def _complex(value: complex) -> List[float]:
    return [value.real, value.imag]


def _as_complex(pair: Any) -> complex:
    return complex(float(pair[0]), float(pair[1]))


def _complex_matrix(matrix: ComplexArray) -> List[List[List[float]]]:
    return [[_complex(complex(cell)) for cell in row] for row in matrix]


def _as_complex_matrix(rows: Any) -> ComplexArray:
    return np.array(
        [[_as_complex(cell) for cell in row] for row in rows],
        dtype=np.complex128,
    )


def _real_matrix(matrix: FloatArray) -> List[List[float]]:
    return [[float(cell) for cell in row] for row in matrix]


def _read(read: TagRead) -> Dict[str, Any]:
    value = complex(read.iq)
    return {
        "t": read.time_s,
        "r": read.reader_name,
        "e": read.epc,
        "i": [value.real, value.imag],
    }


def _as_read(record: Mapping[str, Any]) -> TagRead:
    return TagRead(
        reader_name=str(record["r"]),
        epc=str(record["e"]),
        time_s=float(record["t"]),
        iq=_as_complex(record["i"]),
    )


def _spectrum_set(spectra: SpectrumSet) -> Dict[str, Any]:
    return {
        reader_name: {
            epc: {
                "angles": [float(a) for a in spectrum.angles],
                "values": [float(v) for v in spectrum.values],
            }
            for epc, spectrum in per_tag.items()
        }
        for reader_name, per_tag in spectra.spectra.items()
    }


def _as_spectrum_set(record: Mapping[str, Any]) -> SpectrumSet:
    result = SpectrumSet()
    for reader_name, per_tag in record.items():
        result.spectra[reader_name] = {
            epc: AngularSpectrum(
                np.asarray(entry["angles"], dtype=float),
                np.asarray(entry["values"], dtype=float),
            )
            for epc, entry in per_tag.items()
        }
    return result


def _assembler_state(runner: "StreamRunner") -> Dict[str, Any]:
    assembler = runner.assembler
    pending: List[Dict[str, Any]] = []
    for index in sorted(assembler._pending):
        window = assembler._pending[index]
        cells: List[Dict[str, Any]] = []
        for (reader_name, epc) in sorted(window.cells):
            per_sweep = window.cells[(reader_name, epc)]
            cells.append(
                {
                    "reader": reader_name,
                    "epc": epc,
                    "sweeps": {
                        str(sweep): {
                            str(antenna): _complex(sample)
                            for antenna, sample in column.items()
                        }
                        for sweep, column in per_sweep.items()
                    },
                }
            )
        pending.append({"index": index, "reads": window.reads, "cells": cells})
    return {
        "pending": pending,
        "max_time": assembler._max_time,
        "emitted_through": assembler._emitted_through,
        "late_reads": assembler.late_reads,
        "torn_sweeps": assembler.torn_sweeps,
        "duplicate_reads": assembler.duplicate_reads,
    }


def _bank_state(runner: "StreamRunner") -> List[Dict[str, Any]]:
    pairs: List[Dict[str, Any]] = []
    for (reader_name, epc) in sorted(runner.bank._pairs):
        estimator = runner.bank._pairs[(reader_name, epc)]
        pairs.append(
            {
                "reader": reader_name,
                "epc": epc,
                "num_antennas": estimator.num_antennas,
                "weighted": _complex_matrix(estimator._weighted),
                "weight": estimator._weight,
                "updates": estimator.updates,
            }
        )
    return pairs


# -- restore helpers ------------------------------------------------------


def _restore_queue(runner: "StreamRunner", record: Mapping[str, Any]) -> None:
    stats = record["stats"]
    runner.queue.import_state(
        [_as_read(item) for item in record["items"]],
        QueueStats(
            offered=int(stats["offered"]),
            accepted=int(stats["accepted"]),
            dropped_oldest=int(stats["dropped_oldest"]),
            dropped_newest=int(stats["dropped_newest"]),
            block_timeouts=int(stats["block_timeouts"]),
        ),
    )


def _restore_assembler(
    runner: "StreamRunner", record: Mapping[str, Any]
) -> None:
    assembler = runner.assembler
    assembler._pending.clear()
    for entry in record["pending"]:
        window = _PendingWindow(reads=int(entry["reads"]))
        for cell in entry["cells"]:
            per_sweep: Dict[int, Dict[int, complex]] = {
                int(sweep): {
                    int(antenna): _as_complex(sample)
                    for antenna, sample in column.items()
                }
                for sweep, column in cell["sweeps"].items()
            }
            window.cells[(str(cell["reader"]), str(cell["epc"]))] = per_sweep
        assembler._pending[int(entry["index"])] = window
    raw_max = record["max_time"]
    assembler._max_time = None if raw_max is None else float(raw_max)
    assembler._emitted_through = int(record["emitted_through"])
    # Derived readiness bound; recomputed rather than checkpointed.
    assembler._min_pending_end = min(
        ((index + 1) * assembler.window_s for index in assembler._pending),
        default=None,
    )
    assembler.late_reads = int(record["late_reads"])
    assembler.torn_sweeps = int(record["torn_sweeps"])
    assembler.duplicate_reads = int(record["duplicate_reads"])


def _restore_bank(runner: "StreamRunner", record: Any) -> None:
    runner.bank._pairs.clear()
    for entry in record:
        estimator = EwCovariance(
            num_antennas=int(entry["num_antennas"]),
            decay=runner.bank.decay,
        )
        estimator._weighted = _as_complex_matrix(entry["weighted"])
        estimator._weight = float(entry["weight"])
        estimator.updates = int(entry["updates"])
        runner.bank._pairs[(str(entry["reader"]), str(entry["epc"]))] = estimator


def _restore_tracker(
    runner: "StreamRunner", record: Optional[Mapping[str, Any]]
) -> None:
    if runner.tracker is None:
        return
    runner.tracker.reset()
    if record is None:
        return
    runner.tracker._state = np.asarray(record["state"], dtype=float)
    runner.tracker._covariance = np.asarray(record["covariance"], dtype=float)
    runner.tracker._last_time = float(record["last_time"])


def _restore_baseline(runner: "StreamRunner", record: Any) -> None:
    if record is None:
        runner.dwatch.baseline = None
        return
    runner.dwatch.baseline = [_as_spectrum_set(entry) for entry in record]
