"""Metric primitives and the registry that owns them.

Three metric kinds cover everything the pipeline reports:

* :class:`Counter` — monotonically increasing totals
  (``pipeline.fixes``, ``localizer.outliers_rejected``).
* :class:`Gauge` — last-written values (``multitarget.pool_size``).
* :class:`Histogram` — value distributions with exact count/sum/min/max
  and sample-based percentiles (``calibration.residual``, the
  per-stage ``latency.*`` series fed automatically by spans).

Everything is plain stdlib + a lock, so the layer adds no dependency
and is safe to use from the threaded measurement hub.  Histograms keep
a deterministically decimated sample reservoir: when the buffer fills,
every second sample is dropped and the keep stride doubles, so memory
stays bounded without introducing randomness (randomness here would
perturb nothing numerically, but determinism keeps snapshots
reproducible run to run).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import ConfigurationError

MetricValue = Union[int, float]

#: Percentiles reported in every histogram snapshot.
HISTOGRAM_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: MetricValue = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += float(amount)

    def reset(self) -> None:
        self.value = 0.0

    def snapshot(self) -> dict:
        return {"name": self.name, "type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A last-written value."""

    name: str
    value: float = 0.0
    _written: bool = False

    def set(self, value: MetricValue) -> None:
        self.value = float(value)
        self._written = True

    def reset(self) -> None:
        self.value = 0.0
        self._written = False

    def snapshot(self) -> dict:
        return {"name": self.name, "type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """A value distribution with exact aggregates and sampled percentiles.

    Parameters
    ----------
    max_samples:
        Reservoir capacity.  On overflow the stored samples are
        decimated (every second one kept) and the keep stride doubles,
        so long runs retain an evenly spread subsample.
    """

    name: str
    max_samples: int = 4096
    count: int = 0
    total: float = 0.0
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    _samples: List[float] = field(default_factory=list)
    _stride: int = 1
    _pending: int = 0

    def observe(self, value: MetricValue) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.min_value = v if self.min_value is None else min(self.min_value, v)
        self.max_value = v if self.max_value is None else max(self.max_value, v)
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._samples.append(v)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min_value = None
        self.max_value = None
        self._samples = []
        self._stride = 1
        self._pending = 0

    def snapshot(self) -> dict:
        record = {
            "name": self.name,
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_value if self.min_value is not None else 0.0,
            "max": self.max_value if self.max_value is not None else 0.0,
        }
        record.update(
            {f"p{q:g}": self.percentile(q) for q in HISTOGRAM_PERCENTILES}
        )
        return record


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Thread-safe get-or-create home for every named metric.

    A metric name belongs to exactly one kind; asking for an existing
    name with a different kind is a programming error and raises
    immediately rather than silently splitting the series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def _get_or_create(self, name: str, kind) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name=name)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ConfigurationError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> List[dict]:
        """One record per metric, sorted by name."""
        with self._lock:
            return [self._metrics[name].snapshot() for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every metric while keeping registrations."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    def clear(self) -> None:
        """Forget every metric."""
        with self._lock:
            self._metrics.clear()

    def write_jsonl(self, path: str) -> int:
        """Write the snapshot as JSON lines; returns the record count."""
        records = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


def load_snapshot_jsonl(path: str) -> List[dict]:
    """Read a metrics snapshot previously written by :meth:`write_jsonl`."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


#: Prefix of the per-span latency histograms in a metrics snapshot.
LATENCY_PREFIX = "latency."


def latency_stage_stats(
    records: Iterable[dict],
) -> Dict[str, Dict[str, float]]:
    """Per-stage latency statistics from a metrics snapshot.

    Collects the ``latency.*`` histograms that spans feed automatically
    and strips the prefix, returning
    ``{stage: {"count", "mean", "p90", "max"}}`` in the span's native
    milliseconds.  Shared by the latency experiment, the throughput
    runner, and ``scripts/bench.py``.
    """
    stages: Dict[str, Dict[str, float]] = {}
    for record in records:
        name = str(record.get("name", ""))
        if record.get("type") != "histogram" or not name.startswith(
            LATENCY_PREFIX
        ):
            continue
        stages[name[len(LATENCY_PREFIX):]] = {
            "count": float(record["count"]),
            "mean": float(record["mean"]),
            "p90": float(record["p90"]),
            "max": float(record["max"]),
        }
    return stages


def render_snapshot(
    records: Iterable[dict], prefix: Optional[str] = None
) -> List[str]:
    """Human-readable table of a metrics snapshot (for ``repro stats``).

    ``prefix`` restricts the table to metrics whose name starts with it
    (e.g. ``stream.health.`` to see just the fleet-health series).
    """
    rows = list(records)
    if prefix is not None:
        rows = [r for r in rows if str(r.get("name", "")).startswith(prefix)]
    counters = [r for r in rows if r.get("type") == "counter"]
    gauges = [r for r in rows if r.get("type") == "gauge"]
    histograms = [r for r in rows if r.get("type") == "histogram"]
    lines: List[str] = []
    if counters or gauges:
        width = max(len(r["name"]) for r in counters + gauges)
        lines.append("-- counters & gauges --")
        for record in counters + gauges:
            value = record.get("value", 0.0)
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{record['name']:<{width}}  {rendered}")
    if histograms:
        if lines:
            lines.append("")
        width = max(len(r["name"]) for r in histograms)
        lines.append("-- histograms --")
        header = (
            f"{'name':<{width}}  {'count':>7} {'mean':>10} {'p50':>10} "
            f"{'p90':>10} {'p99':>10} {'max':>10}"
        )
        lines.append(header)
        lines.extend(
            f"{record['name']:<{width}}  "
            f"{record.get('count', 0):>7} "
            f"{record.get('mean', 0.0):>10.3f} "
            f"{record.get('p50', 0.0):>10.3f} "
            f"{record.get('p90', 0.0):>10.3f} "
            f"{record.get('p99', 0.0):>10.3f} "
            f"{record.get('max', 0.0):>10.3f}"
            for record in histograms
        )
    if not lines:
        lines.append("(no metrics recorded)")
    return lines
