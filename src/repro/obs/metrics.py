"""Metric primitives and the registry that owns them.

Three metric kinds cover everything the pipeline reports:

* :class:`Counter` — monotonically increasing totals
  (``pipeline.fixes``, ``localizer.outliers_rejected``).
* :class:`Gauge` — last-written values (``multitarget.pool_size``).
* :class:`Histogram` — value distributions with exact count/sum/min/max,
  sample-based percentiles, and cumulative exposition buckets
  (``calibration.residual``, the per-stage ``latency.*`` series fed
  automatically by spans).

Every metric may additionally carry **labels** — a small, bounded set
of ``key=value`` dimensions (``stream.reads.rejected{reader=R1}``,
``faults.injected{kind=outage}``).  A (name, label-set) pair is one
series; the registry caps the number of series per name so a bug can
never explode cardinality unbounded (the cap is asserted by the soak
harness).  A metric *name* still belongs to exactly one kind across
all of its label sets.

Everything is plain stdlib + locks, so the layer adds no dependency
and is safe to use from the threaded measurement hub: the registry
guards its series maps, and **every metric object guards its own
running state** — the registry hands metric objects to arbitrary
threads (``obs.count`` bumps them outside any registry call), so a
scrape snapshotting a counter mid-``inc`` must never read a
half-applied update.  The locks come from
:func:`repro.analysis.sanitizer.sanitized_lock`, so ``REPRO_DEBUG=1``
runs witness the whole acquisition graph.  Histograms keep
a deterministically decimated sample reservoir: when the buffer fills,
every second sample is dropped and the keep stride doubles, so memory
stays bounded without introducing randomness (randomness here would
perturb nothing numerically, but determinism keeps snapshots
reproducible run to run).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    Union,
    cast,
)

from repro.analysis.sanitizer import sanitized_lock
from repro.errors import ConfigurationError

MetricValue = Union[int, float]

#: One series key: label items, sorted by key (the registry sorts).
LabelItems = Tuple[Tuple[str, str], ...]

#: Percentiles reported in every histogram snapshot.
HISTOGRAM_PERCENTILES = (50.0, 90.0, 99.0)

#: Default cumulative-bucket upper bounds of every histogram, a
#: log-ish ladder wide enough for milliseconds (``latency.*``), meters
#: (``harness.error_m``) and calibration residuals alike.  Exposition
#: adds the implicit ``+Inf`` bucket (= ``count``).
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0,
)

#: Hard per-name series cap: creating more label sets than this for one
#: metric name raises instead of silently growing without bound.
MAX_SERIES_PER_NAME = 512


def label_items(labels: Optional[Mapping[str, str]]) -> LabelItems:
    """Normalize a label mapping into the sorted, hashable series key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0
    labels: LabelItems = ()

    def __post_init__(self) -> None:
        # The registry hands this object to arbitrary threads; the lock
        # keeps increments atomic against concurrent scrapes.
        self._lock = sanitized_lock("obs.metric")

    def inc(self, amount: MetricValue = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self.value += float(amount)

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            record: Dict[str, Any] = {
                "name": self.name,
                "type": "counter",
                "value": self.value,
            }
        if self.labels:
            record["labels"] = dict(self.labels)
        return record


@dataclass
class Gauge:
    """A last-written value."""

    name: str
    value: float = 0.0
    labels: LabelItems = ()
    _written: bool = False

    def __post_init__(self) -> None:
        self._lock = sanitized_lock("obs.metric")

    def set(self, value: MetricValue) -> None:
        with self._lock:
            self.value = float(value)
            self._written = True

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0
            self._written = False

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            record: Dict[str, Any] = {
                "name": self.name,
                "type": "gauge",
                "value": self.value,
            }
        if self.labels:
            record["labels"] = dict(self.labels)
        return record


@dataclass
class Histogram:
    """A value distribution with exact aggregates and sampled percentiles.

    Parameters
    ----------
    max_samples:
        Reservoir capacity.  On overflow the stored samples are
        decimated (every second one kept) and the keep stride doubles,
        so long runs retain an evenly spread subsample.
    """

    name: str
    max_samples: int = 4096
    count: int = 0
    total: float = 0.0
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    labels: LabelItems = ()
    bucket_bounds: Tuple[float, ...] = DEFAULT_BUCKET_BOUNDS
    _samples: List[float] = field(default_factory=list)
    _stride: int = 1
    _pending: int = 0
    _bucket_counts: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if tuple(sorted(self.bucket_bounds)) != tuple(self.bucket_bounds):
            raise ConfigurationError(
                f"histogram {self.name!r} bucket bounds must be sorted"
            )
        if not self._bucket_counts:
            self._bucket_counts = [0] * (len(self.bucket_bounds) + 1)
        self._lock = sanitized_lock("obs.metric")

    def observe(self, value: MetricValue) -> None:
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            self.min_value = (
                v if self.min_value is None else min(self.min_value, v)
            )
            self.max_value = (
                v if self.max_value is None else max(self.max_value, v)
            )
            # Prometheus buckets are upper-bound inclusive (v <= le); the
            # final slot is the implicit +Inf overflow bucket.
            self._bucket_counts[bisect_left(self.bucket_bounds, v)] += 1
            self._pending += 1
            if self._pending >= self._stride:
                self._pending = 0
                self._samples.append(v)
                if len(self._samples) >= self.max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    @property
    def mean(self) -> float:
        with self._lock:
            return self._mean_locked()

    def _mean_locked(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, finite bounds only.

        The implicit ``+Inf`` bucket equals :attr:`count`; the
        Prometheus renderer appends it at exposition time.
        """
        with self._lock:
            return self._cumulative_buckets_locked()

    def _cumulative_buckets_locked(self) -> List[Tuple[float, int]]:
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, in_bucket in zip(self.bucket_bounds, self._bucket_counts):
            running += in_bucket
            pairs.append((bound, running))
        return pairs

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min_value = None
            self.max_value = None
            self._samples = []
            self._stride = 1
            self._pending = 0
            self._bucket_counts = [0] * (len(self.bucket_bounds) + 1)

    def snapshot(self) -> Dict[str, Any]:
        # One acquisition covers every field read, so the record is a
        # consistent point-in-time view even under concurrent observe().
        with self._lock:
            record: Dict[str, Any] = {
                "name": self.name,
                "type": "histogram",
                "count": self.count,
                "sum": self.total,
                "mean": self._mean_locked(),
                "min": self.min_value if self.min_value is not None else 0.0,
                "max": self.max_value if self.max_value is not None else 0.0,
                "buckets": [
                    [bound, cumulative]
                    for bound, cumulative in self._cumulative_buckets_locked()
                ],
            }
            percentiles = {
                f"p{q:g}": self._percentile_locked(q)
                for q in HISTOGRAM_PERCENTILES
            }
        if self.labels:
            record["labels"] = dict(self.labels)
        record.update(percentiles)
        return record


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Thread-safe get-or-create home for every named metric series.

    A metric name belongs to exactly one kind across all of its label
    sets; asking for an existing name with a different kind is a
    programming error and raises immediately rather than silently
    splitting the series.  The number of label sets per name is capped
    at :data:`MAX_SERIES_PER_NAME` so instrumentation bugs (labelling
    by an unbounded value such as an EPC) fail loudly instead of
    leaking memory on a long-running monitor.
    """

    def __init__(self) -> None:
        self._lock = sanitized_lock("obs.metrics.registry")
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}
        self._kinds: Dict[str, Type[Metric]] = {}
        self._series_per_name: Dict[str, int] = {}

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return cast(Counter, self._get_or_create(name, Counter, labels))

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        return cast(Gauge, self._get_or_create(name, Gauge, labels))

    def histogram(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Histogram:
        return cast(Histogram, self._get_or_create(name, Histogram, labels))

    def _get_or_create(
        self,
        name: str,
        kind: Type[Metric],
        labels: Optional[Mapping[str, str]] = None,
    ) -> Metric:
        key = (name, label_items(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                if not isinstance(metric, kind):
                    raise ConfigurationError(
                        f"metric {name!r} is a {type(metric).__name__}, "
                        f"not a {kind.__name__}"
                    )
                return metric
            registered = self._kinds.get(name)
            if registered is not None and registered is not kind:
                raise ConfigurationError(
                    f"metric {name!r} is a {registered.__name__}, "
                    f"not a {kind.__name__}"
                )
            series = self._series_per_name.get(name, 0)
            if series >= MAX_SERIES_PER_NAME:
                raise ConfigurationError(
                    f"metric {name!r} exceeds {MAX_SERIES_PER_NAME} label "
                    "sets; label values must come from a bounded vocabulary"
                )
            metric = kind(name=name, labels=key[1])
            self._metrics[key] = metric
            self._kinds[name] = kind
            self._series_per_name[name] = series + 1
            return metric

    def names(self) -> List[str]:
        """Distinct metric names (label sets collapse), sorted."""
        with self._lock:
            return sorted(self._kinds)

    def series_count(self) -> int:
        """Total number of live (name, label-set) series."""
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> List[Dict[str, Any]]:
        """One record per series, sorted by (name, labels).

        The registry lock covers only the copy of the series map; each
        metric is then snapshotted under its *own* lock.  Nesting the
        per-metric locks inside the registry lock would put an edge in
        the acquisition graph for no benefit — a scrape is a sequence
        of per-series point reads, not a global atomic view.
        """
        with self._lock:
            ordered = [self._metrics[key] for key in sorted(self._metrics)]
        return [metric.snapshot() for metric in ordered]

    def reset(self) -> None:
        """Zero every metric while keeping registrations."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def clear(self) -> None:
        """Forget every metric."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
            self._series_per_name.clear()

    def write_jsonl(self, path: str) -> int:
        """Write the snapshot as JSON lines; returns the record count."""
        records = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


def load_snapshot_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a metrics snapshot previously written by :meth:`write_jsonl`."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


#: Prefix of the per-span latency histograms in a metrics snapshot.
LATENCY_PREFIX = "latency."


def latency_stage_stats(
    records: Iterable[Mapping[str, Any]],
) -> Dict[str, Dict[str, float]]:
    """Per-stage latency statistics from a metrics snapshot.

    Collects the ``latency.*`` histograms that spans feed automatically
    and strips the prefix, returning
    ``{stage: {"count", "mean", "p90", "max"}}`` in the span's native
    milliseconds.  Shared by the latency experiment, the throughput
    runner, and ``scripts/bench.py``.
    """
    stages: Dict[str, Dict[str, float]] = {}
    for record in records:
        name = str(record.get("name", ""))
        if record.get("type") != "histogram" or not name.startswith(
            LATENCY_PREFIX
        ):
            continue
        stages[name[len(LATENCY_PREFIX):]] = {
            "count": float(record["count"]),
            "mean": float(record["mean"]),
            "p90": float(record["p90"]),
            "max": float(record["max"]),
        }
    return stages


def series_name(record: Mapping[str, object]) -> str:
    """Display name of one snapshot record: ``name{k=v,...}`` if labelled."""
    name = str(record.get("name", ""))
    labels = record.get("labels")
    if not isinstance(labels, dict) or not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def render_snapshot(
    records: Iterable[Mapping[str, Any]], prefix: Optional[str] = None
) -> List[str]:
    """Human-readable table of a metrics snapshot (for ``repro stats``).

    ``prefix`` restricts the table to metrics whose name starts with it
    (e.g. ``stream.health.`` to see just the fleet-health series).
    """
    rows = list(records)
    if prefix is not None:
        rows = [r for r in rows if str(r.get("name", "")).startswith(prefix)]
    counters = [r for r in rows if r.get("type") == "counter"]
    gauges = [r for r in rows if r.get("type") == "gauge"]
    histograms = [r for r in rows if r.get("type") == "histogram"]
    lines: List[str] = []
    if counters or gauges:
        width = max(len(series_name(r)) for r in counters + gauges)
        lines.append("-- counters & gauges --")
        for record in counters + gauges:
            value = record.get("value", 0.0)
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{series_name(record):<{width}}  {rendered}")
    if histograms:
        if lines:
            lines.append("")
        width = max(len(series_name(r)) for r in histograms)
        lines.append("-- histograms --")
        header = (
            f"{'name':<{width}}  {'count':>7} {'mean':>10} {'p50':>10} "
            f"{'p90':>10} {'p99':>10} {'max':>10}"
        )
        lines.append(header)
        lines.extend(
            f"{series_name(record):<{width}}  "
            f"{record.get('count', 0):>7} "
            f"{record.get('mean', 0.0):>10.3f} "
            f"{record.get('p50', 0.0):>10.3f} "
            f"{record.get('p90', 0.0):>10.3f} "
            f"{record.get('p99', 0.0):>10.3f} "
            f"{record.get('max', 0.0):>10.3f}"
            for record in histograms
        )
    if not lines:
        lines.append("(no metrics recorded)")
    return lines
