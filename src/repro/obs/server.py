"""The live ops surface: a stdlib-only HTTP endpoint for a running stream.

``repro stream --serve-metrics PORT`` starts this next to the
streaming loop.  Three routes, no dependencies beyond the standard
library:

``GET /metrics``
    The live registry in Prometheus text exposition format 0.0.4
    (rendered by :func:`repro.obs.export.render_prometheus`), ready
    for any Prometheus-compatible scraper.
``GET /healthz``
    A JSON summary of the reader fleet's health ladder — overall
    status (``ok`` while no reader is quarantined, ``degraded``
    otherwise), per-reader states, and the run counters — suitable as
    a liveness/readiness probe.
``GET /provenance/recent``
    The most recent fixes' provenance records (JSON), served from the
    bounded :class:`~repro.stream.provenance.ProvenanceRing`; a
    ``?limit=N`` query caps the count.

The server runs daemon-threaded (:class:`ThreadingHTTPServer`) so it
never blocks the streaming loop and dies with the process; handlers
only ever *read* shared state through snapshots (the registry snapshot
and the ring's locked copy), so serving a scrape cannot perturb a fix.
Port ``0`` binds an ephemeral port; :attr:`OpsServer.port` reports the
actual one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional
from urllib.parse import parse_qs, urlsplit

from repro.analysis.sanitizer import sanitized_lock
from repro.errors import ConfigurationError
from repro.obs import runtime
from repro.obs.export import render_prometheus

if TYPE_CHECKING:  # the ring is stream-side; importing it here would cycle
    from repro.stream.provenance import ProvenanceRing

#: The content type Prometheus scrapers expect from /metrics.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Callable returning the /healthz JSON document.
HealthProvider = Callable[[], Dict[str, Any]]

#: /healthz document schema version.  Version 2 added the explicit
#: ``schema`` field and the per-deployment ``deployments`` nesting so a
#: single runner reads as a one-deployment fleet.
HEALTH_SCHEMA = 2


def registry_snapshot() -> List[Dict[str, Any]]:
    """The globally active registry's snapshot (the default source)."""
    return runtime.get_registry().snapshot()


class _OpsHandler(BaseHTTPRequestHandler):
    """Routes one request; all state lives on ``server``."""

    server: "_OpsHTTPServer"

    # Quieten the default stderr-per-request logging; the CLI already
    # reports where the endpoint listens.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        return None

    def do_GET(self) -> None:
        parts = urlsplit(self.path)
        if parts.path == "/metrics":
            self._send_metrics()
        elif parts.path == "/healthz":
            self._send_json(200, self.server.ops.health_document())
        elif parts.path == "/provenance/recent":
            self._send_json(
                200, self.server.ops.provenance_document(parts.query)
            )
        else:
            self._send_json(
                404,
                {
                    "error": "not found",
                    "routes": ["/metrics", "/healthz", "/provenance/recent"],
                },
            )

    def _send_metrics(self) -> None:
        body = self.server.ops.metrics_text().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, document: Dict[str, Any]) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class _OpsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a back-reference to the OpsServer."""

    daemon_threads = True
    ops: "OpsServer"


class OpsServer:
    """The ops endpoint: bind, serve in a daemon thread, stop cleanly.

    Parameters
    ----------
    port:
        TCP port to bind on ``host``; ``0`` picks an ephemeral port
        (read :attr:`port` after :meth:`start`).
    host:
        Bind address; loopback by default — exposing wider is an
        explicit operator decision.
    snapshot_source:
        Zero-argument callable returning a metrics snapshot (defaults
        to the globally active registry).
    health_provider:
        Zero-argument callable returning the ``/healthz`` payload;
        when absent the route reports ``{"status": "unknown"}``.
    ring:
        The recent-provenance buffer behind ``/provenance/recent``;
        when absent the route serves an empty list.
    rings:
        Per-deployment provenance buffers for fleet use; the route
        merges them (each fix annotated with its deployment) and
        honours a ``?deployment=ID`` filter.  Mutually additive with
        ``ring`` — a fleet normally passes only ``rings``.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        snapshot_source: Optional[Callable[[], List[Dict[str, Any]]]] = None,
        health_provider: Optional[HealthProvider] = None,
        ring: Optional["ProvenanceRing"] = None,
        rings: Optional[Mapping[str, "ProvenanceRing"]] = None,
    ) -> None:
        if not 0 <= port <= 65535:
            raise ConfigurationError(
                f"ops server port must be in [0, 65535], got {port}"
            )
        self.host = host
        self.requested_port = port
        self.snapshot_source = snapshot_source or registry_snapshot
        self.health_provider = health_provider
        self.ring = ring
        self.rings = rings
        # Guards the server/thread handles against concurrent
        # start()/stop()/port reads; _starting claims an in-flight
        # start so the (blocking) bind can happen outside the lock.
        self._state_lock = sanitized_lock("obs.server.state")
        self._starting = False
        self._server: Optional[_OpsHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The actually bound port (resolves a requested port of 0)."""
        with self._state_lock:
            server = self._server
        if server is None:
            return self.requested_port
        return int(server.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "OpsServer":
        """Bind and begin serving from a daemon thread; returns self.

        Two concurrent ``start()`` calls used to race the
        check-then-act on ``_server`` and could both bind; the claim
        flag makes exactly one of them win.  The bind itself happens
        *outside* the lock — it touches the network stack and may
        block, and nothing should block while holding the state lock.
        """
        with self._state_lock:
            if self._server is not None or self._starting:
                raise ConfigurationError("ops server is already running")
            self._starting = True
        try:
            server = _OpsHTTPServer((self.host, self.requested_port), _OpsHandler)
        except OSError as exc:
            with self._state_lock:
                self._starting = False
            raise ConfigurationError(
                f"cannot bind ops server on {self.host}:{self.requested_port}: {exc}"
            ) from exc
        server.ops = self
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-ops-server",
            daemon=True,
        )
        with self._state_lock:
            self._server = server
            self._thread = thread
            self._starting = False
        thread.start()
        return self

    def stop(self) -> None:
        """Shut the endpoint down and join the serving thread.

        Takes the handles and clears them under the lock, then shuts
        down and joins outside it — ``shutdown()``/``join()`` block on
        the serving thread, and holding the state lock across them
        would stall a concurrent ``port`` read for the full timeout.
        """
        with self._state_lock:
            server = self._server
            thread = self._thread
            self._server = None
            self._thread = None
        if server is None:
            return
        server.shutdown()
        server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "OpsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- route payloads (also the testable seam) --------------------------

    def metrics_text(self) -> str:
        """The /metrics body: the current snapshot, Prometheus-rendered."""
        return render_prometheus(self.snapshot_source())

    def health_document(self) -> Dict[str, Any]:
        """The /healthz body."""
        if self.health_provider is None:
            return {"status": "unknown"}
        return self.health_provider()

    def provenance_document(self, query: str = "") -> Dict[str, Any]:
        """The /provenance/recent body.

        Honours ``limit=N`` and, when per-deployment ``rings`` are
        configured, a ``deployment=ID`` filter; fixes served from a
        fleet ring carry a ``deployment`` annotation so a merged feed
        stays attributable.
        """
        params = parse_qs(query)
        limit: Optional[int] = None
        raw = params.get("limit")
        if raw:
            try:
                limit = max(0, int(raw[0]))
            except ValueError:
                limit = None
        if self.rings is not None:
            return self._fleet_provenance(params, limit)
        if self.ring is None:
            return {"fixes": [], "retained": 0}
        return {"fixes": self.ring.recent(limit), "retained": len(self.ring)}

    def _fleet_provenance(
        self, params: Dict[str, List[str]], limit: Optional[int]
    ) -> Dict[str, Any]:
        rings = self.rings or {}
        wanted = params.get("deployment")
        if wanted:
            deployment = wanted[0]
            ring = rings.get(deployment)
            if ring is None:
                return {
                    "error": f"unknown deployment {deployment!r}",
                    "deployments": sorted(rings),
                    "fixes": [],
                    "retained": 0,
                }
            fixes = [
                dict(record, deployment=deployment)
                for record in ring.recent(limit)
            ]
            return {"fixes": fixes, "retained": len(ring)}
        merged: List[Dict[str, Any]] = []
        retained = 0
        for deployment in sorted(rings):
            ring = rings[deployment]
            retained += len(ring)
            merged.extend(
                dict(record, deployment=deployment)
                for record in ring.recent(None)
            )
        merged.sort(key=lambda record: record.get("t", 0.0))
        if limit is not None:
            merged = merged[len(merged) - limit :] if limit else []
        return {"fixes": merged, "retained": retained}


def health_document_for(runner: Any) -> Dict[str, Any]:
    """The /healthz payload of a live :class:`StreamRunner`.

    Accepts the runner duck-typed (``Any``) to keep this module free of
    a stream import cycle; it only touches the health tracker and the
    run counters.

    Schema 2: the legacy top-level keys stay put (existing probes keep
    working), and the same detail is additionally nested under
    ``deployments`` — keyed by the runner's deployment id, or
    ``"default"`` for an unlabeled runner — so one runner reads as a
    one-deployment fleet with the same shape
    :meth:`repro.serve.supervisor.ShardSupervisor.health_document`
    serves for many.
    """
    report = runner.health.report()
    quarantined = sorted(r.name for r in report if r.quarantined)
    status = "degraded" if quarantined else "ok"
    detail = {
        "status": status,
        "readers": {r.name: r.state for r in report},
        "quarantined": quarantined,
        "healthy": runner.health.healthy_count,
        "total": runner.health.total,
        "fixes_emitted": runner.fixes_emitted,
        "rejected_reads": runner.rejected_reads,
        "queue_depth": len(runner.queue),
        "lineage": list(runner.lineage),
    }
    deployment = getattr(runner.config, "deployment_id", None) or "default"
    document = dict(detail)
    document["schema"] = HEALTH_SCHEMA
    document["deployments"] = {deployment: dict(detail, state="live")}
    return document
