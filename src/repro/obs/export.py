"""Prometheus text exposition of a metrics snapshot, plus a validator.

The registry's JSONL snapshot is convenient for offline analysis but
invisible to a production scrape loop.  This module renders the same
records in the `Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4) — the payload ``GET /metrics`` serves — and ships the
validator the test suite and the soak harness hold that payload
against, so the repo never claims "Prometheus-compatible" without
checking the actual format rules:

* metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``, label names match
  ``[a-zA-Z_][a-zA-Z0-9_]*`` and never start with ``__``;
* every family carries one ``# TYPE`` line before its samples;
* histogram bucket counts are cumulative, non-decreasing, and end in
  an explicit ``le="+Inf"`` bucket equal to ``_count``;
* no (name, label-set) series appears twice.

Internal dotted names map deterministically onto the exposition
namespace: ``stream.fixes`` (counter) becomes
``repro_stream_fixes_total``, ``latency.stream.window`` (histogram)
becomes ``repro_latency_stream_window`` with ``_bucket``/``_sum``/
``_count`` children.  Everything is stdlib-only.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import ExpositionError

#: Prefix every exposed metric name carries (the scrape namespace).
EXPOSITION_NAMESPACE = "repro"

#: Prometheus metric-name and label-name grammars.
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Metric types this exposition emits.
EXPOSITION_TYPES = ("counter", "gauge", "histogram")

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?[0-9]+))?$"
)

_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def prometheus_metric_name(name: str, kind: str) -> str:
    """Deterministic exposition name of an internal dotted metric name.

    Dots and any other characters outside the Prometheus grammar
    become underscores; the ``repro_`` namespace is prefixed and
    counters gain the conventional ``_total`` suffix.
    """
    base = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not base or not METRIC_NAME_RE.match(base[0]):
        base = f"_{base}"
    full = f"{EXPOSITION_NAMESPACE}_{base}"
    if kind == "counter" and not full.endswith("_total"):
        full = f"{full}_total"
    return full


def prometheus_label_name(name: str) -> str:
    """Deterministic exposition name of an internal label key."""
    label = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not label or label[0].isdigit():
        label = f"_{label}"
    while label.startswith("__"):
        label = label[1:]
    return label


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value for the exposition format."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def escape_help(text: str) -> str:
    """Backslash-escape a HELP line's free text."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Float rendering Prometheus parsers accept (repr keeps precision)."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _label_pairs(record: Mapping[str, object]) -> List[Tuple[str, str]]:
    labels = record.get("labels")
    if not isinstance(labels, dict):
        return []
    return [
        (prometheus_label_name(str(k)), str(labels[k]))
        for k in sorted(labels)
    ]


def _render_labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in pairs
    )
    return f"{{{inner}}}"


def render_prometheus(
    records: Iterable[Mapping[str, object]],
    help_text: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    ``records`` is what :meth:`MetricsRegistry.snapshot` returns (or a
    ``--metrics`` JSONL file re-loaded through
    :func:`~repro.obs.metrics.load_snapshot_jsonl`).  Families are
    emitted in sorted internal-name order, each with ``# HELP`` and
    ``# TYPE`` headers; ``help_text`` optionally overrides the default
    per-name help string (keyed by the *internal* dotted name).
    """
    families: Dict[str, List[Mapping[str, object]]] = {}
    kinds: Dict[str, str] = {}
    for record in records:
        name = str(record.get("name", ""))
        kind = str(record.get("type", ""))
        if kind not in EXPOSITION_TYPES:
            raise ExpositionError(
                f"metric {name!r} has unknown type {kind!r}"
            )
        if kinds.setdefault(name, kind) != kind:
            raise ExpositionError(
                f"metric {name!r} appears as both {kinds[name]!r} and {kind!r}"
            )
        families.setdefault(name, []).append(record)

    lines: List[str] = []
    for name in sorted(families):
        kind = kinds[name]
        exposed = prometheus_metric_name(name, kind)
        default_help = f"repro metric {name}"
        text = (help_text or {}).get(name, default_help)
        lines.append(f"# HELP {exposed} {escape_help(text)}")
        lines.append(f"# TYPE {exposed} {kind}")
        for record in families[name]:
            pairs = _label_pairs(record)
            if kind == "histogram":
                lines.extend(_render_histogram(exposed, record, pairs))
            else:
                value = float(record.get("value", 0.0))  # type: ignore[arg-type]
                lines.append(
                    f"{exposed}{_render_labels(pairs)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def _render_histogram(
    exposed: str,
    record: Mapping[str, object],
    pairs: List[Tuple[str, str]],
) -> List[str]:
    lines: List[str] = []
    count = int(record.get("count", 0))  # type: ignore[arg-type]
    total = float(record.get("sum", 0.0))  # type: ignore[arg-type]
    raw_buckets = record.get("buckets")
    buckets = raw_buckets if isinstance(raw_buckets, list) else []
    for entry in buckets:
        bound, cumulative = float(entry[0]), int(entry[1])
        bucket_pairs = pairs + [("le", _format_value(bound))]
        lines.append(
            f"{exposed}_bucket{_render_labels(bucket_pairs)} {cumulative}"
        )
    inf_pairs = pairs + [("le", "+Inf")]
    lines.append(f"{exposed}_bucket{_render_labels(inf_pairs)} {count}")
    lines.append(f"{exposed}_sum{_render_labels(pairs)} {_format_value(total)}")
    lines.append(f"{exposed}_count{_render_labels(pairs)} {count}")
    return lines


# -- validation -----------------------------------------------------------


@dataclass
class ExpositionFamily:
    """One parsed metric family of an exposition payload."""

    name: str
    type: str = "untyped"
    help: Optional[str] = None
    #: ``(sample_name, label_items, value)`` in payload order.
    samples: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = field(
        default_factory=list
    )


def _parse_value(raw: str, line_number: int) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    try:
        return float(raw)
    except ValueError as exc:
        raise ExpositionError(
            f"line {line_number}: invalid sample value {raw!r}"
        ) from exc


def _parse_labels(
    raw: Optional[str], line_number: int
) -> Tuple[Tuple[str, str], ...]:
    if raw is None or raw == "":
        return ()
    items: List[Tuple[str, str]] = []
    rest = raw
    while rest:
        match = _LABEL_RE.match(rest)
        if match is None:
            raise ExpositionError(
                f"line {line_number}: malformed label block {raw!r}"
            )
        name = match.group("name")
        if name.startswith("__"):
            raise ExpositionError(
                f"line {line_number}: reserved label name {name!r}"
            )
        value = (
            match.group("value")
            .replace(r"\n", "\n")
            .replace(r"\"", '"')
            .replace(r"\\", "\\")
        )
        items.append((name, value))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ExpositionError(
                f"line {line_number}: malformed label separator in {raw!r}"
            )
    names = [name for name, _ in items]
    if len(set(names)) != len(names):
        raise ExpositionError(
            f"line {line_number}: duplicate label name in {raw!r}"
        )
    return tuple(items)


def _family_of(sample_name: str) -> str:
    """Base family name of a sample (strips histogram child suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def validate_exposition(text: str) -> Dict[str, ExpositionFamily]:
    """Parse exposition text, raising :class:`ExpositionError` on any
    format violation; returns the parsed families keyed by exposed name.

    This is the in-repo acceptance check for ``GET /metrics``: the
    tests and the soak harness feed the live payload through it, so a
    rendering regression fails loudly instead of surfacing as a scrape
    error in someone's production Prometheus.
    """
    families: Dict[str, ExpositionFamily] = {}
    seen_series: Set[Tuple[str, Tuple[Tuple[str, str], ...]]] = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            _parse_header(line, line_number, families)
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(
                f"line {line_number}: malformed sample line {line!r}"
            )
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels"), line_number)
        value = _parse_value(match.group("value"), line_number)
        series = (sample_name, labels)
        if series in seen_series:
            raise ExpositionError(
                f"line {line_number}: duplicate series {sample_name!r} "
                f"with labels {dict(labels)!r}"
            )
        seen_series.add(series)
        base = _family_of(sample_name)
        family = families.get(base) or families.get(sample_name)
        if family is None:
            raise ExpositionError(
                f"line {line_number}: sample {sample_name!r} has no "
                "preceding # TYPE line"
            )
        family.samples.append((sample_name, labels, value))
    for family in families.values():
        if family.type == "histogram":
            _check_histogram(family)
    return families


def _parse_header(
    line: str, line_number: int, families: Dict[str, ExpositionFamily]
) -> None:
    parts = line.split(None, 3)
    if len(parts) < 3:
        raise ExpositionError(f"line {line_number}: malformed header {line!r}")
    keyword, name = parts[1], parts[2]
    if not METRIC_NAME_RE.match(name):
        raise ExpositionError(
            f"line {line_number}: invalid metric name {name!r}"
        )
    family = families.setdefault(name, ExpositionFamily(name=name))
    if keyword == "HELP":
        if family.help is not None:
            raise ExpositionError(
                f"line {line_number}: repeated HELP for {name!r}"
            )
        family.help = parts[3] if len(parts) > 3 else ""
        return
    if len(parts) != 4:
        raise ExpositionError(f"line {line_number}: malformed TYPE {line!r}")
    declared = parts[3]
    if declared not in (*EXPOSITION_TYPES, "summary", "untyped"):
        raise ExpositionError(
            f"line {line_number}: unknown metric type {declared!r}"
        )
    if family.type != "untyped":
        raise ExpositionError(f"line {line_number}: repeated TYPE for {name!r}")
    if family.samples:
        raise ExpositionError(
            f"line {line_number}: TYPE for {name!r} after its samples"
        )
    family.type = declared


def _check_histogram(family: ExpositionFamily) -> None:
    """Cumulativity and ``+Inf``/``_count`` consistency per label set."""
    by_labels: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = {}
    for sample_name, labels, value in family.samples:
        if sample_name.endswith("_bucket"):
            bare = tuple(item for item in labels if item[0] != "le")
            le = dict(labels).get("le")
            if le is None:
                raise ExpositionError(
                    f"histogram {family.name!r} bucket sample missing "
                    'the "le" label'
                )
            entry = by_labels.setdefault(bare, {"buckets": []})
            buckets = entry["buckets"]
            assert isinstance(buckets, list)
            buckets.append((_parse_value(le, 0), value))
        elif sample_name.endswith("_count"):
            by_labels.setdefault(labels, {"buckets": []})["count"] = value
        elif sample_name.endswith("_sum"):
            by_labels.setdefault(labels, {"buckets": []})["sum"] = value
        else:
            raise ExpositionError(
                f"histogram {family.name!r} has stray sample {sample_name!r}"
            )
    for labels, entry in by_labels.items():
        buckets = entry.get("buckets")
        assert isinstance(buckets, list)
        if not buckets:
            raise ExpositionError(
                f"histogram {family.name!r} label set {dict(labels)!r} "
                "has no buckets"
            )
        bounds = [bound for bound, _ in buckets]
        counts = [count for _, count in buckets]
        if bounds != sorted(bounds):
            raise ExpositionError(
                f"histogram {family.name!r} buckets are not in "
                f"ascending le order: {bounds}"
            )
        if any(b > a for a, b in zip(counts[1:], counts)):
            raise ExpositionError(
                f"histogram {family.name!r} bucket counts are not "
                f"cumulative: {counts}"
            )
        if bounds[-1] != float("inf"):
            raise ExpositionError(
                f'histogram {family.name!r} is missing the le="+Inf" bucket'
            )
        declared_count = entry.get("count")
        if declared_count is None:
            raise ExpositionError(
                f"histogram {family.name!r} is missing its _count sample"
            )
        if "sum" not in entry:
            raise ExpositionError(
                f"histogram {family.name!r} is missing its _sum sample"
            )
        if counts[-1] != declared_count:
            raise ExpositionError(
                f"histogram {family.name!r}: +Inf bucket {counts[-1]} "
                f"!= _count {declared_count}"
            )
