"""Global observability state and the instrumentation entry points.

Instrumented pipeline code calls exactly four cheap functions:

* ``span(name, **attrs)`` — time a stage (context manager),
* ``count(name, n)`` — bump a counter,
* ``observe(name, value)`` — feed a histogram,
* ``gauge(name, value)`` — write a gauge.

With observability **disabled — the default — every one of them is a
single flag check followed by an immediate return**, and none of them
ever touches the numbers flowing through the pipeline, so disabled runs
are bit-identical to an uninstrumented build.

Enabling is either global (:func:`configure`, used by the CLI flags) or
scoped (:func:`observed`, used by tests and the latency harness to
collect into a private registry and restore the previous state on
exit).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    NULL_SPAN,
    ActiveSpan,
    JsonlTraceWriter,
    NullSpan,
    SpanRecord,
    Tracer,
)


class _LatencyFeed:
    """Span observer that turns every span into a latency histogram."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def on_span(self, record: SpanRecord) -> None:
        self.registry.histogram(f"latency.{record.name}").observe(
            record.duration_ms
        )


@dataclass
class ObsState:
    """Everything that defines one observability configuration."""

    enabled: bool = False
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)
    trace_writer: Optional[JsonlTraceWriter] = None
    metrics_path: Optional[str] = None


_state = ObsState()


def is_enabled() -> bool:
    """Whether instrumentation currently records anything."""
    return _state.enabled


def get_registry() -> MetricsRegistry:
    """The registry metrics currently flow into."""
    return _state.registry


def _build_state(
    trace_file: Optional[str], metrics_file: Optional[str]
) -> ObsState:
    state = ObsState(enabled=True, metrics_path=metrics_file)
    state.tracer.add_observer(_LatencyFeed(state.registry))
    if trace_file is not None:
        state.trace_writer = JsonlTraceWriter(trace_file)
        state.tracer.add_observer(state.trace_writer)
    return state


def configure(
    trace_file: Optional[str] = None,
    metrics_file: Optional[str] = None,
) -> ObsState:
    """Enable observability process-wide (the CLI ``--trace/--metrics``).

    Returns the new active state.  Call :func:`shutdown` when the run
    ends to flush the trace file and write the metrics snapshot.
    """
    global _state
    shutdown()
    _state = _build_state(trace_file, metrics_file)
    return _state


def shutdown() -> Optional[int]:
    """Flush and disable; returns the metric count written, if any.

    Safe to call when observability was never configured.
    """
    global _state
    state = _state
    written = None
    if state.trace_writer is not None:
        state.trace_writer.close()
    if state.enabled and state.metrics_path is not None:
        written = state.registry.write_jsonl(state.metrics_path)
    _state = ObsState()
    return written


@contextlib.contextmanager
def observed(trace_file: Optional[str] = None) -> Iterator[ObsState]:
    """Temporarily enable observability into a fresh private registry.

    Used by tests and by the latency harness: metrics recorded inside
    the block live in ``state.registry`` only, and the previous global
    state (enabled or not) is restored on exit.
    """
    global _state
    previous = _state
    state = _build_state(trace_file, None)
    _state = state
    try:
        yield state
    finally:
        if state.trace_writer is not None:
            state.trace_writer.close()
        _state = previous


def span(name: str, **attrs: Any) -> Union[ActiveSpan, NullSpan]:
    """Open a timed span; a no-op singleton when disabled."""
    state = _state
    if not state.enabled:
        return NULL_SPAN
    return state.tracer.start(name, attrs)


def count(
    name: str,
    amount: float = 1,
    labels: Optional[Mapping[str, str]] = None,
) -> None:
    """Bump a counter (optionally labelled); a no-op when disabled."""
    state = _state
    if state.enabled:
        state.registry.counter(name, labels).inc(amount)


def observe(
    name: str,
    value: float,
    labels: Optional[Mapping[str, str]] = None,
) -> None:
    """Record one histogram observation; a no-op when disabled."""
    state = _state
    if state.enabled:
        state.registry.histogram(name, labels).observe(value)


def gauge(
    name: str,
    value: float,
    labels: Optional[Mapping[str, str]] = None,
) -> None:
    """Write a gauge (optionally labelled); a no-op when disabled."""
    state = _state
    if state.enabled:
        state.registry.gauge(name, labels).set(value)


def snapshot() -> List[Dict[str, Any]]:
    """Snapshot of the currently active registry."""
    return _state.registry.snapshot()
